//! Fault boxes in action (§3.6): inject an uncorrectable memory fault
//! into one of several applications, watch detection bound the blast
//! radius to that one application, recover it, and finally migrate an
//! application away from a crashing node.
//!
//! ```text
//! cargo run -p flacos --example fault_recovery
//! ```

use flacdk::alloc::GlobalAllocator;
use flacdk::reliability::checkpoint::CheckpointManager;
use flacdk::sync::rcu::EpochManager;
use flacos_fault::fault_box::FaultBoxBuilder;
use flacos_fault::recovery::RecoveryOrchestrator;
use flacos_fault::redundancy::{nmr_execute, Protection, RedundancyPolicy};
use flacos_mem::fault::FrameAllocator;
use rack_sim::{Rack, RackConfig, SimError};

fn main() -> Result<(), SimError> {
    let rack = Rack::new(RackConfig::two_node_hccs());
    let alloc = GlobalAllocator::new(rack.global().clone());
    let frames = FrameAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), rack.node_count())?;
    let n0 = rack.node(0);

    // Six applications, each in its own fault box with periodic
    // checkpointing.
    let mut orch = RecoveryOrchestrator::new();
    for app in 0..6u64 {
        let fbox = FaultBoxBuilder::new(app).heap_pages(2).build(
            &n0,
            rack.global(),
            alloc.clone(),
            &frames,
            epochs.clone(),
        )?;
        fbox.space().write(
            &n0,
            fbox.heap_va(0),
            format!("app-{app} working set").as_bytes(),
        )?;
        let protection = Protection::new(
            RedundancyPolicy::PeriodicCheckpoint { period_ns: 1 },
            CheckpointManager::new(alloc.clone(), epochs.clone()),
        );
        orch.register(&n0, fbox, protection)?;
    }
    println!("6 applications registered, each in a fault box");

    // Uncorrectable memory error strikes app 3's heap.
    let addr = orch.poison_app_heap(&n0, rack.faults(), 3, 128)?;
    println!("injected uncorrectable fault at {addr} (app 3's heap)");

    let report = orch.sweep(&n0)?;
    println!(
        "sweep: {} fault(s) detected, recovered apps {:?}, {} untouched",
        report.faults_detected, report.boxes_recovered, report.boxes_untouched
    );
    println!(
        "blast radius {:.0}% of applications; {} bytes restored in {:.2} us",
        report.blast_radius() * 100.0,
        report.restored_bytes,
        report.sweep_ns as f64 / 1e3
    );

    // App 3's data is intact again.
    let fbox = orch.fault_box(3).expect("registered");
    let mut buf = [0u8; 17];
    fbox.space().read(&n0, fbox.heap_va(0), &mut buf)?;
    println!(
        "app 3 heap after recovery: {:?}",
        String::from_utf8_lossy(&buf)
    );

    // Mission-critical work survives a corrupt replica via n-modular
    // execution.
    let out = nmr_execute(3, |i| {
        Ok(if i == 1 {
            b"corrupted!".to_vec()
        } else {
            b"result=42".to_vec()
        })
    })?;
    println!(
        "n-modular execution voted: {:?}",
        String::from_utf8_lossy(&out)
    );

    // Node 0 is about to fail: migrate an application to node 1 —
    // ownership transfer, not a data copy, since all state is global.
    let n1 = rack.node(1);
    let mut fbox = FaultBoxBuilder::new(100).heap_pages(1).build(
        &n0,
        rack.global(),
        alloc.clone(),
        &frames,
        epochs,
    )?;
    fbox.space().write(&n0, fbox.heap_va(0), b"evacuating")?;
    fbox.migrate(&n0, &n1)?;
    rack.faults().crash_node(n0.id(), rack.max_time_ns());
    let mut buf = [0u8; 10];
    fbox.space().read(&n1, fbox.heap_va(0), &mut buf)?;
    println!(
        "app 100 migrated to {} before node0 crashed; heap reads {:?}",
        fbox.home(),
        String::from_utf8_lossy(&buf)
    );
    Ok(())
}
