//! The rack-level serverless architecture of §4: container startup over
//! the shared page cache, function chains over FlacOS IPC, and
//! density-aware placement.
//!
//! ```text
//! cargo run -p flacos --example serverless_rack
//! ```

use flac_store::{BackendConfig, ChunkStore, ShardedBackends, StoreConfig};
use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_fs::block::BlockDevice;
use flacos_fs::memfs::{FsShared, MemFs};
use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use rack_sim::{Rack, RackConfig, SimError};
use serverless::chain::{ChainTransport, FunctionChain};
use serverless::image::ContainerImage;
use serverless::registry::{ImageRegistry, RegistryConfig};
use serverless::runtime::ContainerRuntime;
use serverless::scheduler::DensityScheduler;
use std::sync::Arc;

fn main() -> Result<(), SimError> {
    let rack = Rack::new(RackConfig::two_node_hccs());
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), rack.node_count())?;
    let fs = FsShared::alloc(
        rack.global(),
        rack.node_count(),
        alloc.clone(),
        epochs,
        RetireList::new(),
        Arc::new(BlockDevice::nvme(rack.global(), rack.node_count())?),
    )?;

    // A scaled synthetic "pytorch" image (1024 pages = 4 MiB here),
    // chunked by content hash and served from 4 backend shards whose
    // aggregate bandwidth keeps the paper's time decomposition.
    let registry = Arc::new(ImageRegistry::new(RegistryConfig::paper_calibrated()));
    let image = ContainerImage::synthetic("pytorch", 1024, 8, 7);
    let backends = Arc::new(ShardedBackends::uniform(
        4,
        BackendConfig::paper_calibrated(4, 1024),
    ));
    image.publish(&backends);
    registry.push(image);
    let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
    let store = ChunkStore::alloc(
        rack.global(),
        backends,
        dedup,
        StoreConfig::new(rack.node_count()),
    )?;

    let mut rt0 = ContainerRuntime::new(
        rack.node(0),
        MemFs::mount(fs.clone(), rack.node(0)),
        registry.clone(),
        store.clone(),
    );
    let mut rt1 = ContainerRuntime::new(
        rack.node(1),
        MemFs::mount(fs.clone(), rack.node(1)),
        registry,
        store.clone(),
    );

    println!("container startup (paper §4.2):");
    for (who, report) in [
        ("node0 cold          ", rt0.start_container("pytorch")?.1),
        ("node1 via shared pc ", rt1.start_container("pytorch")?.1),
        ("node1 hot           ", rt1.start_container("pytorch")?.1),
    ] {
        println!(
            "  {who} path={:<16?} total={:>9.3} s  (manifest {:.2} s, fetch {:.3} s, init {:.2} s)",
            report.path,
            report.total_ns as f64 / 1e9,
            report.manifest_ns as f64 / 1e9,
            report.fetch_ns as f64 / 1e9,
            report.init_ns as f64 / 1e9,
        );
    }
    let dedup_stats = store.dedup().stats();
    println!(
        "  chunk store holds {} deduped frames once, for both nodes ({} chunks shipped)\n",
        dedup_stats.unique_frames,
        store.backends().total_stats().chunks_shipped,
    );

    // Function chain over shared memory vs the network.
    let mut ipc_chain = FunctionChain::build(&rack, &alloc, 4, ChainTransport::FlacIpc)?;
    let (_, ipc_ns) = ipc_chain.invoke(&vec![1u8; 1024])?;
    let rack2 = Rack::new(RackConfig::two_node_hccs());
    let alloc2 = GlobalAllocator::new(rack2.global().clone());
    let mut tcp_chain = FunctionChain::build(&rack2, &alloc2, 4, ChainTransport::Tcp)?;
    let (_, tcp_ns) = tcp_chain.invoke(&vec![1u8; 1024])?;
    println!("4-stage function chain, 1 KiB payload:");
    println!("  FlacOS IPC: {:.2} us end-to-end", ipc_ns as f64 / 1e3);
    println!("  TCP/IP:     {:.2} us end-to-end", tcp_ns as f64 / 1e3);
    println!(
        "  chain communication reduction: {:.2}x\n",
        tcp_ns as f64 / ipc_ns as f64
    );

    // Density placement.
    let mut sched = DensityScheduler::new(2, 8);
    for f in 0..12 {
        sched.place(f)?;
    }
    println!("density scheduling: 12 functions over 2 nodes x 8 slots");
    for n in 0..2 {
        let node = rack_sim::NodeId(n);
        println!(
            "  node{n}: {} instances, interference factor {:.2}",
            sched.density(node),
            sched.interference_factor(node)
        );
    }
    println!("  rack utilization {:.0}%", sched.utilization() * 100.0);
    Ok(())
}
