//! The paper's Redis experiment, as an application: a redis-mini server
//! on node 0, a client on node 1, first over FlacOS zero-copy IPC and
//! then over the TCP/IP baseline — printing the latency gap (Figure 4).
//!
//! ```text
//! cargo run -p flacos --example redis_rack
//! ```

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig, SimError};
use redis_mini::client::{request_stepped, RedisClient};
use redis_mini::resp::{Command, Reply};
use redis_mini::server::RedisServer;
use redis_mini::transport::Transport;

fn drive<T: Transport>(
    client: &mut RedisClient<T>,
    server: &mut RedisServer<T>,
    value_size: usize,
    requests: usize,
) -> Result<(u64, u64), SimError> {
    let mut set_total = 0;
    let mut get_total = 0;
    for i in 0..requests {
        let key = format!("user:{i}").into_bytes();
        let (reply, set_ns) = request_stepped(
            client,
            server,
            &Command::Set {
                key: key.clone(),
                value: vec![b'v'; value_size],
            },
        )?;
        assert_eq!(reply, Reply::Simple("OK".into()));
        let (reply, get_ns) = request_stepped(client, server, &Command::Get { key })?;
        assert!(matches!(reply, Reply::Bulk(_)));
        set_total += set_ns;
        get_total += get_ns;
    }
    Ok((set_total / requests as u64, get_total / requests as u64))
}

fn main() -> Result<(), SimError> {
    const REQUESTS: usize = 500;
    println!("redis-mini on a 2-node rack, {REQUESTS} SET+GET pairs per config\n");
    println!(
        "{:<10} {:>8} {:>14} {:>14}",
        "transport", "size", "SET latency", "GET latency"
    );

    let mut results = Vec::new();
    for &size in &[16usize, 4096] {
        // FlacOS IPC.
        let rack = Rack::new(RackConfig::two_node_hccs());
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (sep, cep) = FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1))?;
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);
        let (set_ipc, get_ipc) = drive(&mut client, &mut server, size, REQUESTS)?;
        println!(
            "{:<10} {:>6} B {:>11.2} us {:>11.2} us",
            "flacos",
            size,
            set_ipc as f64 / 1e3,
            get_ipc as f64 / 1e3
        );

        // TCP/IP baseline.
        let rack = Rack::new(RackConfig::two_node_hccs());
        let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);
        let (set_net, get_net) = drive(&mut client, &mut server, size, REQUESTS)?;
        println!(
            "{:<10} {:>6} B {:>11.2} us {:>11.2} us",
            "tcp/ip",
            size,
            set_net as f64 / 1e3,
            get_net as f64 / 1e3
        );
        results.push((
            size,
            set_net as f64 / set_ipc as f64,
            get_net as f64 / get_ipc as f64,
        ));
    }

    println!("\nlatency reduction (networking / FlacOS):");
    for (size, set_x, get_x) in results {
        println!("  {size:>5} B: SET {set_x:.2}x, GET {get_x:.2}x   (paper: 1.75x-2.4x)");
    }
    Ok(())
}
