//! Quickstart: boot FlacOS on a simulated rack and tour the shared OS.
//!
//! ```text
//! cargo run -p flacos --example quickstart
//! ```

use flacos::prelude::*;

fn main() -> Result<(), SimError> {
    // Boot the paper's testbed shape: 2 nodes x 320 cores over an
    // HCCS-like memory interconnect.
    let rack = FlacRack::boot(RackConfig::two_node_hccs())?;
    let table = rack.boot_table(1)?;
    println!(
        "booted FlacOS: {} nodes, {} cores, {} MiB global memory, fabric read {} ns",
        table.nodes,
        table.total_cores(),
        table.global_mem_bytes >> 20,
        table.fabric_read_ns
    );

    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);

    // --- One file system, one page cache copy, rack-wide -----------------
    os0.fs_mut().mkdir("/etc")?;
    os0.fs_mut()
        .write_file("/etc/motd", b"the rack is the computer")?;
    let motd = os1.fs_mut().read_file("/etc/motd")?;
    println!(
        "node1 reads /etc/motd written by node0: {:?}",
        String::from_utf8_lossy(&motd)
    );
    println!(
        "shared page cache: {} resident pages ({} bytes), zero duplicate copies",
        rack.fs_shared().cache().resident_pages(),
        rack.fs_shared().cache().memory_bytes()
    );

    // --- Zero-copy IPC between nodes --------------------------------------
    let (mut a, mut b) = rack.channel(0, 1)?;
    a.send(b"hello over shared memory")?;
    println!(
        "node1 received: {:?}",
        String::from_utf8_lossy(&b.try_recv()?)
    );

    // --- Processes in fault boxes, migratable across the rack ------------
    let mut process = os0.spawn(2, Criticality::Medium)?;
    process.run(os0.node(), |ctx, fbox| {
        fbox.space()
            .write(ctx, fbox.heap_va(0), b"state in global memory")
    })?;
    println!("process {} running on {}", process.pid(), process.home());

    os1.adopt(&mut process, os0.node())?;
    process.run(os1.node(), |ctx, fbox| {
        let mut buf = [0u8; 22];
        fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
        println!(
            "after migration to {}: heap still reads {:?}",
            ctx.id(),
            String::from_utf8_lossy(&buf)
        );
        Ok(())
    })?;

    // --- Rack-wide scheduling view ----------------------------------------
    println!(
        "scheduler load: node0={} node1={}",
        rack.scheduler().load_of(os0.node(), os0.id())?,
        rack.scheduler().load_of(os0.node(), os1.id())?,
    );

    println!(
        "simulated time elapsed: {:.3} ms",
        rack.sim().max_time_ns() as f64 / 1e6
    );
    Ok(())
}
