//! Sharded chunk backends: N simulated registry/peer stores, routed by
//! content hash.
//!
//! Each shard owns the chunks whose hash lands on it (`hash % shards`)
//! and has its own bandwidth and per-request cost, like N independent
//! registry mirrors or peer stores. A batched fetch splits the request
//! by shard and charges the **max** per-shard time — the shards stream
//! their partitions concurrently — so cold-start fetch time shrinks as
//! shards are added (until per-request overhead dominates).
//!
//! The backends are *outside* the rack: their costs are simulated time,
//! their bytes are real (published blobs, hash-verified by the caller).
//! Stats are relaxed atomics — the fetch path never takes a lock to
//! count traffic.

use crate::{chunk_hash, CHUNK_SIZE};
use rack_sim::sync::Mutex;
use rack_sim::{NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost parameters for one backend shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// Shard transfer bandwidth, bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed overhead per batched request to this shard, ns.
    pub per_request_ns: u64,
    /// Per-chunk lookup/framing overhead, ns.
    pub per_chunk_ns: u64,
}

impl BackendConfig {
    /// Calibrated so that the *aggregate* bandwidth of `shards` shards
    /// equals the paper's single-registry 285 MB/s (divided by `scale`
    /// for size-scaled images): the paper's 21 s cold start decomposes
    /// identically, the shards just serve it in parallel slices.
    pub fn paper_calibrated(shards: usize, scale: u64) -> Self {
        BackendConfig {
            bandwidth_bytes_per_sec: (285_000_000 / shards.max(1) as u64 / scale.max(1)).max(1),
            per_request_ns: 30_000_000, // 30 ms per batched request (per blob request)
            per_chunk_ns: 1_000,
        }
    }

    /// Time for this shard to serve one batched request of
    /// `chunks` chunks totalling `bytes` bytes.
    fn batch_ns(&self, chunks: u64, bytes: u64) -> u64 {
        self.per_request_ns
            .saturating_add(self.per_chunk_ns.saturating_mul(chunks))
            .saturating_add(
                bytes.saturating_mul(1_000_000_000) / self.bandwidth_bytes_per_sec.max(1),
            )
    }
}

/// Per-shard traffic counters (a snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Batched requests served.
    pub requests: u64,
    /// Chunks shipped.
    pub chunks_shipped: u64,
    /// Bytes shipped.
    pub bytes_shipped: u64,
}

#[derive(Debug)]
struct Blob {
    data: Arc<Vec<u8>>,
    /// Times this chunk has been shipped (the no-duplicate-download
    /// invariant in the storm campaign reads this).
    fetches: u64,
}

#[derive(Debug)]
struct Shard {
    config: BackendConfig,
    // coherent-local: host-side model of a *remote* backend's blob map —
    // not rack state; all rack-visible cost is charged via `ctx`.
    blobs: Mutex<HashMap<u64, Blob>>,
    requests: AtomicU64,
    chunks_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
}

/// N backend shards routed by `hash % N`.
#[derive(Debug)]
pub struct ShardedBackends {
    shards: Vec<Shard>,
}

impl ShardedBackends {
    /// Backends with per-shard configs (one shard per entry).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<BackendConfig>) -> Self {
        assert!(!configs.is_empty(), "need at least one backend shard");
        ShardedBackends {
            shards: configs
                .into_iter()
                .map(|config| Shard {
                    config,
                    blobs: Mutex::new(HashMap::new()),
                    requests: AtomicU64::new(0),
                    chunks_shipped: AtomicU64::new(0),
                    bytes_shipped: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// `shards` identical shards.
    pub fn uniform(shards: usize, config: BackendConfig) -> Self {
        Self::new(vec![config; shards.max(1)])
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `hash`. The raw fnv1a value is passed through a
    /// murmur3-style finalizer first: fnv1a's low bits are weak (bit 0
    /// is a parity over the input bytes, which is *constant* for any
    /// even-length constant-fill chunk), so a bare `hash % N` would
    /// collapse structured content onto one shard and serialize the
    /// whole fan-out.
    pub fn shard_of(&self, hash: u64) -> usize {
        let mut h = hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.shards.len() as u64) as usize
    }

    /// Publish a chunk to its shard (host-side seeding — the "registry
    /// upload" happens outside the simulated rack). Returns `false` if
    /// the shard already held it.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one chunk.
    pub fn publish(&self, data: Vec<u8>) -> bool {
        assert_eq!(data.len(), CHUNK_SIZE, "chunks are page-sized");
        let hash = chunk_hash(&data);
        let shard = &self.shards[self.shard_of(hash)];
        let mut blobs = shard.blobs.lock();
        if blobs.contains_key(&hash) {
            return false;
        }
        blobs.insert(
            hash,
            Blob {
                data: Arc::new(data),
                fetches: 0,
            },
        );
        true
    }

    /// Whether some shard holds `hash`.
    pub fn contains(&self, hash: u64) -> bool {
        self.shards[self.shard_of(hash)]
            .blobs
            .lock()
            .contains_key(&hash)
    }

    /// Times `hash` has been shipped (0 if never / unknown).
    pub fn fetch_count(&self, hash: u64) -> u64 {
        self.shards[self.shard_of(hash)]
            .blobs
            .lock()
            .get(&hash)
            .map(|b| b.fetches)
            .unwrap_or(0)
    }

    /// Fetch a batch of chunks, fanning out across shards in parallel:
    /// the batch is split by `hash % shards`, each shard charges its own
    /// request + transfer time, and the caller pays the **max** (the
    /// slowest shard), not the sum.
    ///
    /// Returns the blobs in request order.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if any hash is unknown to its shard
    /// (nothing is charged or counted in that case).
    pub fn fetch_many(&self, ctx: &NodeCtx, hashes: &[u64]) -> Result<Vec<Arc<Vec<u8>>>, SimError> {
        if hashes.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve every blob first so an unknown hash charges (and
        // counts) nothing.
        let mut out = Vec::with_capacity(hashes.len());
        let mut per_shard: Vec<(u64, u64)> = vec![(0, 0); self.shards.len()]; // (chunks, bytes)
        for &hash in hashes {
            let si = self.shard_of(hash);
            let data = self.shards[si]
                .blobs
                .lock()
                .get(&hash)
                .map(|b| b.data.clone())
                .ok_or_else(|| {
                    SimError::Protocol(format!("chunk {hash:#018x} not on backend shard {si}"))
                })?;
            per_shard[si].0 += 1;
            per_shard[si].1 += data.len() as u64;
            out.push(data);
        }
        for &hash in hashes {
            if let Some(blob) = self.shards[self.shard_of(hash)].blobs.lock().get_mut(&hash) {
                blob.fetches += 1;
            }
        }
        let mut slowest = 0u64;
        for (si, &(chunks, bytes)) in per_shard.iter().enumerate() {
            if chunks == 0 {
                continue;
            }
            let shard = &self.shards[si];
            slowest = slowest.max(shard.config.batch_ns(chunks, bytes));
            shard.requests.fetch_add(1, Ordering::Relaxed);
            shard.chunks_shipped.fetch_add(chunks, Ordering::Relaxed);
            shard.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        }
        ctx.charge(slowest);
        Ok(out)
    }

    /// Per-shard traffic snapshots.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                requests: s.requests.load(Ordering::Relaxed),
                chunks_shipped: s.chunks_shipped.load(Ordering::Relaxed),
                bytes_shipped: s.bytes_shipped.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Sum of all shards' counters.
    pub fn total_stats(&self) -> ShardStats {
        self.stats()
            .iter()
            .fold(ShardStats::default(), |acc, s| ShardStats {
                requests: acc.requests + s.requests,
                chunks_shipped: acc.chunks_shipped + s.chunks_shipped,
                bytes_shipped: acc.bytes_shipped + s.bytes_shipped,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn chunk(fill: u8) -> Vec<u8> {
        vec![fill; CHUNK_SIZE]
    }

    #[test]
    fn publish_routes_by_hash_and_dedups() {
        let be = ShardedBackends::uniform(4, BackendConfig::paper_calibrated(4, 64));
        let data = chunk(1);
        let hash = chunk_hash(&data);
        assert!(be.publish(data.clone()));
        assert!(!be.publish(data), "second publish is a no-op");
        assert!(be.contains(hash));
        assert!(be.shard_of(hash) < 4);
    }

    #[test]
    fn router_spreads_constant_fill_chunks() {
        // fnv1a bit 0 is a parity over the input, constant for any
        // even-length constant-fill chunk — the finalizer in `shard_of`
        // must still spread these across shards.
        let be = ShardedBackends::uniform(4, BackendConfig::paper_calibrated(4, 64));
        let mut used = [false; 4];
        for fill in 0..32u8 {
            used[be.shard_of(chunk_hash(&chunk(fill)))] = true;
        }
        assert!(
            used.iter().filter(|&&u| u).count() >= 3,
            "32 constant-fill chunks landed on {used:?}"
        );
    }

    #[test]
    fn parallel_shards_beat_one_shard_on_the_same_bytes() {
        let rack = Rack::new(RackConfig::small_test());
        let cfg = BackendConfig {
            bandwidth_bytes_per_sec: 1_000_000,
            per_request_ns: 1_000,
            per_chunk_ns: 0,
        };
        let chunks: Vec<Vec<u8>> = (0..32u8).map(chunk).collect();
        let hashes: Vec<u64> = chunks.iter().map(|c| chunk_hash(c)).collect();

        let mut elapsed = Vec::new();
        for shards in [1usize, 4] {
            let be = ShardedBackends::uniform(shards, cfg);
            for c in &chunks {
                be.publish(c.clone());
            }
            let node = rack.node(0);
            let t0 = node.clock().now();
            let got = be.fetch_many(&node, &hashes).unwrap();
            elapsed.push(node.clock().now() - t0);
            assert_eq!(got.len(), 32);
            assert_eq!(*got[3], chunks[3], "blobs come back in request order");
        }
        assert!(
            elapsed[1] * 2 < elapsed[0],
            "4 shards at fixed per-shard bandwidth should serve 32 chunks \
             at least 2x faster than 1 shard ({} vs {} ns)",
            elapsed[1],
            elapsed[0]
        );
    }

    #[test]
    fn unknown_hash_fails_without_charging() {
        let rack = Rack::new(RackConfig::small_test());
        let be = ShardedBackends::uniform(2, BackendConfig::paper_calibrated(2, 1));
        let node = rack.node(0);
        let t0 = node.clock().now();
        assert!(be.fetch_many(&node, &[0xdead]).is_err());
        assert_eq!(node.clock().now(), t0, "failed fetch charges nothing");
        assert_eq!(be.total_stats().requests, 0);
    }

    #[test]
    fn fetch_counts_and_stats_account_bytes() {
        let rack = Rack::new(RackConfig::small_test());
        let be = ShardedBackends::uniform(3, BackendConfig::paper_calibrated(3, 1));
        let data = chunk(9);
        let hash = chunk_hash(&data);
        be.publish(data);
        let node = rack.node(0);
        be.fetch_many(&node, &[hash]).unwrap();
        be.fetch_many(&node, &[hash]).unwrap();
        assert_eq!(be.fetch_count(hash), 2);
        let total = be.total_stats();
        assert_eq!(total.chunks_shipped, 2);
        assert_eq!(total.bytes_shipped, 2 * CHUNK_SIZE as u64);
    }
}
