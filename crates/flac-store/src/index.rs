//! The rack-wide chunk index: a deterministic [`SyncState`] machine.
//!
//! The index maps `content hash → ChunkState` and is driven entirely by
//! three wire-encoded operations committed to the [`SyncCell`]'s shared
//! op log (log order = linearization order):
//!
//! * `CLAIM(node, hashes…)` — each absent hash becomes
//!   `Fetching(node)`; hashes already claimed or present are untouched.
//!   The *first* claim in log order wins: that is the whole
//!   single-flight protocol. A claimer learns its wins from the post-op
//!   state, not from any side channel.
//! * `COMMIT(node, (hash, frame, len)…)` — a hash in `Fetching(node)`
//!   (or absent, for a late commit after recovery re-claimed and the
//!   entry cycled) becomes `Present(frame, len)`. A commit against a
//!   hash someone else now owns is **ignored** — the stale fetcher lost
//!   and must release its frame.
//! * `ABORT(node)` — every `Fetching(node)` entry reverts to absent;
//!   this is what crash recovery appends when `node` dies mid-fetch, so
//!   survivors can re-claim and finish the download.
//!
//! `apply` is a pure function of `(state, op)` and ignores malformed
//! ops, so replaying the committed log from an empty index on any node
//! reproduces the same map — the recovery/replay property every
//! `SyncCell` structure shares.
//!
//! [`SyncCell`]: flacdk::sync::SyncCell
//! [`SyncState`]: flacdk::sync::SyncState

use flacdk::sync::SyncState;
use flacdk::wire::{Decoder, Encoder};
use rack_sim::GAddr;
use std::collections::{BTreeMap, HashMap};

/// Op tag: claim hashes for one fetcher.
pub const OP_CLAIM: u8 = 1;
/// Op tag: commit fetched chunks as present.
pub const OP_COMMIT: u8 = 2;
/// Op tag: abort all of one node's in-flight claims.
pub const OP_ABORT: u8 = 3;

/// Where one chunk stands, rack-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkState {
    /// Claimed by `node`; the fetch is in flight.
    Fetching {
        /// The claiming node.
        node: u32,
    },
    /// Resident in global memory at `frame`.
    Present {
        /// The deduped global frame holding the bytes.
        frame: GAddr,
        /// Chunk length in bytes.
        len: u32,
        /// The node whose commit landed. Identical content interns to
        /// the *same* frame on every node, so frame equality cannot
        /// tell a landed commit from a lost one — authorship can.
        by: u32,
    },
}

/// The chunk index state machine (see module docs for the op set).
#[derive(Debug, Default, Clone)]
pub struct ChunkIndexState {
    chunks: HashMap<u64, ChunkState>,
    /// Chunks ever committed present.
    pub committed_chunks: u64,
    /// Bytes ever committed present.
    pub committed_bytes: u64,
    /// In-flight claims reverted by `ABORT` ops.
    pub aborted_claims: u64,
    /// Ops ignored as stale or malformed (late commits, replays).
    pub ignored_ops: u64,
}

impl ChunkIndexState {
    /// State of `hash`, if any.
    pub fn get(&self, hash: u64) -> Option<ChunkState> {
        self.chunks.get(&hash).copied()
    }

    /// Number of present chunks.
    pub fn present_count(&self) -> usize {
        self.chunks
            .values()
            .filter(|s| matches!(s, ChunkState::Present { .. }))
            .count()
    }

    /// Number of in-flight claims (rack-wide).
    pub fn fetching_count(&self) -> usize {
        self.chunks
            .values()
            .filter(|s| matches!(s, ChunkState::Fetching { .. }))
            .count()
    }

    /// Number of in-flight claims held by `node`.
    pub fn fetching_of(&self, node: u32) -> usize {
        self.chunks
            .values()
            .filter(|s| matches!(s, ChunkState::Fetching { node: n } if *n == node))
            .count()
    }

    /// Deterministically ordered snapshot of the present chunks
    /// (`hash → (frame, len, committer)`), for replay-equivalence
    /// checks.
    pub fn present_snapshot(&self) -> BTreeMap<u64, (u64, u32, u32)> {
        self.chunks
            .iter()
            .filter_map(|(h, s)| match s {
                ChunkState::Present { frame, len, by } => Some((*h, (frame.0, *len, *by))),
                ChunkState::Fetching { .. } => None,
            })
            .collect()
    }

    fn apply_decoded(&mut self, op: &[u8]) -> Option<()> {
        let mut d = Decoder::new(op);
        match d.u8().ok()? {
            OP_CLAIM => {
                let node = d.u32().ok()?;
                let count = d.u32().ok()?;
                for _ in 0..count {
                    let hash = d.u64().ok()?;
                    self.chunks
                        .entry(hash)
                        .or_insert(ChunkState::Fetching { node });
                }
            }
            OP_COMMIT => {
                let node = d.u32().ok()?;
                let count = d.u32().ok()?;
                for _ in 0..count {
                    let hash = d.u64().ok()?;
                    let frame = GAddr(d.u64().ok()?);
                    let len = d.u32().ok()?;
                    let lands = match self.chunks.get(&hash) {
                        None => true,
                        Some(ChunkState::Fetching { node: n }) => *n == node,
                        Some(ChunkState::Present { .. }) => false,
                    };
                    if lands {
                        self.chunks.insert(
                            hash,
                            ChunkState::Present {
                                frame,
                                len,
                                by: node,
                            },
                        );
                        self.committed_chunks += 1;
                        self.committed_bytes += u64::from(len);
                    } else {
                        self.ignored_ops += 1;
                    }
                }
            }
            OP_ABORT => {
                let node = d.u32().ok()?;
                let before = self.chunks.len();
                self.chunks
                    .retain(|_, s| !matches!(s, ChunkState::Fetching { node: n } if *n == node));
                self.aborted_claims += (before - self.chunks.len()) as u64;
            }
            _ => self.ignored_ops += 1,
        }
        Some(())
    }
}

impl SyncState for ChunkIndexState {
    fn apply(&mut self, op: &[u8]) {
        if self.apply_decoded(op).is_none() {
            self.ignored_ops += 1;
        }
    }
}

/// Encode a `CLAIM` op.
///
/// # Panics
///
/// Panics if `hashes` exceeds `u32::MAX` entries.
pub fn claim_op(node: u32, hashes: &[u64]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_CLAIM)
        .put_u32(node)
        .put_u32(u32::try_from(hashes.len()).expect("claim batch fits u32"));
    for &h in hashes {
        e.put_u64(h);
    }
    e.into_vec()
}

/// Encode a `COMMIT` op over `(hash, frame, len)` entries.
///
/// # Panics
///
/// Panics if `entries` exceeds `u32::MAX` entries.
pub fn commit_op(node: u32, entries: &[(u64, GAddr, u32)]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_COMMIT)
        .put_u32(node)
        .put_u32(u32::try_from(entries.len()).expect("commit batch fits u32"));
    for &(hash, frame, len) in entries {
        e.put_u64(hash).put_u64(frame.0).put_u32(len);
    }
    e.into_vec()
}

/// Encode an `ABORT` op for all of `node`'s claims.
pub fn abort_op(node: u32) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_ABORT).put_u32(node);
    e.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_all(state: &mut ChunkIndexState, ops: &[Vec<u8>]) {
        for op in ops {
            state.apply(op);
        }
    }

    #[test]
    fn first_claim_in_log_order_wins() {
        let mut s = ChunkIndexState::default();
        apply_all(&mut s, &[claim_op(0, &[10, 11]), claim_op(1, &[11, 12])]);
        assert_eq!(s.get(10), Some(ChunkState::Fetching { node: 0 }));
        assert_eq!(
            s.get(11),
            Some(ChunkState::Fetching { node: 0 }),
            "node 0 claimed first"
        );
        assert_eq!(s.get(12), Some(ChunkState::Fetching { node: 1 }));
        assert_eq!(s.fetching_of(0), 2);
        assert_eq!(s.fetching_of(1), 1);
    }

    #[test]
    fn commit_lands_only_for_the_claim_holder() {
        let mut s = ChunkIndexState::default();
        apply_all(
            &mut s,
            &[
                claim_op(0, &[10]),
                commit_op(1, &[(10, GAddr(0x1000), 4096)]), // stale: node 1 never claimed
                commit_op(0, &[(10, GAddr(0x2000), 4096)]),
            ],
        );
        assert_eq!(
            s.get(10),
            Some(ChunkState::Present {
                frame: GAddr(0x2000),
                len: 4096,
                by: 0
            })
        );
        assert_eq!(s.committed_chunks, 1);
        assert_eq!(s.committed_bytes, 4096);
        assert_eq!(s.ignored_ops, 1, "the stale commit was ignored");
    }

    #[test]
    fn abort_reverts_only_the_dead_nodes_claims() {
        let mut s = ChunkIndexState::default();
        apply_all(
            &mut s,
            &[
                claim_op(0, &[10]),
                claim_op(1, &[11]),
                commit_op(1, &[(11, GAddr(0x3000), 4096)]),
                abort_op(0),
            ],
        );
        assert_eq!(s.get(10), None, "dead node's claim reverted");
        assert!(matches!(s.get(11), Some(ChunkState::Present { .. })));
        assert_eq!(s.aborted_claims, 1);
        // A survivor can now re-claim and commit.
        apply_all(
            &mut s,
            &[
                claim_op(1, &[10]),
                commit_op(1, &[(10, GAddr(0x4000), 4096)]),
            ],
        );
        assert!(matches!(s.get(10), Some(ChunkState::Present { .. })));
        assert_eq!(s.fetching_count(), 0);
    }

    #[test]
    fn replay_reproduces_the_same_state() {
        let ops = vec![
            claim_op(0, &[1, 2, 3]),
            commit_op(0, &[(1, GAddr(0x1000), 4096), (2, GAddr(0x2000), 4096)]),
            abort_op(0),
            claim_op(1, &[3]),
            commit_op(1, &[(3, GAddr(0x3000), 4096)]),
        ];
        let mut a = ChunkIndexState::default();
        let mut b = ChunkIndexState::default();
        apply_all(&mut a, &ops);
        apply_all(&mut b, &ops);
        assert_eq!(a.present_snapshot(), b.present_snapshot());
        assert_eq!(a.present_snapshot().len(), 3);
        assert_eq!(a.fetching_count(), 0);
    }

    #[test]
    fn malformed_ops_are_ignored_not_fatal() {
        let mut s = ChunkIndexState::default();
        s.apply(&[]);
        s.apply(&[99, 1, 2, 3]);
        s.apply(&claim_op(0, &[5])[..3]); // truncated
        assert_eq!(s.ignored_ops, 3);
        assert_eq!(s.present_count(), 0);
    }
}
