//! [`ChunkStore`] — claim, fetch, intern, commit.
//!
//! The store stitches the three layers together: the [`SyncCell`]-backed
//! chunk index decides who fetches what (first `CLAIM` in log order wins
//! — single-flight per hash, rack-wide), the sharded backends serve the
//! actual bytes in parallel slices, and the page deduper interns each
//! chunk into one shared global frame (identical content across
//! unrelated images lands on the same frame).
//!
//! The fast path for a caller is [`ChunkStore::ensure`]: "make these
//! chunks resident rack-wide". Chunks already present cost a batched
//! index read; chunks nobody holds are claimed, fetched and committed
//! by this node; chunks another node is mid-fetch on are *waited for*
//! (fill coalescing — the same discipline the node cache uses for
//! single-flight fills) and charged one cache hit, not a download.
//!
//! Crash safety: a fetcher that dies mid-fetch leaves `Fetching`
//! entries in the index. [`ChunkStore`] implements
//! [`SyncRecover`], so an attached `RecoveryOrchestrator` drains the
//! cell's committed log and appends an `ABORT` op for the dead node —
//! survivors then re-claim and finish the download, and nothing is
//! fetched twice.
//!
//! [`SyncCell`]: flacdk::sync::SyncCell

use crate::backend::ShardedBackends;
use crate::chunk_hash;
use crate::index::{abort_op, claim_op, commit_op, ChunkIndexState, ChunkState};
use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncRecover};
use flacos_mem::dedup::PageDeduper;
use rack_sim::sync::{Condvar, Mutex};
use rack_sim::{GAddr, GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction parameters for a [`ChunkStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Nodes that may operate on the store.
    pub nodes: usize,
    /// Chunk-index op-log capacity in slots.
    pub log_capacity: usize,
    /// Chunk-index op-log slot size in bytes.
    pub log_entry_size: usize,
    /// Max hashes per claim/commit op (bounded by the slot size).
    pub claim_batch: usize,
    /// Index synchronization policy (read-mostly ⇒ replicated).
    pub policy: SyncPolicy,
}

impl StoreConfig {
    /// Defaults: 1024-slot log of 8 KiB entries (8 MiB of global
    /// memory), 256-hash batches, node-replicated index (every serving
    /// node both claims and commits, so the multi-writer batch tier
    /// wins over per-op delegation or replicated tail checks).
    pub fn new(nodes: usize) -> Self {
        StoreConfig {
            nodes,
            log_capacity: 1024,
            log_entry_size: 8192,
            claim_batch: 256,
            policy: SyncPolicy::NodeReplicated,
        }
    }

    /// Override the op-log geometry.
    pub fn with_log(mut self, capacity: usize, entry_size: usize) -> Self {
        self.log_capacity = capacity;
        self.log_entry_size = entry_size;
        self
    }

    /// Override the claim/commit batch size.
    pub fn with_claim_batch(mut self, batch: usize) -> Self {
        self.claim_batch = batch.max(1);
        self
    }
}

/// Store effectiveness counters (a snapshot; all relaxed atomics on the
/// hot path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Chunks this store instance downloaded from backends.
    pub chunks_fetched: u64,
    /// Bytes downloaded from backends.
    pub bytes_fetched: u64,
    /// Requested chunks already present rack-wide.
    pub rack_hits: u64,
    /// Requested chunks served by waiting on another node's in-flight
    /// fetch (single-flight coalescing).
    pub coalesced: u64,
    /// Claims lost to an earlier claim in log order.
    pub claims_lost: u64,
    /// Commits that arrived after the claim was re-assigned (frame
    /// released, chunk retried).
    pub commits_lost: u64,
    /// In-flight claims aborted on behalf of crashed nodes.
    pub claims_aborted: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    chunks_fetched: AtomicU64,
    bytes_fetched: AtomicU64,
    rack_hits: AtomicU64,
    coalesced: AtomicU64,
    claims_lost: AtomicU64,
    commits_lost: AtomicU64,
    claims_aborted: AtomicU64,
}

/// What a [`ChunkStore::claim`] call learned about each requested hash.
#[derive(Debug, Default, Clone)]
pub struct ClaimOutcome {
    /// Hashes this node now owns the fetch for.
    pub won: Vec<u64>,
    /// Hashes already resident: `(hash, frame, len)`.
    pub present: Vec<(u64, GAddr, u32)>,
    /// Hashes another node is currently fetching.
    pub in_flight: Vec<u64>,
}

/// What one [`ChunkStore::ensure`] call did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EnsureReport {
    /// Hashes requested (including duplicates).
    pub requested: u64,
    /// Duplicate hashes in the request (served once).
    pub duplicates: u64,
    /// Chunks this call downloaded and committed.
    pub fetched: u64,
    /// Bytes this call downloaded.
    pub bytes_fetched: u64,
    /// Chunks already resident rack-wide.
    pub rack_hits: u64,
    /// Chunks served by coalescing onto another node's fetch.
    pub coalesced: u64,
}

/// What one [`ChunkStore::complete`] call did.
#[derive(Debug, Default, Clone)]
pub struct CompleteOutcome {
    /// Chunks fetched, interned, and committed present.
    pub committed: u64,
    /// Bytes downloaded for the committed chunks.
    pub bytes: u64,
    /// Hashes whose commit lost to a recovery re-claim (frame released;
    /// re-claim them to make progress).
    pub lost: Vec<u64>,
}

/// The content-addressed chunk store (see module docs).
#[derive(Debug)]
pub struct ChunkStore {
    cell: Arc<SyncCell<ChunkIndexState>>,
    backends: Arc<ShardedBackends>,
    dedup: Arc<PageDeduper>,
    claim_batch: usize,
    // coherent-local: host-side wakeup channel for rack-wide fill
    // waiting; the rack-visible protocol state is the SyncCell index,
    // and waiters re-validate against it (charged) before returning.
    fill_epoch: Mutex<u64>,
    fill_cv: Condvar,
    stats: StatCells,
}

impl ChunkStore {
    /// Allocate the store's chunk index in `global` memory.
    ///
    /// # Errors
    ///
    /// Propagates global-memory allocation errors.
    pub fn alloc(
        global: &GlobalMemory,
        backends: Arc<ShardedBackends>,
        dedup: Arc<PageDeduper>,
        cfg: StoreConfig,
    ) -> Result<Arc<Self>, SimError> {
        let cell = SyncCell::alloc(
            global,
            "chunk_index",
            SyncCellConfig::new(cfg.nodes, cfg.policy)
                .with_log(cfg.log_capacity, cfg.log_entry_size),
            ChunkIndexState::default(),
        )?;
        // A claim op is 9 + 8·batch bytes, a commit op 9 + 20·batch:
        // both must fit one log slot after the slot header (16 B) and
        // the SyncCell op frame.
        let max_op = 9 + 20 * cfg.claim_batch;
        let overhead = 16 + flacdk::sync::FRAME_BYTES;
        assert!(
            max_op + overhead <= cfg.log_entry_size,
            "claim_batch {} needs {} B ops but log slots hold {} B",
            cfg.claim_batch,
            max_op,
            cfg.log_entry_size - overhead,
        );
        Ok(Arc::new(ChunkStore {
            cell,
            backends,
            dedup,
            claim_batch: cfg.claim_batch,
            fill_epoch: Mutex::new(0),
            fill_cv: Condvar::new(),
            stats: StatCells::default(),
        }))
    }

    /// The backend shards this store fetches from.
    pub fn backends(&self) -> &Arc<ShardedBackends> {
        &self.backends
    }

    /// The frame deduper chunks are interned into.
    pub fn dedup(&self) -> &Arc<PageDeduper> {
        &self.dedup
    }

    /// Uncharged host-side inspection of the index (tests, invariants).
    pub fn peek_index<R>(&self, f: impl FnOnce(&ChunkIndexState) -> R) -> R {
        self.cell.peek(f)
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            chunks_fetched: self.stats.chunks_fetched.load(Ordering::Relaxed),
            bytes_fetched: self.stats.bytes_fetched.load(Ordering::Relaxed),
            rack_hits: self.stats.rack_hits.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            claims_lost: self.stats.claims_lost.load(Ordering::Relaxed),
            commits_lost: self.stats.commits_lost.load(Ordering::Relaxed),
            claims_aborted: self.stats.claims_aborted.load(Ordering::Relaxed),
        }
    }

    fn notify_fills(&self) {
        let mut epoch = self.fill_epoch.lock();
        *epoch += 1;
        self.fill_cv.notify_all();
    }

    /// Claim fetch ownership of `hashes`. One batched index read
    /// classifies them; the absent ones go into a `CLAIM` op whose
    /// post-op state (log order!) decides who actually won each hash.
    ///
    /// # Errors
    ///
    /// Propagates index (fabric / log) errors.
    pub fn claim(&self, ctx: &NodeCtx, hashes: &[u64]) -> Result<ClaimOutcome, SimError> {
        let me = ctx.id().0 as u32;
        let mut out = ClaimOutcome::default();
        for batch in hashes.chunks(self.claim_batch) {
            let pre: Vec<Option<ChunkState>> = self
                .cell
                .read(ctx, |s| batch.iter().map(|&h| s.get(h)).collect())?;
            let mut to_claim = Vec::new();
            for (&h, st) in batch.iter().zip(&pre) {
                match st {
                    Some(ChunkState::Present { frame, len, .. }) => {
                        out.present.push((h, *frame, *len));
                    }
                    Some(ChunkState::Fetching { node }) if *node == me => out.won.push(h),
                    Some(ChunkState::Fetching { .. }) => out.in_flight.push(h),
                    None => to_claim.push(h),
                }
            }
            if to_claim.is_empty() {
                continue;
            }
            let op = claim_op(me, &to_claim);
            let (_, post): (u64, Vec<Option<ChunkState>>) =
                self.cell
                    .update_map(ctx, &op, |s| to_claim.iter().map(|&h| s.get(h)).collect())?;
            for (&h, st) in to_claim.iter().zip(&post) {
                match st {
                    Some(ChunkState::Fetching { node }) if *node == me => out.won.push(h),
                    Some(ChunkState::Fetching { .. }) => {
                        self.stats.claims_lost.fetch_add(1, Ordering::Relaxed);
                        out.in_flight.push(h);
                    }
                    Some(ChunkState::Present { frame, len, .. }) => {
                        out.present.push((h, *frame, *len));
                    }
                    // Claimed and aborted between our op and the map —
                    // only possible with a concurrent recovery; retry.
                    None => out.in_flight.push(h),
                }
            }
        }
        self.stats
            .rack_hits
            .fetch_add(out.present.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Fetch and commit chunks this node won the claim for: parallel
    /// sharded download, hash verification, dedup intern, `COMMIT` op.
    ///
    /// This is the second half of the two-phase `claim`/`complete`
    /// protocol [`ChunkStore::ensure`] wraps. Drive it directly when
    /// the caller needs a crash window *between* the phases (the fault
    /// storm does exactly that); `won` must be hashes this node won via
    /// [`ChunkStore::claim`].
    ///
    /// # Errors
    ///
    /// Propagates backend, dedup, and index errors.
    pub fn complete(&self, ctx: &NodeCtx, won: &[u64]) -> Result<CompleteOutcome, SimError> {
        let mut out = CompleteOutcome {
            committed: 0,
            bytes: 0,
            lost: Vec::new(),
        };
        if won.is_empty() {
            return Ok(out);
        }
        let me = ctx.id().0 as u32;
        let blobs = self.backends.fetch_many(ctx, won)?;
        for (hash_batch, blob_batch) in won
            .chunks(self.claim_batch)
            .zip(blobs.chunks(self.claim_batch))
        {
            let mut entries = Vec::with_capacity(hash_batch.len());
            for (&h, blob) in hash_batch.iter().zip(blob_batch) {
                if chunk_hash(blob) != h {
                    return Err(SimError::Protocol(format!(
                        "backend shipped corrupt bytes for chunk {h:#018x}"
                    )));
                }
                let frame = self.dedup.intern_with_hash(ctx, h, blob)?;
                entries.push((h, frame, blob.len() as u32));
            }
            let op = commit_op(me, &entries);
            let (_, landed): (u64, Vec<bool>) = self.cell.update_map(ctx, &op, |s| {
                entries
                    .iter()
                    .map(|&(h, frame, _)| {
                        // Authorship, not frame equality: identical
                        // content interns to the same frame rack-wide,
                        // so only `by` distinguishes a landed commit
                        // from one that lost to a recovery re-claim.
                        matches!(
                            s.get(h),
                            Some(ChunkState::Present { frame: f, by, .. }) if f == frame && by == me
                        )
                    })
                    .collect()
            })?;
            for (&(h, frame, len), &ok) in entries.iter().zip(&landed) {
                if ok {
                    out.committed += 1;
                    out.bytes += u64::from(len);
                } else {
                    // Our claim was re-assigned (recovery decided we
                    // were dead); release the duplicate ref and retry.
                    self.dedup.release(ctx, frame)?;
                    self.stats.commits_lost.fetch_add(1, Ordering::Relaxed);
                    out.lost.push(h);
                }
            }
        }
        self.stats
            .chunks_fetched
            .fetch_add(out.committed, Ordering::Relaxed);
        self.stats
            .bytes_fetched
            .fetch_add(out.bytes, Ordering::Relaxed);
        self.notify_fills();
        Ok(out)
    }

    /// Wait for other nodes' in-flight fetches of `hashes` to resolve.
    /// Returns the hashes that ended up *absent* (their fetcher was
    /// aborted — caller should re-claim) and the count served by
    /// coalescing.
    fn await_fills(&self, ctx: &NodeCtx, hashes: &[u64]) -> Result<(Vec<u64>, u64), SimError> {
        loop {
            let (missing, fetching, present) = self.cell.read(ctx, |s| {
                let mut missing = Vec::new();
                let (mut fetching, mut present) = (0u64, 0u64);
                for &h in hashes {
                    match s.get(h) {
                        None => missing.push(h),
                        Some(ChunkState::Fetching { .. }) => fetching += 1,
                        Some(ChunkState::Present { .. }) => present += 1,
                    }
                }
                (missing, fetching, present)
            })?;
            if fetching == 0 {
                // A coalesced chunk costs one local cache hit — the
                // same charge a coalesced fill pays in the node cache.
                ctx.charge(present.saturating_mul(ctx.latency().cache_hit_ns));
                self.stats.coalesced.fetch_add(present, Ordering::Relaxed);
                return Ok((missing, present));
            }
            let guard = self.fill_epoch.lock();
            // Re-validate under the lock: a commit between the read
            // above and this acquisition must not become a lost wakeup.
            let still_in_flight = self.cell.peek(|s| {
                hashes
                    .iter()
                    .any(|&h| matches!(s.get(h), Some(ChunkState::Fetching { .. })))
            });
            if still_in_flight {
                drop(self.fill_cv.wait(guard));
            }
        }
    }

    /// Make `hashes` resident rack-wide: claim what is absent, fetch
    /// won claims in parallel across backend shards, wait out (coalesce
    /// onto) other nodes' in-flight fetches.
    ///
    /// Blocks until every hash is present. If a claim holder crashes,
    /// progress resumes once recovery appends its `ABORT` op
    /// ([`ChunkStore::abort_node`] / the attached orchestrator).
    ///
    /// # Errors
    ///
    /// Propagates backend and index errors (e.g. a hash no backend
    /// serves).
    pub fn ensure(&self, ctx: &NodeCtx, hashes: &[u64]) -> Result<EnsureReport, SimError> {
        let mut rep = EnsureReport {
            requested: hashes.len() as u64,
            ..EnsureReport::default()
        };
        let mut seen = std::collections::HashSet::with_capacity(hashes.len());
        let mut remaining: Vec<u64> = hashes.iter().copied().filter(|&h| seen.insert(h)).collect();
        rep.duplicates = rep.requested - remaining.len() as u64;
        while !remaining.is_empty() {
            let claim = self.claim(ctx, &remaining)?;
            rep.rack_hits += claim.present.len() as u64;
            let mut retry = Vec::new();
            if !claim.won.is_empty() {
                let done = self.complete(ctx, &claim.won)?;
                rep.fetched += done.committed;
                rep.bytes_fetched += done.bytes;
                retry.extend(done.lost);
            }
            if !claim.in_flight.is_empty() {
                let (absent, coalesced) = self.await_fills(ctx, &claim.in_flight)?;
                rep.coalesced += coalesced;
                retry.extend(absent);
            }
            remaining = retry;
        }
        Ok(rep)
    }

    /// Resolve `hashes` to their resident frames (one batched index
    /// read per [`StoreConfig::claim_batch`] hashes). Absent or
    /// in-flight chunks come back as `None`.
    ///
    /// # Errors
    ///
    /// Propagates index read errors.
    pub fn lookup(
        &self,
        ctx: &NodeCtx,
        hashes: &[u64],
    ) -> Result<Vec<Option<(GAddr, u32)>>, SimError> {
        let mut out = Vec::with_capacity(hashes.len());
        for batch in hashes.chunks(self.claim_batch) {
            let states: Vec<Option<(GAddr, u32)>> = self.cell.read(ctx, |s| {
                batch
                    .iter()
                    .map(|&h| match s.get(h) {
                        Some(ChunkState::Present { frame, len, .. }) => Some((frame, len)),
                        _ => None,
                    })
                    .collect()
            })?;
            out.extend(states);
        }
        Ok(out)
    }

    /// Read one resident chunk's bytes into `buf` (fabric-charged).
    /// Returns `false` if the chunk is not resident.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is smaller than the chunk.
    pub fn read_chunk(&self, ctx: &NodeCtx, hash: u64, buf: &mut [u8]) -> Result<bool, SimError> {
        match self.lookup(ctx, &[hash])?[0] {
            Some((frame, len)) => {
                let len = len as usize;
                assert!(buf.len() >= len, "chunk buffer too small");
                ctx.invalidate(frame, len);
                ctx.read(frame, &mut buf[..len])?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Read and hash-verify one resident chunk (`None` if absent).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn verify_chunk(&self, ctx: &NodeCtx, hash: u64) -> Result<Option<bool>, SimError> {
        let mut buf = vec![0u8; crate::CHUNK_SIZE];
        match self.lookup(ctx, &[hash])?[0] {
            Some((frame, len)) => {
                let len = len as usize;
                ctx.invalidate(frame, len);
                ctx.read(frame, &mut buf[..len])?;
                Ok(Some(chunk_hash(&buf[..len]) == hash))
            }
            None => Ok(None),
        }
    }

    /// Abort every in-flight claim held by `node` (crash recovery).
    /// Returns the number of claims reverted.
    ///
    /// # Errors
    ///
    /// Propagates index errors.
    pub fn abort_node(&self, ctx: &NodeCtx, node: NodeId) -> Result<u64, SimError> {
        let dead = node.0 as u32;
        let pending = self.cell.read(ctx, |s| s.fetching_of(dead))? as u64;
        if pending > 0 {
            self.cell.update(ctx, &abort_op(dead))?;
            self.stats
                .claims_aborted
                .fetch_add(pending, Ordering::Relaxed);
        }
        self.notify_fills();
        Ok(pending)
    }

    /// Replay the committed op log from scratch and compare the present
    /// map against the live state — the recovery-equivalence invariant.
    ///
    /// # Errors
    ///
    /// Propagates log read errors.
    pub fn replay_matches(&self, ctx: &NodeCtx) -> Result<bool, SimError> {
        let (replayed, _) = self.cell.replay(ctx, ChunkIndexState::default())?;
        Ok(self.cell.peek(|s| s.present_snapshot()) == replayed.present_snapshot())
    }

    /// Advance the op log head past fully-applied entries.
    ///
    /// # Errors
    ///
    /// Propagates log errors.
    pub fn gc(&self, ctx: &NodeCtx) -> Result<(), SimError> {
        self.cell.gc(ctx)
    }
}

impl SyncRecover for ChunkStore {
    fn cell_name(&self) -> &'static str {
        self.cell.name()
    }

    fn recover_after_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError> {
        let reelected = self.cell.recover_after_crash(ctx, crashed)?;
        let aborted = self.abort_node(ctx, crashed)?;
        Ok(reelected || aborted > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use crate::CHUNK_SIZE;
    use flacos_mem::fault::FrameAllocator;
    use rack_sim::{Rack, RackConfig};

    fn chunk(seed: u64) -> Vec<u8> {
        let mut c = vec![0u8; CHUNK_SIZE];
        for (i, b) in c.iter_mut().enumerate() {
            *b = ((seed.wrapping_mul(31).wrapping_add(i as u64)) % 251) as u8;
        }
        c
    }

    fn setup(shards: usize) -> (Rack, Arc<ChunkStore>) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let backends = Arc::new(ShardedBackends::uniform(
            shards,
            BackendConfig {
                bandwidth_bytes_per_sec: 100_000_000,
                per_request_ns: 10_000,
                per_chunk_ns: 100,
            },
        ));
        let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
        let store = ChunkStore::alloc(
            rack.global(),
            backends,
            dedup,
            StoreConfig::new(rack.node_count())
                .with_log(512, 2048)
                .with_claim_batch(64),
        )
        .unwrap();
        (rack, store)
    }

    fn publish(store: &ChunkStore, seeds: std::ops::Range<u64>) -> Vec<u64> {
        seeds
            .map(|s| {
                let data = chunk(s);
                let h = chunk_hash(&data);
                store.backends().publish(data);
                h
            })
            .collect()
    }

    #[test]
    fn ensure_fetches_once_then_hits() {
        let (rack, store) = setup(4);
        let hashes = publish(&store, 0..100);
        let n0 = rack.node(0);
        let rep = store.ensure(&n0, &hashes).unwrap();
        assert_eq!(rep.fetched, 100);
        assert_eq!(rep.bytes_fetched, 100 * CHUNK_SIZE as u64);
        assert_eq!(rep.rack_hits, 0);

        // Second node: everything is a rack hit, nothing re-downloads.
        let n1 = rack.node(1);
        let rep2 = store.ensure(&n1, &hashes).unwrap();
        assert_eq!(rep2.fetched, 0);
        assert_eq!(rep2.rack_hits, 100);
        assert_eq!(store.backends().total_stats().chunks_shipped, 100);
        for &h in &hashes {
            assert_eq!(
                store.backends().fetch_count(h),
                1,
                "chunk fetched exactly once"
            );
            assert_eq!(store.verify_chunk(&n1, h).unwrap(), Some(true));
        }
    }

    #[test]
    fn duplicate_hashes_in_one_request_are_served_once() {
        let (rack, store) = setup(2);
        let hashes = publish(&store, 0..10);
        let mut req = hashes.clone();
        req.extend_from_slice(&hashes);
        let rep = store.ensure(&rack.node(0), &req).unwrap();
        assert_eq!(rep.requested, 20);
        assert_eq!(rep.duplicates, 10);
        assert_eq!(rep.fetched, 10);
    }

    #[test]
    fn identical_content_across_names_interns_one_frame() {
        let (rack, store) = setup(2);
        // Two "images" sharing 5 of their 10 chunks.
        let a = publish(&store, 0..10);
        let b = publish(&store, 5..15);
        let n0 = rack.node(0);
        store.ensure(&n0, &a).unwrap();
        store.ensure(&n0, &b).unwrap();
        // 15 distinct chunks → 15 frames; the 5 shared ones dedup by
        // having the same hash (same chunk), not by luck.
        assert_eq!(store.dedup().stats().unique_frames, 15);
        assert_eq!(store.backends().total_stats().chunks_shipped, 15);
        assert_eq!(b[..5], a[5..], "overlapping seeds share hashes");
    }

    #[test]
    fn unknown_chunk_propagates_a_protocol_error() {
        let (rack, store) = setup(2);
        assert!(store.ensure(&rack.node(0), &[0xdead_beef]).is_err());
    }

    #[test]
    fn crashed_fetcher_claims_are_aborted_and_retaken() {
        let (rack, store) = setup(2);
        let hashes = publish(&store, 0..20);
        let n0 = rack.node(0);
        let n1 = rack.node(1);

        // Node 0 claims everything, then "crashes" before completing.
        let claim = store.claim(&n0, &hashes).unwrap();
        assert_eq!(claim.won.len(), 20);
        assert_eq!(store.peek_index(|s| s.fetching_of(0)), 20);

        // Recovery (as the orchestrator would drive it via SyncRecover).
        let recovered = store.recover_after_crash(&n1, rack_sim::NodeId(0)).unwrap();
        assert!(recovered);
        assert_eq!(store.peek_index(|s| s.fetching_count()), 0);

        // The survivor finishes the start; nothing is fetched twice.
        let rep = store.ensure(&n1, &hashes).unwrap();
        assert_eq!(rep.fetched, 20);
        for &h in &hashes {
            assert_eq!(store.backends().fetch_count(h), 1);
        }
        assert!(store.replay_matches(&n1).unwrap());
    }

    #[test]
    fn late_commit_after_abort_releases_the_duplicate_frame() {
        let (rack, store) = setup(2);
        let hashes = publish(&store, 0..4);
        let n0 = rack.node(0);
        let n1 = rack.node(1);

        let claim = store.claim(&n0, &hashes).unwrap();
        assert_eq!(claim.won.len(), 4);
        // Recovery decides node 0 is dead; node 1 re-claims and commits.
        store.abort_node(&n1, rack_sim::NodeId(0)).unwrap();
        store.ensure(&n1, &hashes).unwrap();
        let frames_before = store.dedup().stats().unique_frames;

        // Node 0 was merely slow, not dead: its complete() now loses.
        let done = store.complete(&n0, &claim.won).unwrap();
        assert_eq!(done.committed, 0);
        assert_eq!(done.lost.len(), 4);
        assert_eq!(store.stats().commits_lost, 4);
        assert_eq!(
            store.dedup().stats().unique_frames,
            frames_before,
            "lost commits release their interned frames"
        );
        assert!(store.replay_matches(&n0).unwrap());
    }

    #[test]
    fn concurrent_starters_single_flight_each_chunk() {
        let (rack, store) = setup(4);
        let hashes = publish(&store, 0..200);
        let n0 = rack.node(0);
        let n1 = rack.node(1);
        let (s0, s1) = (store.clone(), store.clone());
        let (h0, h1) = (hashes.clone(), hashes.clone());
        let t0 = std::thread::spawn(move || s0.ensure(&n0, &h0).unwrap());
        let t1 = std::thread::spawn(move || s1.ensure(&n1, &h1).unwrap());
        let r0 = t0.join().unwrap();
        let r1 = t1.join().unwrap();

        // Each chunk was downloaded exactly once, rack-wide, no matter
        // how the two starters interleaved.
        for &h in &hashes {
            assert_eq!(store.backends().fetch_count(h), 1, "single-flight per hash");
        }
        assert_eq!(r0.fetched + r1.fetched, 200);
        assert_eq!(
            r0.rack_hits + r0.coalesced + r1.rack_hits + r1.coalesced,
            200,
            "the loser of each race is served without a download"
        );
        assert_eq!(store.peek_index(|s| s.present_count()), 200);
        assert!(store.replay_matches(&rack.node(0)).unwrap());
    }
}
