//! Global (rack-shared) and node-local memory.
//!
//! Global memory is the load/store-accessible pool the memory interconnect
//! exposes to every node. It is word-addressable through atomics so that it
//! can be safely shared between host threads, models *poisoned* words for
//! fault injection, and provides a simple bump allocator on which higher
//! layers (the FlacDK object allocator) build real allocation policies.
//!
//! Byte-granular accesses are implemented as read-modify-write of the
//! containing 64-bit words. Two host threads concurrently writing
//! *different bytes of the same word* outside of the cache layer can race;
//! all layers above either use word-aligned fields or partition buffers at
//! word granularity, mirroring how real fabrics serialize at the home node.

use crate::error::SimError;
use crate::sync::RwLock;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Byte address in the rack's global memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GAddr(pub u64);

impl GAddr {
    /// Address `bytes` past this one.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows the 64-bit address space — in *both*
    /// build profiles. The previous unchecked add wrapped silently in
    /// release builds, turning a bad pointer into a valid-looking one.
    /// Fallible callers should use [`GAddr::checked_offset`].
    #[must_use]
    pub fn offset(self, bytes: u64) -> GAddr {
        GAddr(
            self.0
                .checked_add(bytes)
                .expect("GAddr::offset overflowed the u64 address space"),
        )
    }

    /// Address `bytes` past this one, or [`SimError::OutOfBounds`] if the
    /// result overflows the 64-bit address space.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfBounds`] on overflow.
    pub fn checked_offset(self, bytes: u64) -> Result<GAddr, SimError> {
        self.0
            .checked_add(bytes)
            .map(GAddr)
            .ok_or(SimError::OutOfBounds {
                addr: self,
                len: usize::try_from(bytes).unwrap_or(usize::MAX),
                capacity: 0,
            })
    }

    /// Round up to the next multiple of `align` (which must be a power of two).
    #[must_use]
    pub fn align_up(self, align: u64) -> GAddr {
        debug_assert!(align.is_power_of_two());
        GAddr((self.0 + align - 1) & !(align - 1))
    }

    /// Whether this address is a multiple of `align`.
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }

    /// Index of the 64-bit word containing this address.
    pub(crate) fn word_index(self) -> usize {
        (self.0 / 8) as usize
    }
}

impl fmt::Display for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g:{:#x}", self.0)
    }
}

/// The rack-wide shared memory pool.
///
/// All state is interiorly mutable and `Sync`: the pool is shared by every
/// node (and by every host thread in multi-threaded tests).
pub struct GlobalMemory {
    words: Vec<AtomicU64>,
    capacity: usize,
    next: AtomicUsize,
    /// Exact number of currently poisoned words, maintained alongside the
    /// locked set. Every access path checks this relaxed atomic first, so
    /// the common no-poison case never touches the `poisoned_words` lock —
    /// line fills from every node's cache funnel through here, and taking
    /// a shared `RwLock` per fill serialized exactly the path the sharded
    /// caches parallelize. (A poison racing an access may land either
    /// before or after it, as on real hardware.)
    poison_count: AtomicUsize,
    poisoned_words: RwLock<HashSet<usize>>,
    /// Debug-only proof that the fast path works: every acquisition of
    /// `poisoned_words` (reader or writer) is counted, so tests can
    /// assert the clean case takes the lock exactly zero times.
    #[cfg(debug_assertions)]
    poison_lock_acquires: AtomicU64,
    /// Debug-only test seam: when non-zero, `read_bytes`/`write_bytes`
    /// sleep this many wall-clock nanoseconds, making in-flight fabric
    /// operations observable to deterministic concurrency tests
    /// (single-flight fill coalescing, eviction-writeback overlap).
    #[cfg(debug_assertions)]
    fabric_delay_ns: AtomicU64,
}

impl fmt::Debug for GlobalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalMemory")
            .field("capacity", &self.capacity)
            .field("allocated", &self.allocated())
            // Read the atomic count, not the set: Debug-printing a pool
            // must not take the poison lock the fast path avoids.
            .field("poisoned", &self.poison_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl GlobalMemory {
    /// Create a pool of `capacity` bytes (rounded up to a whole word),
    /// zero-initialized.
    pub fn new(capacity: usize) -> Self {
        let words = capacity.div_ceil(8);
        GlobalMemory {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            capacity: words * 8,
            next: AtomicUsize::new(0),
            poison_count: AtomicUsize::new(0),
            poisoned_words: RwLock::new(HashSet::new()),
            #[cfg(debug_assertions)]
            poison_lock_acquires: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            fabric_delay_ns: AtomicU64::new(0),
        }
    }

    /// Count one acquisition of the poison-set lock (debug builds only;
    /// compiles to nothing in release).
    #[inline]
    fn note_poison_lock(&self) {
        #[cfg(debug_assertions)]
        self.poison_lock_acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Debug-only: how many times the poison set's `RwLock` has been
    /// acquired. Lets tests assert the clean case is lock-free.
    #[cfg(debug_assertions)]
    pub fn poison_lock_acquisitions(&self) -> u64 {
        self.poison_lock_acquires.load(Ordering::Relaxed)
    }

    /// Debug-only test seam: make every subsequent `read_bytes`/
    /// `write_bytes` sleep `ns` wall-clock nanoseconds, so concurrency
    /// tests can observe an in-flight fabric operation deterministically.
    #[cfg(debug_assertions)]
    pub fn set_fabric_delay_for_tests(&self, ns: u64) {
        self.fabric_delay_ns.store(ns, Ordering::Relaxed);
    }

    /// Apply the debug-only fabric delay (no-op in release builds).
    #[inline]
    fn fabric_delay(&self) {
        #[cfg(debug_assertions)]
        {
            let ns = self.fabric_delay_ns.load(Ordering::Relaxed);
            if ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(ns));
            }
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes handed out by [`GlobalMemory::alloc`] so far.
    pub fn allocated(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }

    /// Bump-allocate `len` bytes aligned to `align`.
    ///
    /// This is the *hardware carve-out* primitive; rich allocation policy
    /// (reuse, reclamation) lives in FlacDK's object allocator.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when the pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&self, len: usize, align: usize) -> Result<GAddr, SimError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let base = (cur + align - 1) & !(align - 1);
            let end = base.checked_add(len).ok_or(SimError::OutOfMemory {
                requested: len,
                remaining: self.capacity - cur,
            })?;
            if end > self.capacity {
                return Err(SimError::OutOfMemory {
                    requested: len,
                    remaining: self.capacity - cur,
                });
            }
            match self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(GAddr(base as u64)),
                Err(actual) => cur = actual,
            }
        }
    }

    fn check_range(&self, addr: GAddr, len: usize) -> Result<(), SimError> {
        let oob = SimError::OutOfBounds {
            addr,
            len,
            capacity: self.capacity,
        };
        // Checked in u64 space: `addr.0 as usize + len` wrapped for
        // addresses near the top of the address space.
        let end = addr.0.checked_add(len as u64).ok_or(oob.clone())?;
        if end > self.capacity as u64 {
            return Err(oob);
        }
        Ok(())
    }

    fn check_poison(&self, first_word: usize, last_word: usize) -> Result<(), SimError> {
        // Lock-free emptiness fast path: with zero poisoned words (the
        // overwhelmingly common case) no access ever takes the set lock.
        if self.poison_count.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        self.note_poison_lock();
        let set = self.poisoned_words.read();
        for w in first_word..=last_word {
            if set.contains(&w) {
                return Err(SimError::PoisonedMemory {
                    addr: GAddr((w * 8) as u64),
                });
            }
        }
        Ok(())
    }

    /// Load the aligned 64-bit word at `addr` directly from the pool
    /// (no cache, no latency charge — the [`crate::NodeCtx`] layer charges).
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn load_u64(&self, addr: GAddr) -> Result<u64, SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        Ok(self.words[addr.word_index()].load(Ordering::SeqCst))
    }

    /// Store the aligned 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn store_u64(&self, addr: GAddr, value: u64) -> Result<(), SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        self.words[addr.word_index()].store(value, Ordering::SeqCst);
        Ok(())
    }

    /// Atomic compare-exchange on the word at `addr`. Returns the previous
    /// value; the exchange succeeded iff the returned value equals `current`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn compare_exchange_u64(
        &self,
        addr: GAddr,
        current: u64,
        new: u64,
    ) -> Result<u64, SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        Ok(
            match self.words[addr.word_index()].compare_exchange(
                current,
                new,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(prev) => prev,
                Err(prev) => prev,
            },
        )
    }

    /// Atomic fetch-add on the word at `addr`; returns the previous value.
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn fetch_add_u64(&self, addr: GAddr, delta: u64) -> Result<u64, SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        Ok(self.words[addr.word_index()].fetch_add(delta, Ordering::SeqCst))
    }

    /// Copy `buf.len()` bytes starting at `addr` into `buf`, bypassing caches.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or poisoned accesses fail.
    pub fn read_bytes(&self, addr: GAddr, buf: &mut [u8]) -> Result<(), SimError> {
        self.check_range(addr, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        self.fabric_delay();
        let first = addr.word_index();
        let last = GAddr(addr.0 + buf.len() as u64 - 1).word_index();
        self.check_poison(first, last)?;
        let mut pos = 0usize;
        let mut a = addr.0 as usize;
        while pos < buf.len() {
            let widx = a / 8;
            let in_word = a % 8;
            let take = (8 - in_word).min(buf.len() - pos);
            let word = self.words[widx].load(Ordering::SeqCst).to_le_bytes();
            buf[pos..pos + take].copy_from_slice(&word[in_word..in_word + take]);
            pos += take;
            a += take;
        }
        Ok(())
    }

    /// Copy `buf` into global memory starting at `addr`, bypassing caches.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or poisoned accesses fail.
    pub fn write_bytes(&self, addr: GAddr, buf: &[u8]) -> Result<(), SimError> {
        self.check_range(addr, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        self.fabric_delay();
        let first = addr.word_index();
        let last = GAddr(addr.0 + buf.len() as u64 - 1).word_index();
        self.check_poison(first, last)?;
        let mut pos = 0usize;
        let mut a = addr.0 as usize;
        while pos < buf.len() {
            let widx = a / 8;
            let in_word = a % 8;
            let take = (8 - in_word).min(buf.len() - pos);
            if take == 8 {
                let mut w = [0u8; 8];
                w.copy_from_slice(&buf[pos..pos + 8]);
                self.words[widx].store(u64::from_le_bytes(w), Ordering::SeqCst);
            } else {
                // Read-modify-write of the partial word.
                let mut w = self.words[widx].load(Ordering::SeqCst).to_le_bytes();
                w[in_word..in_word + take].copy_from_slice(&buf[pos..pos + take]);
                self.words[widx].store(u64::from_le_bytes(w), Ordering::SeqCst);
            }
            pos += take;
            a += take;
        }
        Ok(())
    }

    /// Poison the words covering `[addr, addr+len)`, simulating an
    /// uncorrectable memory error. Subsequent accesses fail with
    /// [`SimError::PoisonedMemory`].
    pub fn poison(&self, addr: GAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + len as u64 - 1).word_index();
        self.note_poison_lock();
        let mut set = self.poisoned_words.write();
        let mut added = 0usize;
        for w in first..=last {
            if set.insert(w) {
                added += 1;
            }
        }
        if added > 0 {
            // Published while the write lock is held, so the count can
            // never exceed the set and the zero fast path stays sound.
            self.poison_count.fetch_add(added, Ordering::Relaxed);
        }
    }

    /// Repair poisoned words in `[addr, addr+len)` (e.g. after a scrubber
    /// rewrote them from redundancy), zeroing their contents.
    pub fn scrub(&self, addr: GAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + len as u64 - 1).word_index();
        self.note_poison_lock();
        let mut set = self.poisoned_words.write();
        let mut removed = 0usize;
        for w in first..=last {
            if set.remove(&w) {
                self.words[w].store(0, Ordering::SeqCst);
                removed += 1;
            }
        }
        if removed > 0 {
            self.poison_count.fetch_sub(removed, Ordering::Relaxed);
        }
    }

    /// Whether any word in `[addr, addr+len)` is currently poisoned.
    pub fn is_poisoned(&self, addr: GAddr, len: usize) -> bool {
        if len == 0 || self.poison_count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + len as u64 - 1).word_index();
        self.note_poison_lock();
        let set = self.poisoned_words.read();
        (first..=last).any(|w| set.contains(&w))
    }
}

/// Byte address in a node's local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LAddr(pub usize);

/// A node's private local memory arena.
///
/// Local memory is always coherent from the owning node's perspective
/// (it is only accessible from that node), so it is a plain byte arena
/// with a bump allocator. The [`crate::NodeCtx`] charges local DRAM
/// latency when accessing it.
#[derive(Debug)]
pub struct LocalMemory {
    bytes: RwLock<Vec<u8>>,
    capacity: usize,
    next: AtomicUsize,
}

impl LocalMemory {
    /// A zeroed local arena of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        LocalMemory {
            bytes: RwLock::new(vec![0; capacity]),
            capacity,
            next: AtomicUsize::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }

    /// Bump-allocate `len` bytes, 8-byte aligned.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when the arena is exhausted.
    pub fn alloc(&self, len: usize) -> Result<LAddr, SimError> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let base = (cur + 7) & !7;
            let end = base + len;
            if end > self.capacity {
                return Err(SimError::OutOfMemory {
                    requested: len,
                    remaining: self.capacity - cur,
                });
            }
            match self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(LAddr(base)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Read `buf.len()` bytes at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the arena.
    pub fn read(&self, addr: LAddr, buf: &mut [u8]) -> Result<(), SimError> {
        let end = addr.0 + buf.len();
        if end > self.capacity {
            return Err(SimError::OutOfBounds {
                addr: GAddr(addr.0 as u64),
                len: buf.len(),
                capacity: self.capacity,
            });
        }
        buf.copy_from_slice(&self.bytes.read()[addr.0..end]);
        Ok(())
    }

    /// Write `buf` at `addr`.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the arena.
    pub fn write(&self, addr: LAddr, buf: &[u8]) -> Result<(), SimError> {
        let end = addr.0 + buf.len();
        if end > self.capacity {
            return Err(SimError::OutOfBounds {
                addr: GAddr(addr.0 as u64),
                len: buf.len(),
                capacity: self.capacity,
            });
        }
        self.bytes.write()[addr.0..end].copy_from_slice(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_capacity() {
        let m = GlobalMemory::new(128);
        let a = m.alloc(10, 8).unwrap();
        assert!(a.is_aligned(8));
        let b = m.alloc(8, 64).unwrap();
        assert!(b.is_aligned(64));
        assert!(b.0 >= a.0 + 10);
        assert!(m.alloc(1024, 8).is_err());
    }

    #[test]
    fn word_load_store_roundtrip() {
        let m = GlobalMemory::new(64);
        let a = m.alloc(8, 8).unwrap();
        m.store_u64(a, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.load_u64(a).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn misaligned_word_access_fails() {
        let m = GlobalMemory::new(64);
        assert!(matches!(
            m.load_u64(GAddr(3)),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            m.store_u64(GAddr(4), 1),
            Err(SimError::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_bounds_fails() {
        let m = GlobalMemory::new(16);
        assert!(matches!(
            m.load_u64(GAddr(16)),
            Err(SimError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 4];
        assert!(m.read_bytes(GAddr(14), &mut buf).is_err());
    }

    #[test]
    fn byte_rw_roundtrip_unaligned() {
        let m = GlobalMemory::new(64);
        let data: Vec<u8> = (0..23).collect();
        m.write_bytes(GAddr(3), &data).unwrap();
        let mut out = vec![0u8; 23];
        m.read_bytes(GAddr(3), &mut out).unwrap();
        assert_eq!(out, data);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 3];
        m.read_bytes(GAddr(0), &mut edge).unwrap();
        assert_eq!(edge, [0, 0, 0]);
    }

    #[test]
    fn cas_and_fetch_add() {
        let m = GlobalMemory::new(64);
        let a = m.alloc(8, 8).unwrap();
        m.store_u64(a, 5).unwrap();
        assert_eq!(m.compare_exchange_u64(a, 5, 9).unwrap(), 5);
        assert_eq!(m.load_u64(a).unwrap(), 9);
        assert_eq!(
            m.compare_exchange_u64(a, 5, 11).unwrap(),
            9,
            "failed CAS returns actual"
        );
        assert_eq!(m.load_u64(a).unwrap(), 9);
        assert_eq!(m.fetch_add_u64(a, 3).unwrap(), 9);
        assert_eq!(m.load_u64(a).unwrap(), 12);
    }

    #[test]
    fn poison_blocks_access_until_scrubbed() {
        let m = GlobalMemory::new(128);
        let a = m.alloc(32, 8).unwrap();
        m.store_u64(a, 7).unwrap();
        m.poison(a, 16);
        assert!(m.is_poisoned(a, 1));
        assert!(matches!(
            m.load_u64(a),
            Err(SimError::PoisonedMemory { .. })
        ));
        assert!(matches!(
            m.store_u64(a, 1),
            Err(SimError::PoisonedMemory { .. })
        ));
        let mut buf = [0u8; 8];
        assert!(m.read_bytes(a, &mut buf).is_err());
        // The word after the poisoned range still works.
        assert_eq!(m.load_u64(a.offset(16)).unwrap(), 0);
        m.scrub(a, 16);
        assert!(!m.is_poisoned(a, 16));
        assert_eq!(m.load_u64(a).unwrap(), 0, "scrub zeroes repaired words");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn clean_case_never_takes_poison_lock() {
        let m = GlobalMemory::new(256);
        let a = m.alloc(64, 8).unwrap();
        m.store_u64(a, 1).unwrap();
        m.load_u64(a).unwrap();
        m.fetch_add_u64(a, 1).unwrap();
        m.compare_exchange_u64(a, 2, 3).unwrap();
        let mut buf = [0u8; 64];
        m.read_bytes(a, &mut buf).unwrap();
        m.write_bytes(a, &buf).unwrap();
        assert!(!m.is_poisoned(a, 64));
        assert_eq!(
            m.poison_lock_acquisitions(),
            0,
            "no poison ever injected: every access must stay lock-free"
        );

        // Injecting poison arms the slow path...
        m.poison(a, 8);
        assert!(m.load_u64(a).is_err());
        let armed = m.poison_lock_acquisitions();
        assert!(armed > 0, "poisoned accesses take the set lock");

        // ...and scrubbing the last word restores the lock-free fast
        // path (the count is exact, not a sticky flag).
        m.scrub(a, 8);
        let after_scrub = m.poison_lock_acquisitions();
        m.load_u64(a).unwrap();
        m.read_bytes(a, &mut buf).unwrap();
        assert_eq!(
            m.poison_lock_acquisitions(),
            after_scrub,
            "fully scrubbed pool is lock-free again"
        );
    }

    #[test]
    fn overlapping_poison_and_scrub_keep_exact_count() {
        let m = GlobalMemory::new(256);
        let a = m.alloc(64, 8).unwrap();
        // Poison the same words twice: the count must not double.
        m.poison(a, 16);
        m.poison(a, 16);
        m.scrub(a, 16);
        assert!(!m.is_poisoned(a, 64));
        assert_eq!(m.load_u64(a).unwrap(), 0, "scrubbed and readable");
        // A disjoint poison still blocks after the overlapping scrub.
        m.poison(a.offset(32), 8);
        assert!(m.load_u64(a.offset(32)).is_err());
        assert_eq!(m.load_u64(a).unwrap(), 0);
    }

    #[test]
    fn local_memory_roundtrip() {
        let lm = LocalMemory::new(64);
        let a = lm.alloc(16).unwrap();
        lm.write(a, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        lm.read(a, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        assert!(lm.alloc(128).is_err());
    }

    #[test]
    fn global_memory_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<GlobalMemory>();
        assert_sync::<LocalMemory>();
    }

    #[test]
    fn gaddr_helpers() {
        assert_eq!(GAddr(5).align_up(8), GAddr(8));
        assert_eq!(GAddr(8).align_up(8), GAddr(8));
        assert_eq!(GAddr(10).offset(6), GAddr(16));
        assert_eq!(GAddr(64).to_string(), "g:0x40");
    }

    #[test]
    fn checked_offset_surfaces_overflow() {
        assert_eq!(GAddr(10).checked_offset(6).unwrap(), GAddr(16));
        assert_eq!(GAddr(u64::MAX).checked_offset(0).unwrap(), GAddr(u64::MAX));
        assert!(matches!(
            GAddr(u64::MAX).checked_offset(1),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            GAddr(u64::MAX - 3).checked_offset(8),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn unchecked_offset_panics_on_overflow() {
        let _ = GAddr(u64::MAX).offset(1);
    }

    #[test]
    fn range_checks_near_u64_max_do_not_wrap() {
        let m = GlobalMemory::new(64);
        // These ends wrap past u64::MAX; a wrapping add would make them
        // look in-bounds.
        assert!(matches!(
            m.load_u64(GAddr(u64::MAX - 7)),
            Err(SimError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 16];
        assert!(matches!(
            m.read_bytes(GAddr(u64::MAX - 8), &mut buf),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.write_bytes(GAddr(u64::MAX - 8), &buf),
            Err(SimError::OutOfBounds { .. })
        ));
    }
}
