//! Global (rack-shared) and node-local memory.
//!
//! Global memory is the load/store-accessible pool the memory interconnect
//! exposes to every node. It is word-addressable through atomics so that it
//! can be safely shared between host threads, models *poisoned* words for
//! fault injection, and provides a simple bump allocator on which higher
//! layers (the FlacDK object allocator) build real allocation policies.
//!
//! Byte-granular accesses are implemented as read-modify-write of the
//! containing 64-bit words. Two host threads concurrently writing
//! *different bytes of the same word* outside of the cache layer can race;
//! all layers above either use word-aligned fields or partition buffers at
//! word granularity, mirroring how real fabrics serialize at the home node.

use crate::error::SimError;
use crate::sync::RwLock;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Byte address in the rack's global memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GAddr(pub u64);

impl GAddr {
    /// Address `bytes` past this one.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows the 64-bit address space — in *both*
    /// build profiles. The previous unchecked add wrapped silently in
    /// release builds, turning a bad pointer into a valid-looking one.
    /// Fallible callers should use [`GAddr::checked_offset`].
    #[must_use]
    pub fn offset(self, bytes: u64) -> GAddr {
        GAddr(
            self.0
                .checked_add(bytes)
                .expect("GAddr::offset overflowed the u64 address space"),
        )
    }

    /// Address `bytes` past this one, or [`SimError::OutOfBounds`] if the
    /// result overflows the 64-bit address space.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfBounds`] on overflow.
    pub fn checked_offset(self, bytes: u64) -> Result<GAddr, SimError> {
        self.0
            .checked_add(bytes)
            .map(GAddr)
            .ok_or(SimError::OutOfBounds {
                addr: self,
                len: usize::try_from(bytes).unwrap_or(usize::MAX),
                capacity: 0,
            })
    }

    /// Round up to the next multiple of `align` (which must be a power of two).
    #[must_use]
    pub fn align_up(self, align: u64) -> GAddr {
        debug_assert!(align.is_power_of_two());
        GAddr((self.0 + align - 1) & !(align - 1))
    }

    /// Whether this address is a multiple of `align`.
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }

    /// Index of the 64-bit word containing this address.
    pub(crate) fn word_index(self) -> usize {
        (self.0 / 8) as usize
    }
}

impl fmt::Display for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g:{:#x}", self.0)
    }
}

/// The rack-wide shared memory pool.
///
/// All state is interiorly mutable and `Sync`: the pool is shared by every
/// node (and by every host thread in multi-threaded tests).
pub struct GlobalMemory {
    words: Vec<AtomicU64>,
    capacity: usize,
    next: AtomicUsize,
    any_poison: AtomicBool,
    poisoned_words: RwLock<HashSet<usize>>,
}

impl fmt::Debug for GlobalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalMemory")
            .field("capacity", &self.capacity)
            .field("allocated", &self.allocated())
            .field("poisoned", &self.poisoned_words.read().len())
            .finish()
    }
}

impl GlobalMemory {
    /// Create a pool of `capacity` bytes (rounded up to a whole word),
    /// zero-initialized.
    pub fn new(capacity: usize) -> Self {
        let words = capacity.div_ceil(8);
        GlobalMemory {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            capacity: words * 8,
            next: AtomicUsize::new(0),
            any_poison: AtomicBool::new(false),
            poisoned_words: RwLock::new(HashSet::new()),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes handed out by [`GlobalMemory::alloc`] so far.
    pub fn allocated(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }

    /// Bump-allocate `len` bytes aligned to `align`.
    ///
    /// This is the *hardware carve-out* primitive; rich allocation policy
    /// (reuse, reclamation) lives in FlacDK's object allocator.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when the pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&self, len: usize, align: usize) -> Result<GAddr, SimError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let base = (cur + align - 1) & !(align - 1);
            let end = base.checked_add(len).ok_or(SimError::OutOfMemory {
                requested: len,
                remaining: self.capacity - cur,
            })?;
            if end > self.capacity {
                return Err(SimError::OutOfMemory {
                    requested: len,
                    remaining: self.capacity - cur,
                });
            }
            match self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(GAddr(base as u64)),
                Err(actual) => cur = actual,
            }
        }
    }

    fn check_range(&self, addr: GAddr, len: usize) -> Result<(), SimError> {
        let oob = SimError::OutOfBounds {
            addr,
            len,
            capacity: self.capacity,
        };
        // Checked in u64 space: `addr.0 as usize + len` wrapped for
        // addresses near the top of the address space.
        let end = addr.0.checked_add(len as u64).ok_or(oob.clone())?;
        if end > self.capacity as u64 {
            return Err(oob);
        }
        Ok(())
    }

    fn check_poison(&self, first_word: usize, last_word: usize) -> Result<(), SimError> {
        if !self.any_poison.load(Ordering::Relaxed) {
            return Ok(());
        }
        let set = self.poisoned_words.read();
        for w in first_word..=last_word {
            if set.contains(&w) {
                return Err(SimError::PoisonedMemory {
                    addr: GAddr((w * 8) as u64),
                });
            }
        }
        Ok(())
    }

    /// Load the aligned 64-bit word at `addr` directly from the pool
    /// (no cache, no latency charge — the [`crate::NodeCtx`] layer charges).
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn load_u64(&self, addr: GAddr) -> Result<u64, SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        Ok(self.words[addr.word_index()].load(Ordering::SeqCst))
    }

    /// Store the aligned 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn store_u64(&self, addr: GAddr, value: u64) -> Result<(), SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        self.words[addr.word_index()].store(value, Ordering::SeqCst);
        Ok(())
    }

    /// Atomic compare-exchange on the word at `addr`. Returns the previous
    /// value; the exchange succeeded iff the returned value equals `current`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn compare_exchange_u64(
        &self,
        addr: GAddr,
        current: u64,
        new: u64,
    ) -> Result<u64, SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        Ok(
            match self.words[addr.word_index()].compare_exchange(
                current,
                new,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(prev) => prev,
                Err(prev) => prev,
            },
        )
    }

    /// Atomic fetch-add on the word at `addr`; returns the previous value.
    ///
    /// # Errors
    ///
    /// Out-of-bounds, misaligned, or poisoned accesses fail.
    pub fn fetch_add_u64(&self, addr: GAddr, delta: u64) -> Result<u64, SimError> {
        if !addr.is_aligned(8) {
            return Err(SimError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        self.check_poison(addr.word_index(), addr.word_index())?;
        Ok(self.words[addr.word_index()].fetch_add(delta, Ordering::SeqCst))
    }

    /// Copy `buf.len()` bytes starting at `addr` into `buf`, bypassing caches.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or poisoned accesses fail.
    pub fn read_bytes(&self, addr: GAddr, buf: &mut [u8]) -> Result<(), SimError> {
        self.check_range(addr, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + buf.len() as u64 - 1).word_index();
        self.check_poison(first, last)?;
        let mut pos = 0usize;
        let mut a = addr.0 as usize;
        while pos < buf.len() {
            let widx = a / 8;
            let in_word = a % 8;
            let take = (8 - in_word).min(buf.len() - pos);
            let word = self.words[widx].load(Ordering::SeqCst).to_le_bytes();
            buf[pos..pos + take].copy_from_slice(&word[in_word..in_word + take]);
            pos += take;
            a += take;
        }
        Ok(())
    }

    /// Copy `buf` into global memory starting at `addr`, bypassing caches.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or poisoned accesses fail.
    pub fn write_bytes(&self, addr: GAddr, buf: &[u8]) -> Result<(), SimError> {
        self.check_range(addr, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + buf.len() as u64 - 1).word_index();
        self.check_poison(first, last)?;
        let mut pos = 0usize;
        let mut a = addr.0 as usize;
        while pos < buf.len() {
            let widx = a / 8;
            let in_word = a % 8;
            let take = (8 - in_word).min(buf.len() - pos);
            if take == 8 {
                let mut w = [0u8; 8];
                w.copy_from_slice(&buf[pos..pos + 8]);
                self.words[widx].store(u64::from_le_bytes(w), Ordering::SeqCst);
            } else {
                // Read-modify-write of the partial word.
                let mut w = self.words[widx].load(Ordering::SeqCst).to_le_bytes();
                w[in_word..in_word + take].copy_from_slice(&buf[pos..pos + take]);
                self.words[widx].store(u64::from_le_bytes(w), Ordering::SeqCst);
            }
            pos += take;
            a += take;
        }
        Ok(())
    }

    /// Poison the words covering `[addr, addr+len)`, simulating an
    /// uncorrectable memory error. Subsequent accesses fail with
    /// [`SimError::PoisonedMemory`].
    pub fn poison(&self, addr: GAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + len as u64 - 1).word_index();
        let mut set = self.poisoned_words.write();
        for w in first..=last {
            set.insert(w);
        }
        self.any_poison.store(true, Ordering::Relaxed);
    }

    /// Repair poisoned words in `[addr, addr+len)` (e.g. after a scrubber
    /// rewrote them from redundancy), zeroing their contents.
    pub fn scrub(&self, addr: GAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + len as u64 - 1).word_index();
        let mut set = self.poisoned_words.write();
        for w in first..=last {
            if set.remove(&w) {
                self.words[w].store(0, Ordering::SeqCst);
            }
        }
        if set.is_empty() {
            self.any_poison.store(false, Ordering::Relaxed);
        }
    }

    /// Whether any word in `[addr, addr+len)` is currently poisoned.
    pub fn is_poisoned(&self, addr: GAddr, len: usize) -> bool {
        if len == 0 || !self.any_poison.load(Ordering::Relaxed) {
            return false;
        }
        let first = addr.word_index();
        let last = GAddr(addr.0 + len as u64 - 1).word_index();
        let set = self.poisoned_words.read();
        (first..=last).any(|w| set.contains(&w))
    }
}

/// Byte address in a node's local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LAddr(pub usize);

/// A node's private local memory arena.
///
/// Local memory is always coherent from the owning node's perspective
/// (it is only accessible from that node), so it is a plain byte arena
/// with a bump allocator. The [`crate::NodeCtx`] charges local DRAM
/// latency when accessing it.
#[derive(Debug)]
pub struct LocalMemory {
    bytes: RwLock<Vec<u8>>,
    capacity: usize,
    next: AtomicUsize,
}

impl LocalMemory {
    /// A zeroed local arena of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        LocalMemory {
            bytes: RwLock::new(vec![0; capacity]),
            capacity,
            next: AtomicUsize::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }

    /// Bump-allocate `len` bytes, 8-byte aligned.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when the arena is exhausted.
    pub fn alloc(&self, len: usize) -> Result<LAddr, SimError> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let base = (cur + 7) & !7;
            let end = base + len;
            if end > self.capacity {
                return Err(SimError::OutOfMemory {
                    requested: len,
                    remaining: self.capacity - cur,
                });
            }
            match self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(LAddr(base)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Read `buf.len()` bytes at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the arena.
    pub fn read(&self, addr: LAddr, buf: &mut [u8]) -> Result<(), SimError> {
        let end = addr.0 + buf.len();
        if end > self.capacity {
            return Err(SimError::OutOfBounds {
                addr: GAddr(addr.0 as u64),
                len: buf.len(),
                capacity: self.capacity,
            });
        }
        buf.copy_from_slice(&self.bytes.read()[addr.0..end]);
        Ok(())
    }

    /// Write `buf` at `addr`.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the arena.
    pub fn write(&self, addr: LAddr, buf: &[u8]) -> Result<(), SimError> {
        let end = addr.0 + buf.len();
        if end > self.capacity {
            return Err(SimError::OutOfBounds {
                addr: GAddr(addr.0 as u64),
                len: buf.len(),
                capacity: self.capacity,
            });
        }
        self.bytes.write()[addr.0..end].copy_from_slice(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_capacity() {
        let m = GlobalMemory::new(128);
        let a = m.alloc(10, 8).unwrap();
        assert!(a.is_aligned(8));
        let b = m.alloc(8, 64).unwrap();
        assert!(b.is_aligned(64));
        assert!(b.0 >= a.0 + 10);
        assert!(m.alloc(1024, 8).is_err());
    }

    #[test]
    fn word_load_store_roundtrip() {
        let m = GlobalMemory::new(64);
        let a = m.alloc(8, 8).unwrap();
        m.store_u64(a, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.load_u64(a).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn misaligned_word_access_fails() {
        let m = GlobalMemory::new(64);
        assert!(matches!(
            m.load_u64(GAddr(3)),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            m.store_u64(GAddr(4), 1),
            Err(SimError::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_bounds_fails() {
        let m = GlobalMemory::new(16);
        assert!(matches!(
            m.load_u64(GAddr(16)),
            Err(SimError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 4];
        assert!(m.read_bytes(GAddr(14), &mut buf).is_err());
    }

    #[test]
    fn byte_rw_roundtrip_unaligned() {
        let m = GlobalMemory::new(64);
        let data: Vec<u8> = (0..23).collect();
        m.write_bytes(GAddr(3), &data).unwrap();
        let mut out = vec![0u8; 23];
        m.read_bytes(GAddr(3), &mut out).unwrap();
        assert_eq!(out, data);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 3];
        m.read_bytes(GAddr(0), &mut edge).unwrap();
        assert_eq!(edge, [0, 0, 0]);
    }

    #[test]
    fn cas_and_fetch_add() {
        let m = GlobalMemory::new(64);
        let a = m.alloc(8, 8).unwrap();
        m.store_u64(a, 5).unwrap();
        assert_eq!(m.compare_exchange_u64(a, 5, 9).unwrap(), 5);
        assert_eq!(m.load_u64(a).unwrap(), 9);
        assert_eq!(
            m.compare_exchange_u64(a, 5, 11).unwrap(),
            9,
            "failed CAS returns actual"
        );
        assert_eq!(m.load_u64(a).unwrap(), 9);
        assert_eq!(m.fetch_add_u64(a, 3).unwrap(), 9);
        assert_eq!(m.load_u64(a).unwrap(), 12);
    }

    #[test]
    fn poison_blocks_access_until_scrubbed() {
        let m = GlobalMemory::new(128);
        let a = m.alloc(32, 8).unwrap();
        m.store_u64(a, 7).unwrap();
        m.poison(a, 16);
        assert!(m.is_poisoned(a, 1));
        assert!(matches!(
            m.load_u64(a),
            Err(SimError::PoisonedMemory { .. })
        ));
        assert!(matches!(
            m.store_u64(a, 1),
            Err(SimError::PoisonedMemory { .. })
        ));
        let mut buf = [0u8; 8];
        assert!(m.read_bytes(a, &mut buf).is_err());
        // The word after the poisoned range still works.
        assert_eq!(m.load_u64(a.offset(16)).unwrap(), 0);
        m.scrub(a, 16);
        assert!(!m.is_poisoned(a, 16));
        assert_eq!(m.load_u64(a).unwrap(), 0, "scrub zeroes repaired words");
    }

    #[test]
    fn local_memory_roundtrip() {
        let lm = LocalMemory::new(64);
        let a = lm.alloc(16).unwrap();
        lm.write(a, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        lm.read(a, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        assert!(lm.alloc(128).is_err());
    }

    #[test]
    fn global_memory_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<GlobalMemory>();
        assert_sync::<LocalMemory>();
    }

    #[test]
    fn gaddr_helpers() {
        assert_eq!(GAddr(5).align_up(8), GAddr(8));
        assert_eq!(GAddr(8).align_up(8), GAddr(8));
        assert_eq!(GAddr(10).offset(6), GAddr(16));
        assert_eq!(GAddr(64).to_string(), "g:0x40");
    }

    #[test]
    fn checked_offset_surfaces_overflow() {
        assert_eq!(GAddr(10).checked_offset(6).unwrap(), GAddr(16));
        assert_eq!(GAddr(u64::MAX).checked_offset(0).unwrap(), GAddr(u64::MAX));
        assert!(matches!(
            GAddr(u64::MAX).checked_offset(1),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            GAddr(u64::MAX - 3).checked_offset(8),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn unchecked_offset_panics_on_overflow() {
        let _ = GAddr(u64::MAX).offset(1);
    }

    #[test]
    fn range_checks_near_u64_max_do_not_wrap() {
        let m = GlobalMemory::new(64);
        // These ends wrap past u64::MAX; a wrapping add would make them
        // look in-bounds.
        assert!(matches!(
            m.load_u64(GAddr(u64::MAX - 7)),
            Err(SimError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 16];
        assert!(matches!(
            m.read_bytes(GAddr(u64::MAX - 8), &mut buf),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.write_bytes(GAddr(u64::MAX - 8), &buf),
            Err(SimError::OutOfBounds { .. })
        ));
    }
}
