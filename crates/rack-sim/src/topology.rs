//! Rack topology: a tree of enclosures (socket → node → rack → pod)
//! from which hop counts, distance classes, and link bandwidth are all
//! *derived* — no materialized O(n²) hop matrix.
//!
//! Leaves of the tree are the simulator's [`NodeId`]s (the unit that
//! runs a [`crate::NodeCtx`] — a socket in the paper's terms). Levels
//! above group leaves into enclosures: sockets into nodes, nodes into
//! racks, racks into a multi-rack pod. The number of interconnect hops
//! between two leaves is twice the height of their lowest common
//! ancestor (up through each switch, then back down), so the historical
//! single-switch rack — every distinct pair 2 hops apart — is exactly a
//! depth-1 tree.

use std::fmt;

/// Identifier of a node (a general-purpose server) in the rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// One enclosure level of the topology tree, leaf-most first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoLevel {
    /// Human label for the enclosure ("node", "rack", "pod").
    pub label: &'static str,
    /// How many children one enclosure at this level spans: leaves for
    /// the first level, groups of the level below otherwise.
    pub fanout: usize,
    /// Bandwidth divisor for links crossing this level's switch relative
    /// to a leaf link (1 = full bandwidth). Transfers between leaves pay
    /// the *narrowest* link on their path.
    pub bw_divisor: u32,
}

/// Where global-memory addresses are homed, for distance-classed
/// memory-cost charging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePolicy {
    /// Flat: every global access is one interconnect crossing away from
    /// its home, regardless of requester — the historical model. All
    /// presets use this, which keeps their charged costs byte-identical.
    Uniform,
    /// Global addresses interleave across all leaves at `granularity`
    /// bytes: the home of address `a` is leaf `(a / granularity) % n`.
    /// Accesses then charge by the requester→home distance class.
    Interleaved {
        /// Interleaving stripe in bytes (a page or larger).
        granularity: u64,
    },
}

/// Static description of the rack's compute topology.
///
/// Mirrors the paper's testbed shape: the physical platform is two Kunpeng
/// 920 nodes of 4×80 cores each (640 cores total), joined by an HCCS
/// memory interconnect through a switch — a depth-1 tree. Deeper trees
/// ([`RackTopology::pod`]) add rack and pod switch levels above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackTopology {
    nodes: usize,
    cores_per_node: usize,
    /// Enclosure levels, leaf-most first. The top level always spans all
    /// leaves (its cumulative span is >= `nodes`).
    levels: Vec<TopoLevel>,
    home: HomePolicy,
}

impl RackTopology {
    /// A rack of `nodes` nodes joined by one interconnect switch — a
    /// depth-1 tree.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `cores_per_node == 0`.
    pub fn switched(nodes: usize, cores_per_node: usize) -> Self {
        Self::tree(
            nodes,
            cores_per_node,
            vec![TopoLevel {
                label: "rack",
                fanout: nodes,
                bw_divisor: 1,
            }],
        )
    }

    /// A rack built from explicit enclosure levels (leaf-most first).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `cores_per_node == 0`, `levels` is empty
    /// or contains a zero fanout, or the levels do not span all nodes.
    pub fn tree(nodes: usize, cores_per_node: usize, levels: Vec<TopoLevel>) -> Self {
        assert!(nodes > 0, "rack must contain at least one node");
        assert!(cores_per_node > 0, "nodes must have at least one core");
        assert!(!levels.is_empty(), "topology tree needs at least one level");
        let mut span = 1usize;
        for level in &levels {
            assert!(level.fanout > 0, "level {:?} has zero fanout", level.label);
            assert!(
                level.bw_divisor > 0,
                "level {:?} has zero bandwidth",
                level.label
            );
            span = span.saturating_mul(level.fanout);
        }
        assert!(
            span >= nodes,
            "topology levels span {span} leaves but the rack has {nodes}"
        );
        RackTopology {
            nodes,
            cores_per_node,
            levels,
            home: HomePolicy::Uniform,
        }
    }

    /// A three-level socket→node→rack→pod tree: `sockets_per_node`
    /// leaves per node enclosure, `nodes_per_rack` nodes per rack,
    /// `racks` racks under the pod switch. Rack links run at half leaf
    /// bandwidth, the pod spine at a quarter.
    pub fn pod(
        sockets_per_node: usize,
        nodes_per_rack: usize,
        racks: usize,
        cores_per_node: usize,
    ) -> Self {
        Self::tree(
            sockets_per_node * nodes_per_rack * racks,
            cores_per_node,
            vec![
                TopoLevel {
                    label: "node",
                    fanout: sockets_per_node,
                    bw_divisor: 1,
                },
                TopoLevel {
                    label: "rack",
                    fanout: nodes_per_rack,
                    bw_divisor: 2,
                },
                TopoLevel {
                    label: "pod",
                    fanout: racks,
                    bw_divisor: 4,
                },
            ],
        )
    }

    /// The paper's physical testbed: 2 nodes × 320 cores = 640 cores.
    pub fn kunpeng_two_node() -> Self {
        Self::switched(2, 320)
    }

    /// This topology with global addresses homed round-robin across the
    /// leaves at `granularity` bytes (builder-style). Memory costs then
    /// charge by requester→home distance class instead of flat.
    #[must_use]
    pub fn with_home_interleaved(mut self, granularity: u64) -> Self {
        assert!(granularity > 0, "interleave granularity must be positive");
        self.home = HomePolicy::Interleaved { granularity };
        self
    }

    /// The home policy in effect.
    pub fn home_policy(&self) -> HomePolicy {
        self.home
    }

    /// Number of nodes in the rack.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Cores on each node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total cores across the rack.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The enclosure levels, leaf-most first.
    pub fn levels(&self) -> &[TopoLevel] {
        &self.levels
    }

    /// Tree depth (number of enclosure levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Height of the lowest common ancestor of two leaves: 0 for a leaf
    /// to itself, 1 when one switch separates them, up to `depth()`.
    /// This is the distance *class* of the pair (intra-node < intra-rack
    /// < cross-rack on a [`RackTopology::pod`] tree).
    pub fn lca_level(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(a.0 < self.nodes && b.0 < self.nodes, "node id out of range");
        if a == b {
            return 0;
        }
        let mut span = 1usize;
        for (height, level) in self.levels.iter().enumerate() {
            span = span.saturating_mul(level.fanout);
            if a.0 / span == b.0 / span {
                return height as u32 + 1;
            }
        }
        self.levels.len() as u32
    }

    /// Interconnect hops between two nodes (0 for a node to itself),
    /// derived from the tree: up through each switch on the path to the
    /// lowest common ancestor and back down — `2 * lca_level`.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        2 * self.lca_level(from, to)
    }

    /// Bandwidth divisor of the narrowest link on the path between two
    /// leaves (1 when they are the same leaf or only full-bandwidth
    /// links are crossed).
    pub fn link_bw_divisor(&self, from: NodeId, to: NodeId) -> u32 {
        let lca = self.lca_level(from, to) as usize;
        self.levels[..lca]
            .iter()
            .map(|l| l.bw_divisor)
            .max()
            .unwrap_or(1)
    }

    /// The leaf homing global address `addr`, or `None` under the
    /// uniform policy (no home concept; flat charging).
    pub fn home_of(&self, addr: u64) -> Option<NodeId> {
        match self.home {
            HomePolicy::Uniform => None,
            HomePolicy::Interleaved { granularity } => {
                Some(NodeId(((addr / granularity) as usize) % self.nodes))
            }
        }
    }

    /// The memory path class from `requester` to the home of `addr`:
    /// `(lca_level, bw_divisor)`. `None` under the uniform policy — the
    /// caller charges the flat (depth-1-equivalent) cost, byte-identical
    /// to the historical model.
    pub fn mem_path(&self, requester: NodeId, addr: u64) -> Option<(u32, u32)> {
        let home = self.home_of(addr)?;
        Some((
            self.lca_level(requester, home),
            self.link_bw_divisor(requester, home),
        ))
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes).map(NodeId)
    }
}

impl Default for RackTopology {
    fn default() -> Self {
        Self::kunpeng_two_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kunpeng_shape_matches_paper() {
        let t = RackTopology::kunpeng_two_node();
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.total_cores(), 640);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn switched_hops_symmetric() {
        let t = RackTopology::switched(4, 8);
        for i in t.node_ids() {
            for j in t.node_ids() {
                assert_eq!(t.hops(i, j), t.hops(j, i));
                if i == j {
                    assert_eq!(t.hops(i, j), 0);
                } else {
                    assert_eq!(t.hops(i, j), 2);
                }
            }
        }
    }

    #[test]
    fn pod_tree_distances_are_hierarchical() {
        // 2 sockets/node, 2 nodes/rack, 2 racks = 8 leaves.
        let t = RackTopology::pod(2, 2, 2, 4);
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.depth(), 3);
        // Same node enclosure: one switch.
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 2);
        // Same rack, different node: two switches up.
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 4);
        // Cross-rack: through the pod spine.
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 6);
        assert_eq!(t.hops(NodeId(3), NodeId(3)), 0);
        // Narrowest link on the path governs bandwidth.
        assert_eq!(t.link_bw_divisor(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.link_bw_divisor(NodeId(0), NodeId(2)), 2);
        assert_eq!(t.link_bw_divisor(NodeId(0), NodeId(4)), 4);
        // Symmetry holds across every pair.
        for i in t.node_ids() {
            for j in t.node_ids() {
                assert_eq!(t.hops(i, j), t.hops(j, i));
                assert_eq!(t.link_bw_divisor(i, j), t.link_bw_divisor(j, i));
            }
        }
    }

    #[test]
    fn no_dense_matrix_at_scale() {
        // A 256-leaf pod is cheap to build and query: hop counts come
        // from an LCA walk, not a 64k-entry matrix.
        let t = RackTopology::pod(4, 8, 8, 16);
        assert_eq!(t.nodes(), 256);
        assert_eq!(t.hops(NodeId(0), NodeId(255)), 6);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 2);
        assert_eq!(t.hops(NodeId(0), NodeId(31)), 4);
    }

    #[test]
    fn uniform_home_has_no_distance() {
        let t = RackTopology::switched(4, 8);
        assert_eq!(t.home_policy(), HomePolicy::Uniform);
        assert_eq!(t.home_of(0x1234), None);
        assert_eq!(t.mem_path(NodeId(0), 0x1234), None);
    }

    #[test]
    fn interleaved_home_classes() {
        let t = RackTopology::pod(2, 2, 2, 4).with_home_interleaved(4096);
        // Addresses stripe round-robin across the 8 leaves.
        assert_eq!(t.home_of(0), Some(NodeId(0)));
        assert_eq!(t.home_of(4096), Some(NodeId(1)));
        assert_eq!(t.home_of(8 * 4096), Some(NodeId(0)));
        // Requester 0: page 0 is home (distance 0), page 1 is one switch
        // away, page 4 is cross-rack.
        assert_eq!(t.mem_path(NodeId(0), 0), Some((0, 1)));
        assert_eq!(t.mem_path(NodeId(0), 4096), Some((1, 1)));
        assert_eq!(t.mem_path(NodeId(0), 4 * 4096), Some((3, 4)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        RackTopology::switched(0, 1);
    }

    #[test]
    #[should_panic(expected = "span")]
    fn undersized_tree_panics() {
        RackTopology::tree(
            8,
            1,
            vec![TopoLevel {
                label: "rack",
                fanout: 4,
                bw_divisor: 1,
            }],
        );
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId::from(7), NodeId(7));
    }
}
