//! Rack topology: nodes, cores, and interconnect hop distances.

use std::fmt;

/// Identifier of a node (a general-purpose server) in the rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Static description of the rack's compute topology.
///
/// Mirrors the paper's testbed shape: the physical platform is two Kunpeng
/// 920 nodes of 4×80 cores each (640 cores total), joined by an HCCS
/// memory interconnect through a switch. The `hops` matrix captures the
/// number of interconnect hops between any two nodes — a single switch
/// gives every distinct pair 2 hops (node→switch→node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackTopology {
    nodes: usize,
    cores_per_node: usize,
    /// `hops[i][j]` = interconnect hops from node i to node j.
    hops: Vec<Vec<u32>>,
}

impl RackTopology {
    /// A rack of `nodes` nodes joined by one interconnect switch.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `cores_per_node == 0`.
    pub fn switched(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "rack must contain at least one node");
        assert!(cores_per_node > 0, "nodes must have at least one core");
        let hops = (0..nodes)
            .map(|i| (0..nodes).map(|j| if i == j { 0 } else { 2 }).collect())
            .collect();
        RackTopology {
            nodes,
            cores_per_node,
            hops,
        }
    }

    /// The paper's physical testbed: 2 nodes × 320 cores = 640 cores.
    pub fn kunpeng_two_node() -> Self {
        Self::switched(2, 320)
    }

    /// Number of nodes in the rack.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Cores on each node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total cores across the rack.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Interconnect hops between two nodes (0 for a node to itself).
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        self.hops[from.0][to.0]
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes).map(NodeId)
    }
}

impl Default for RackTopology {
    fn default() -> Self {
        Self::kunpeng_two_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kunpeng_shape_matches_paper() {
        let t = RackTopology::kunpeng_two_node();
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.total_cores(), 640);
    }

    #[test]
    fn switched_hops_symmetric() {
        let t = RackTopology::switched(4, 8);
        for i in t.node_ids() {
            for j in t.node_ids() {
                assert_eq!(t.hops(i, j), t.hops(j, i));
                if i == j {
                    assert_eq!(t.hops(i, j), 0);
                } else {
                    assert_eq!(t.hops(i, j), 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        RackTopology::switched(0, 1);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId::from(7), NodeId(7));
    }
}
