//! Latency cost model for the simulated rack.
//!
//! Every simulator operation charges one of these cost classes to the
//! acting node's [`crate::SimClock`]. Absolute values are calibrated to
//! published figures for DDR DRAM, CXL 2.0 switched fabrics, and HCCS, but
//! the experiments in this repository depend only on their *ratios*:
//! local ≪ interconnect load/store ≪ interconnect atomic.

/// Simulated nanosecond costs for each class of hardware operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Load from node-local DRAM.
    pub local_read_ns: u64,
    /// Store to node-local DRAM.
    pub local_write_ns: u64,
    /// Load/store served by the node's cache over global memory. Also
    /// charged to accesses that coalesce onto another thread's in-flight
    /// fill of the same line: the fill's fabric latency is paid once, by
    /// the thread that issued it, and waiters complete as hits.
    pub cache_hit_ns: u64,
    /// Load from global memory across the interconnect (cache miss fill).
    pub global_read_ns: u64,
    /// Store to global memory across the interconnect (write-back).
    pub global_write_ns: u64,
    /// Atomic RMW on global memory (bypasses caches; includes fabric
    /// round-trip and serialization at the home device).
    pub global_atomic_ns: u64,
    /// Writing one dirty cache line back to global memory.
    pub writeback_line_ns: u64,
    /// Dropping one cache line (invalidation is node-local bookkeeping).
    pub invalidate_line_ns: u64,
    /// Each additional line dropped by the same invalidate span after the
    /// first (the first pays `invalidate_line_ns` up front; the tail of
    /// the burst is pipelined bookkeeping). Named so experiments can
    /// sweep it; historically hard-coded to 2 ns.
    pub invalidate_extra_line_ns: u64,
    /// Fixed cost of one interconnect message (doorbell/descriptor), per hop.
    pub hop_ns: u64,
    /// Transfer cost per byte moved across the interconnect, in picoseconds
    /// (1000 ps/B == 1 GB/s; 50 ps/B == 20 GB/s).
    pub transfer_ps_per_byte: u64,
}

impl LatencyModel {
    /// HCCS-like model used for the paper's physical testbed experiments.
    ///
    /// HCCS is a low-latency coherent-capable fabric; cross-node loads land
    /// in the few-hundred-nanosecond range, atomics somewhat higher.
    pub fn hccs() -> Self {
        LatencyModel {
            local_read_ns: 90,
            local_write_ns: 85,
            cache_hit_ns: 18,
            global_read_ns: 480,
            global_write_ns: 420,
            global_atomic_ns: 700,
            writeback_line_ns: 240,
            invalidate_line_ns: 30,
            invalidate_extra_line_ns: 2,
            hop_ns: 350,
            transfer_ps_per_byte: 50, // ~20 GB/s per link
        }
    }

    /// CXL-2.0-switch-like model (one switch adds ~100-200 ns per hop).
    pub fn cxl_switched() -> Self {
        LatencyModel {
            local_read_ns: 90,
            local_write_ns: 85,
            cache_hit_ns: 18,
            global_read_ns: 750,
            global_write_ns: 650,
            global_atomic_ns: 1100,
            writeback_line_ns: 380,
            invalidate_line_ns: 30,
            invalidate_extra_line_ns: 2,
            hop_ns: 500,
            transfer_ps_per_byte: 80, // ~12.5 GB/s
        }
    }

    /// A hypothetical fully-coherent uniform machine: every access costs
    /// the same as local DRAM. Used as an upper-bound baseline in
    /// ablations ("what if the rack were a real SMP?").
    pub fn uniform_coherent() -> Self {
        LatencyModel {
            local_read_ns: 90,
            local_write_ns: 85,
            cache_hit_ns: 18,
            global_read_ns: 90,
            global_write_ns: 85,
            global_atomic_ns: 120,
            writeback_line_ns: 0,
            invalidate_line_ns: 0,
            // Kept at the historical 2 ns so charge totals under this
            // model are unchanged by the field's introduction.
            invalidate_extra_line_ns: 2,
            hop_ns: 90,
            transfer_ps_per_byte: 25,
        }
    }

    /// Cost in ns of transferring `bytes` across the interconnect,
    /// excluding per-hop fixed costs.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.transfer_ps_per_byte) / 1000
    }

    /// Fixed + per-byte cost of moving `bytes` over `hops` hops.
    pub fn message_ns(&self, hops: u32, bytes: usize) -> u64 {
        self.message_ns_over(hops, bytes, 1)
    }

    /// [`LatencyModel::message_ns`] over a path whose narrowest link runs
    /// at `1/bw_divisor` of leaf bandwidth (divisor 1 is byte-identical
    /// to the flat model).
    pub fn message_ns_over(&self, hops: u32, bytes: usize, bw_divisor: u32) -> u64 {
        u64::from(hops) * self.hop_ns + self.transfer_ns(bytes) * u64::from(bw_divisor.max(1))
    }

    /// This model specialized to a memory path whose home is `levels`
    /// switch levels away ([`crate::RackTopology::mem_path`]) across a
    /// narrowest link of `1/bw_divisor` leaf bandwidth.
    ///
    /// The base `global_*` figures describe the historical flat model —
    /// one interconnect crossing (`levels == 1`), for which this is an
    /// exact identity. Each additional level adds one switch round-trip
    /// (`2 * hop_ns`) to every fabric-bound cost; a home on the
    /// requester's own leaf (`levels == 0`) saves that round-trip,
    /// floored at the local-DRAM cost. Per-byte transfer pays the
    /// narrowest link on the path.
    #[must_use]
    pub fn for_path(&self, levels: u32, bw_divisor: u32) -> LatencyModel {
        let round_trip = 2 * self.hop_ns;
        let adjust = |base: u64, floor: u64| match levels {
            0 => base.saturating_sub(round_trip).max(floor.min(base)),
            1 => base,
            k => base + u64::from(k - 1) * round_trip,
        };
        LatencyModel {
            global_read_ns: adjust(self.global_read_ns, self.local_read_ns),
            global_write_ns: adjust(self.global_write_ns, self.local_write_ns),
            global_atomic_ns: adjust(self.global_atomic_ns, self.local_write_ns),
            writeback_line_ns: adjust(self.writeback_line_ns, self.local_write_ns),
            transfer_ps_per_byte: if levels >= 1 {
                self.transfer_ps_per_byte * u64::from(bw_divisor.max(1))
            } else {
                self.transfer_ps_per_byte
            },
            ..self.clone()
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::hccs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hccs_ordering_holds() {
        let m = LatencyModel::hccs();
        assert!(m.cache_hit_ns < m.local_read_ns);
        assert!(m.local_read_ns < m.global_read_ns);
        assert!(m.global_read_ns < m.global_atomic_ns);
    }

    #[test]
    fn cxl_slower_than_hccs() {
        let h = LatencyModel::hccs();
        let c = LatencyModel::cxl_switched();
        assert!(c.global_read_ns > h.global_read_ns);
        assert!(c.global_atomic_ns > h.global_atomic_ns);
    }

    #[test]
    fn transfer_cost_scales_linearly() {
        let m = LatencyModel::hccs();
        assert_eq!(m.transfer_ns(0), 0);
        assert_eq!(m.transfer_ns(1000), m.transfer_ps_per_byte);
        assert_eq!(m.transfer_ns(2000), 2 * m.transfer_ps_per_byte);
    }

    #[test]
    fn message_cost_includes_hops() {
        let m = LatencyModel::hccs();
        assert_eq!(m.message_ns(2, 0), 2 * m.hop_ns);
        assert!(m.message_ns(2, 4096) > m.message_ns(2, 0));
    }

    #[test]
    fn default_is_hccs() {
        assert_eq!(LatencyModel::default(), LatencyModel::hccs());
    }

    #[test]
    fn one_level_path_is_exact_identity() {
        // The depth-1 guarantee every committed bench gate rests on:
        // specializing to one switch level at full bandwidth reproduces
        // the flat model byte-for-byte.
        for m in [
            LatencyModel::hccs(),
            LatencyModel::cxl_switched(),
            LatencyModel::uniform_coherent(),
        ] {
            assert_eq!(m.for_path(1, 1), m);
        }
    }

    #[test]
    fn path_costs_order_by_distance() {
        let m = LatencyModel::hccs();
        let near = m.for_path(0, 1);
        let mid = m.for_path(2, 2);
        let far = m.for_path(3, 4);
        assert!(near.global_read_ns < m.global_read_ns);
        assert!(near.global_read_ns >= m.local_read_ns);
        assert_eq!(mid.global_read_ns, m.global_read_ns + 2 * m.hop_ns);
        assert_eq!(far.global_read_ns, m.global_read_ns + 4 * m.hop_ns);
        assert_eq!(mid.transfer_ps_per_byte, 2 * m.transfer_ps_per_byte);
        // Non-fabric costs are untouched by distance.
        assert_eq!(far.cache_hit_ns, m.cache_hit_ns);
        assert_eq!(far.local_read_ns, m.local_read_ns);
    }

    #[test]
    fn scaled_message_matches_narrow_link() {
        let m = LatencyModel::hccs();
        assert_eq!(m.message_ns_over(2, 1000, 1), m.message_ns(2, 1000));
        assert_eq!(
            m.message_ns_over(6, 1000, 4),
            6 * m.hop_ns + 4 * m.transfer_ns(1000)
        );
    }
}
