//! Error type shared by all simulator operations.

use crate::memory::GAddr;
use crate::topology::NodeId;
use std::fmt;

/// Errors produced by the rack simulator.
///
/// Every fallible simulator operation returns `Result<_, SimError>`. The
/// variants distinguish programming errors (out-of-bounds, misalignment)
/// from *injected* hardware conditions (poisoned memory, dead node, severed
/// link) that fault-tolerant layers are expected to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Access outside the allocated global memory region.
    OutOfBounds {
        addr: GAddr,
        len: usize,
        capacity: usize,
    },
    /// Address not aligned as required by the operation.
    Misaligned { addr: GAddr, required: usize },
    /// The global memory allocator is exhausted.
    OutOfMemory { requested: usize, remaining: usize },
    /// The accessed word was poisoned by fault injection (akin to an MCE).
    PoisonedMemory { addr: GAddr },
    /// The target node has been crashed by fault injection.
    NodeDown { node: NodeId },
    /// The interconnect link between two nodes is severed.
    LinkDown { from: NodeId, to: NodeId },
    /// No message available (non-blocking receive on empty queue).
    WouldBlock,
    /// An operation gave up after waiting `waited_ns` of simulated time
    /// (e.g. an RPC whose reply never arrived across a severed link).
    Timeout { waited_ns: u64 },
    /// A named invariant of a higher layer was violated.
    Protocol(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds {
                addr,
                len,
                capacity,
            } => {
                write!(
                    f,
                    "global access at {addr:?}+{len} exceeds capacity {capacity}"
                )
            }
            SimError::Misaligned { addr, required } => {
                write!(f, "address {addr:?} is not {required}-byte aligned")
            }
            SimError::OutOfMemory {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "global allocator exhausted: requested {requested}, remaining {remaining}"
                )
            }
            SimError::PoisonedMemory { addr } => {
                write!(f, "poisoned global memory word at {addr:?}")
            }
            SimError::NodeDown { node } => write!(f, "node {node:?} is down"),
            SimError::LinkDown { from, to } => {
                write!(f, "interconnect link {from:?} -> {to:?} is down")
            }
            SimError::WouldBlock => write!(f, "operation would block"),
            SimError::Timeout { waited_ns } => {
                write!(f, "operation timed out after {waited_ns} simulated ns")
            }
            SimError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            SimError::OutOfBounds {
                addr: GAddr(8),
                len: 16,
                capacity: 4,
            },
            SimError::Misaligned {
                addr: GAddr(3),
                required: 8,
            },
            SimError::OutOfMemory {
                requested: 100,
                remaining: 10,
            },
            SimError::PoisonedMemory { addr: GAddr(0) },
            SimError::NodeDown { node: NodeId(1) },
            SimError::LinkDown {
                from: NodeId(0),
                to: NodeId(1),
            },
            SimError::WouldBlock,
            SimError::Timeout { waited_ns: 5_000 },
            SimError::Protocol("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }
}
