//! # rack-sim — a simulated memory-interconnected rack
//!
//! This crate is the hardware substrate for the FlacOS reproduction. It
//! models the rack-scale architecture described in the paper's §2.1: a set
//! of general-purpose nodes, each with private local memory, joined by a
//! memory interconnect (HCCS/CXL-like) that exposes a *global* memory pool
//! to every node with load/store semantics, **basic atomics, and no
//! hardware cache coherence**.
//!
//! The three properties the paper's design hinges on are all enforced here:
//!
//! 1. **Latency asymmetry** — every access charges simulated nanoseconds to
//!    the acting node's [`SimClock`] according to a [`LatencyModel`]
//!    (local DRAM ≪ interconnect load/store ≪ interconnect atomic).
//! 2. **Non-coherence** — each node owns a software [`cache::NodeCache`]
//!    over global memory. Reads may return stale data until the node
//!    explicitly invalidates; writes are invisible to other nodes until
//!    explicitly written back. Atomics bypass the cache entirely.
//! 3. **Fault surface** — a seeded [`fault::FaultInjector`] can poison
//!    global memory words, crash nodes, and sever interconnect links, so
//!    fault-tolerance layers above have something real to tolerate.
//!
//! The entry point is [`Rack`]; per-node code acts through a [`NodeCtx`].
//!
//! ```
//! use rack_sim::{Rack, RackConfig};
//!
//! # fn main() -> Result<(), rack_sim::SimError> {
//! let rack = Rack::new(RackConfig::two_node_hccs());
//! let n0 = rack.node(0);
//! let n1 = rack.node(1);
//!
//! let addr = rack.global().alloc(64, 8)?;
//! n0.write_u64(addr, 42)?;        // cached on node 0, invisible to node 1
//! n0.flush(addr, 8);              // write back + invalidate
//! assert_eq!(n1.read_u64(addr)?, 42);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod clock;
pub mod error;
pub mod fault;
pub mod interconnect;
pub mod latency;
pub mod memory;
pub mod metrics;
pub mod node;
pub mod rack;
pub mod rng;
pub mod stats;
pub mod storm;
pub mod sync;
pub mod topology;

pub use cache::{CacheConfig, LINE_SIZE};
pub use clock::SimClock;
pub use error::SimError;
pub use fault::{FaultEvent, FaultInjector, FaultKind};
pub use interconnect::{Interconnect, Message};
pub use latency::LatencyModel;
pub use memory::{GAddr, GlobalMemory, LAddr, LocalMemory};
pub use metrics::{
    AddrClass, CostClass, Counter, CounterRegistry, HistogramSnapshot, LatencyHistogram, OpKind,
    TraceEvent, TraceRing,
};
pub use node::NodeCtx;
pub use rack::{Rack, RackConfig, RackReport};
pub use rng::{SplitMix64, Zipf};
pub use stats::{NodeStats, StatsSnapshot};
pub use storm::{StormCampaign, StormConfig, StormCounts, StormEvent, StormOp, StormReport};
pub use topology::{HomePolicy, NodeId, RackTopology, TopoLevel};
