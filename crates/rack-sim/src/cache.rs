//! Per-node software cache over global memory — the *non-coherence* model.
//!
//! The memory interconnects the paper targets (§2.1) do not guarantee
//! hardware cache coherence across nodes: a node's cached view of global
//! memory goes stale when another node writes, and a node's own cached
//! writes stay invisible to the rack until explicitly written back. This
//! module models exactly that contract:
//!
//! * [`NodeCache::read`] serves cached lines **without revalidation** —
//!   stale data is returned until the node invalidates.
//! * [`NodeCache::write`] dirties cached lines locally; global memory is
//!   only updated on [`NodeCache::writeback`]/[`NodeCache::flush`] or
//!   capacity eviction.
//! * Atomics (in [`crate::NodeCtx`]) bypass the cache entirely, matching
//!   fabric-level atomics (CXL/libfam-atomic style).
//!
//! Cost accounting: every method returns the simulated nanoseconds the
//! operation cost; the owning [`crate::NodeCtx`] charges its clock.

use crate::error::SimError;
use crate::latency::LatencyModel;
use crate::memory::{GAddr, GlobalMemory};
use std::collections::{HashMap, VecDeque};

/// Cache line size in bytes, matching common ARM/x86 line sizes.
pub const LINE_SIZE: usize = 64;

/// Configuration of a node's cache over global memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of resident lines before LRU eviction.
    pub max_lines: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 8 MiB of cached global memory per node by default.
        CacheConfig {
            max_lines: 8 * 1024 * 1024 / LINE_SIZE,
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    data: [u8; LINE_SIZE],
    dirty: bool,
    lru_tick: u64,
}

/// Counters describing cache behaviour, used by experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses served from the cache.
    pub hits: u64,
    /// Line accesses that had to fetch from global memory.
    pub misses: u64,
    /// Full-line write allocations that skipped the fill (neither a hit
    /// nor a miss; `hits + misses + allocs` equals total line accesses).
    pub allocs: u64,
    /// Dirty lines written back (explicitly or by eviction).
    pub writebacks: u64,
    /// Lines dropped by invalidation.
    pub invalidations: u64,
    /// Lines evicted for capacity.
    pub evictions: u64,
}

/// A single node's software-managed, non-coherent cache of global memory.
#[derive(Debug)]
pub struct NodeCache {
    lines: HashMap<u64, Line>,
    config: CacheConfig,
    tick: u64,
    stats: CacheStats,
    /// Approximate-LRU eviction queue: (line id, tick at enqueue).
    /// Entries are lazily revalidated at pop time, giving amortized
    /// O(1) eviction.
    lru_queue: VecDeque<(u64, u64)>,
}

impl NodeCache {
    /// An empty cache with the given capacity configuration.
    pub fn new(config: CacheConfig) -> Self {
        NodeCache {
            lines: HashMap::new(),
            config,
            tick: 0,
            stats: CacheStats::default(),
            lru_queue: VecDeque::new(),
        }
    }

    /// Snapshot of the cache's behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    fn touch(&mut self, line_id: u64) {
        self.tick += 1;
        if let Some(l) = self.lines.get_mut(&line_id) {
            l.lru_tick = self.tick;
            self.lru_queue.push_back((line_id, self.tick));
        }
        // Bound the lazy queue: compact when it far outgrows the cache.
        if self.lru_queue.len() > self.lines.len() * 4 + 64 {
            let lines = &self.lines;
            self.lru_queue
                .retain(|(id, t)| lines.get(id).map(|l| l.lru_tick == *t).unwrap_or(false));
        }
    }

    /// Evict approximately-LRU lines until under capacity; dirty victims
    /// are written back. Amortized O(1) per eviction via the lazy queue.
    fn enforce_capacity(&mut self, global: &GlobalMemory, lat: &LatencyModel) -> u64 {
        let mut cost = 0;
        while self.lines.len() > self.config.max_lines {
            let victim = loop {
                match self.lru_queue.pop_front() {
                    Some((id, t)) => {
                        // Skip stale queue entries (line touched since, or gone).
                        if self
                            .lines
                            .get(&id)
                            .map(|l| l.lru_tick == t)
                            .unwrap_or(false)
                        {
                            break Some(id);
                        }
                    }
                    None => break None,
                }
            };
            // Fallback (queue exhausted): evict the least-recently-used
            // resident line, ties broken by line id. A `HashMap` iteration
            // order pick here would break same-seed-same-result replay.
            let victim = match victim.or_else(|| {
                self.lines
                    .iter()
                    .min_by_key(|(id, l)| (l.lru_tick, **id))
                    .map(|(id, _)| *id)
            }) {
                Some(v) => v,
                None => break,
            };
            let line = self.lines.remove(&victim).expect("present");
            self.stats.evictions += 1;
            if line.dirty {
                // Best-effort eviction writeback; poisoned lines are dropped,
                // mirroring hardware discarding a line it cannot store.
                if global
                    .write_bytes(GAddr(victim * LINE_SIZE as u64), &line.data)
                    .is_ok()
                {
                    self.stats.writebacks += 1;
                }
                cost += lat.writeback_line_ns;
            }
        }
        cost
    }

    /// Fetch one line. `first_miss` distinguishes the initial fabric
    /// round-trip of a burst (full latency) from pipelined continuation
    /// lines (bandwidth-limited only), modelling sequential-burst reads.
    fn fetch_line(
        &mut self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        line_id: u64,
        first_miss: bool,
    ) -> Result<u64, SimError> {
        let mut data = [0u8; LINE_SIZE];
        global.read_bytes(GAddr(line_id * LINE_SIZE as u64), &mut data)?;
        self.tick += 1;
        self.lines.insert(
            line_id,
            Line {
                data,
                dirty: false,
                lru_tick: self.tick,
            },
        );
        self.lru_queue.push_back((line_id, self.tick));
        self.stats.misses += 1;
        let mut cost = if first_miss {
            lat.global_read_ns
        } else {
            lat.transfer_ns(LINE_SIZE).max(1)
        };
        cost += self.enforce_capacity(global, lat);
        Ok(cost)
    }

    /// Read `buf.len()` bytes at `addr` through the cache.
    ///
    /// Cached lines are served as-is — **possibly stale** relative to
    /// global memory. Returns the simulated cost in nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds/poison errors from line fills.
    pub fn read(
        &mut self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &mut [u8],
    ) -> Result<u64, SimError> {
        if buf.is_empty() {
            return Ok(0);
        }
        Self::check_span(global, addr, buf.len())?;
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            if self.lines.contains_key(&line_id) {
                self.stats.hits += 1;
                cost += lat.cache_hit_ns;
                self.touch(line_id);
            } else {
                cost += self.fetch_line(global, lat, line_id, !missed)?;
                missed = true;
            }
            let line = self.lines.get(&line_id).expect("just ensured");
            buf[pos..pos + take].copy_from_slice(&line.data[in_line..in_line + take]);
            pos += take;
            a += take as u64;
        }
        Ok(cost)
    }

    /// Write `buf` at `addr` into the cache (write-allocate, write-back).
    ///
    /// The update is **not visible** to other nodes until written back.
    /// Returns the simulated cost in nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds/poison errors from line fills.
    pub fn write(
        &mut self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &[u8],
    ) -> Result<u64, SimError> {
        if buf.is_empty() {
            return Ok(0);
        }
        Self::check_span(global, addr, buf.len())?;
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            if self.lines.contains_key(&line_id) {
                self.stats.hits += 1;
                cost += lat.cache_hit_ns;
                self.touch(line_id);
            } else if take == LINE_SIZE {
                // Full-line write: allocate without fetching.
                self.stats.allocs += 1;
                self.tick += 1;
                self.lines.insert(
                    line_id,
                    Line {
                        data: [0u8; LINE_SIZE],
                        dirty: false,
                        lru_tick: self.tick,
                    },
                );
                self.lru_queue.push_back((line_id, self.tick));
                cost += lat.cache_hit_ns;
                cost += self.enforce_capacity(global, lat);
            } else {
                cost += self.fetch_line(global, lat, line_id, !missed)?;
                missed = true;
            }
            let line = self.lines.get_mut(&line_id).expect("just ensured");
            line.data[in_line..in_line + take].copy_from_slice(&buf[pos..pos + take]);
            line.dirty = true;
            pos += take;
            a += take as u64;
        }
        Ok(cost)
    }

    /// Reject spans whose end overflows `u64` or exceeds the pool, before
    /// any per-line work touches the cache. Addresses near `u64::MAX`
    /// previously wrapped silently in release builds.
    fn check_span(global: &GlobalMemory, addr: GAddr, len: usize) -> Result<(), SimError> {
        let oob = SimError::OutOfBounds {
            addr,
            len,
            capacity: global.capacity(),
        };
        let end = addr.0.checked_add(len as u64).ok_or(oob.clone())?;
        if end > global.capacity() as u64 {
            return Err(oob);
        }
        Ok(())
    }

    fn line_range(addr: GAddr, len: usize) -> std::ops::RangeInclusive<u64> {
        let first = addr.0 / LINE_SIZE as u64;
        // Saturate instead of wrapping for spans ending past `u64::MAX`:
        // lines that high can never be resident, so clamping is lossless.
        let last = addr.0.saturating_add(len.max(1) as u64 - 1) / LINE_SIZE as u64;
        first..=last
    }

    /// Write back (but keep cached) any dirty lines covering `[addr, addr+len)`.
    /// Returns the simulated cost.
    pub fn writeback(
        &mut self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        len: usize,
    ) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut cost = 0;
        let mut first = true;
        for line_id in Self::line_range(addr, len) {
            if let Some(line) = self.lines.get_mut(&line_id) {
                if line.dirty {
                    if global
                        .write_bytes(GAddr(line_id * LINE_SIZE as u64), &line.data)
                        .is_ok()
                    {
                        line.dirty = false;
                        self.stats.writebacks += 1;
                    }
                    // Burst model: full latency for the first line of the
                    // range, bandwidth-limited for the rest.
                    cost += if first {
                        lat.writeback_line_ns
                    } else {
                        lat.transfer_ns(LINE_SIZE).max(1)
                    };
                    first = false;
                }
            }
        }
        cost
    }

    /// Drop cached lines covering `[addr, addr+len)`. Dirty data that was
    /// not written back first is **discarded**, as with a hardware
    /// invalidate instruction. Returns the simulated cost.
    pub fn invalidate(&mut self, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut cost = 0;
        let mut first = true;
        for line_id in Self::line_range(addr, len) {
            if self.lines.remove(&line_id).is_some() {
                self.stats.invalidations += 1;
                // Invalidation is local bookkeeping: one instruction's
                // latency up front, then ~2 ns per additional line.
                cost += if first { lat.invalidate_line_ns } else { 2 };
                first = false;
            }
        }
        cost
    }

    /// Write back then invalidate `[addr, addr+len)` (clean+invalidate).
    pub fn flush(
        &mut self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        len: usize,
    ) -> u64 {
        self.writeback(global, lat, addr, len) + self.invalidate(lat, addr, len)
    }

    /// Write back every dirty line and drop the whole cache.
    pub fn flush_all(&mut self, global: &GlobalMemory, lat: &LatencyModel) -> u64 {
        let mut cost = 0;
        let ids: Vec<u64> = self.lines.keys().copied().collect();
        for line_id in ids {
            let line = self.lines.remove(&line_id).expect("present");
            if line.dirty {
                if global
                    .write_bytes(GAddr(line_id * LINE_SIZE as u64), &line.data)
                    .is_ok()
                {
                    self.stats.writebacks += 1;
                }
                cost += lat.writeback_line_ns;
            }
            self.stats.invalidations += 1;
            cost += lat.invalidate_line_ns;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GlobalMemory, NodeCache, NodeCache, LatencyModel) {
        let g = GlobalMemory::new(4096);
        let lat = LatencyModel::hccs();
        (
            g,
            NodeCache::new(CacheConfig::default()),
            NodeCache::new(CacheConfig::default()),
            lat,
        )
    }

    #[test]
    fn cached_write_invisible_until_writeback() {
        let (g, mut c0, mut c1, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        c0.write(&g, &lat, a, &[1; 8]).unwrap();
        // Node 1 reads directly: still zero.
        let mut buf = [9u8; 8];
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "write must be invisible before writeback");
        c0.writeback(&g, &lat, a, 8);
        // Node 1 has the line cached and stale; invalidate then read.
        c1.invalidate(&lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
    }

    #[test]
    fn stale_reads_until_invalidate() {
        let (g, mut c0, mut c1, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        let mut buf = [0u8; 8];
        c1.read(&g, &lat, a, &mut buf).unwrap(); // c1 caches the zero line
        c0.write(&g, &lat, a, &[7; 8]).unwrap();
        c0.flush(&g, &lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "stale cached value served before invalidate");
        c1.invalidate(&lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn own_writes_read_back() {
        let (g, mut c0, _, lat) = setup();
        let a = g.alloc(128, 64).unwrap();
        let data: Vec<u8> = (0..100).collect();
        c0.write(&g, &lat, a, &data).unwrap();
        let mut out = vec![0u8; 100];
        c0.read(&g, &lat, a, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn invalidate_discards_dirty_data() {
        let (g, mut c0, _, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        c0.write(&g, &lat, a, &[5; 8]).unwrap();
        c0.invalidate(&lat, a, 8);
        let mut buf = [0u8; 8];
        c0.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "dirty data dropped by invalidate");
    }

    #[test]
    fn costs_distinguish_hit_and_miss() {
        let (g, mut c0, _, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        let mut buf = [0u8; 8];
        let miss = c0.read(&g, &lat, a, &mut buf).unwrap();
        let hit = c0.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(miss, lat.global_read_ns);
        assert_eq!(hit, lat.cache_hit_ns);
        assert_eq!(c0.stats().misses, 1);
        assert_eq!(c0.stats().hits, 1);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_victims() {
        let g = GlobalMemory::new(LINE_SIZE * 16);
        let lat = LatencyModel::hccs();
        let mut c = NodeCache::new(CacheConfig { max_lines: 2 });
        // Dirty three distinct lines; first should be evicted + written back.
        for i in 0..3u64 {
            c.write(
                &g,
                &lat,
                GAddr(i * LINE_SIZE as u64),
                &[i as u8 + 1; LINE_SIZE],
            )
            .unwrap();
        }
        assert_eq!(c.resident_lines(), 2);
        assert!(c.stats().evictions >= 1);
        let mut buf = [0u8; 1];
        g.read_bytes(GAddr(0), &mut buf).unwrap();
        assert_eq!(buf[0], 1, "evicted dirty line landed in global memory");
    }

    #[test]
    fn flush_all_empties_cache() {
        let (g, mut c0, _, lat) = setup();
        c0.write(&g, &lat, GAddr(0), &[1; 256]).unwrap();
        assert!(c0.resident_lines() > 0);
        c0.flush_all(&g, &lat);
        assert_eq!(c0.resident_lines(), 0);
        let mut buf = [0u8; 256];
        g.read_bytes(GAddr(0), &mut buf).unwrap();
        assert_eq!(buf, [1; 256]);
    }

    #[test]
    fn full_line_write_skips_fetch() {
        let (g, mut c0, _, lat) = setup();
        let before = c0.stats().misses;
        c0.write(&g, &lat, GAddr(0), &[2; LINE_SIZE]).unwrap();
        assert_eq!(
            c0.stats().misses,
            before,
            "aligned full-line write allocates without fill"
        );
        assert_eq!(c0.stats().allocs, 1, "write-allocate counted as alloc");
    }

    #[test]
    fn stats_identity_hits_misses_allocs() {
        // hits + misses + allocs must equal total line accesses across a
        // mixed workload: partial reads, partial writes, full-line writes.
        let (g, mut c, _, lat) = setup();
        let mut accesses = 0u64;
        let count_lines = |addr: u64, len: usize| {
            (addr + len as u64 - 1) / LINE_SIZE as u64 - addr / LINE_SIZE as u64 + 1
        };
        for (addr, len, write) in [
            (0u64, 8usize, false),
            (0, LINE_SIZE, true),
            (64, 200, true),
            (32, 96, false),
            (128, LINE_SIZE, true),
            (0, 256, false),
        ] {
            if write {
                c.write(&g, &lat, GAddr(addr), &vec![1u8; len]).unwrap();
            } else {
                c.read(&g, &lat, GAddr(addr), &mut vec![0u8; len]).unwrap();
            }
            accesses += count_lines(addr, len);
        }
        let s = c.stats();
        assert_eq!(
            s.hits + s.misses + s.allocs,
            accesses,
            "line-access accounting identity"
        );
    }

    #[test]
    fn fallback_eviction_is_deterministic() {
        // Drain the lazy LRU queue, then trigger evictions: the fallback
        // path must pick the same victim (min lru_tick, ties by id) on
        // every run regardless of HashMap iteration order.
        let run = || {
            let g = GlobalMemory::new(LINE_SIZE * 64);
            let lat = LatencyModel::hccs();
            let mut c = NodeCache::new(CacheConfig { max_lines: 8 });
            for i in 0..8u64 {
                c.write(&g, &lat, GAddr(i * LINE_SIZE as u64), &[7; LINE_SIZE])
                    .unwrap();
            }
            c.lru_queue.clear(); // exhaust the queue: only the fallback remains
            c.config.max_lines = 3;
            c.enforce_capacity(&g, &lat);
            let mut resident: Vec<u64> = c.lines.keys().copied().collect();
            resident.sort_unstable();
            resident
        };
        let first = run();
        assert_eq!(
            first,
            vec![5, 6, 7],
            "oldest lru_ticks evicted first under the fallback"
        );
        for _ in 0..8 {
            assert_eq!(run(), first, "fallback eviction must be order-independent");
        }
    }

    #[test]
    fn near_max_addresses_error_instead_of_wrapping() {
        let (g, mut c, _, lat) = setup();
        let mut buf = [0u8; 16];
        let top = GAddr(u64::MAX - 7);
        assert!(matches!(
            c.read(&g, &lat, top, &mut buf),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.write(&g, &lat, top, &buf),
            Err(SimError::OutOfBounds { .. })
        ));
        // Maintenance ops on absurd ranges are no-ops, not panics/wraps.
        assert_eq!(c.writeback(&g, &lat, top, 16), 0);
        assert_eq!(c.invalidate(&lat, top, 16), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }
}
