//! Per-node software cache over global memory — the *non-coherence* model.
//!
//! The memory interconnects the paper targets (§2.1) do not guarantee
//! hardware cache coherence across nodes: a node's cached view of global
//! memory goes stale when another node writes, and a node's own cached
//! writes stay invisible to the rack until explicitly written back. This
//! module models exactly that contract:
//!
//! * [`NodeCache::read`] serves cached lines **without revalidation** —
//!   stale data is returned until the node invalidates.
//! * [`NodeCache::write`] dirties cached lines locally; global memory is
//!   only updated on [`NodeCache::writeback`]/[`NodeCache::flush`] or
//!   capacity eviction.
//! * Atomics (in [`crate::NodeCtx`]) bypass the cache entirely, matching
//!   fabric-level atomics (CXL/libfam-atomic style).
//!
//! Cost accounting: every method returns the simulated nanoseconds the
//! operation cost; the owning [`crate::NodeCtx`] charges its clock.
//!
//! # Internals: banks, intrusive LRU, atomic stats
//!
//! The cache is **sharded**: a line id maps to one of
//! [`CacheConfig::banks`] banks (`line_id & (banks - 1)`), each bank
//! owning its share of the lines behind its own lock. Application threads
//! touching lines in different banks proceed fully in parallel — the
//! pre-shard design funnelled every cached access on a node through one
//! mutex, serializing exactly the workloads the paper claims scale.
//!
//! Within a bank, lines live in a slab (`Vec<Slot>`) threaded onto an
//! **intrusive doubly-linked LRU list** by slab index: a hit is one hash
//! lookup plus four pointer swaps, and the eviction victim is always the
//! list tail — exact LRU in O(1), with ties impossible by construction, so
//! replay determinism needs no tick counters or lazy-queue compaction.
//!
//! Behaviour counters are **per-bank relaxed atomics** shared with
//! [`crate::NodeStats`] through an [`Arc`], so readers snapshot them
//! without taking any bank lock and the hot path never copies a stats
//! struct.

use crate::error::SimError;
use crate::latency::LatencyModel;
use crate::memory::{GAddr, GlobalMemory};
use crate::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache line size in bytes, matching common ARM/x86 line sizes.
pub const LINE_SIZE: usize = 64;

/// Configuration of a node's cache over global memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of resident lines before LRU eviction. Capacity is
    /// enforced per bank (`max(1, max_lines / banks)` lines each), so the
    /// total never exceeds `max_lines` when it divides evenly.
    pub max_lines: usize,
    /// Number of banks the cache is sharded into. Must be a power of two;
    /// line `id` lives in bank `id & (banks - 1)`.
    pub banks: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 8 MiB of cached global memory per node by default.
        CacheConfig {
            max_lines: 8 * 1024 * 1024 / LINE_SIZE,
            banks: 16,
        }
    }
}

/// Counters describing cache behaviour, used by experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses served from the cache.
    pub hits: u64,
    /// Line accesses that had to fetch from global memory.
    pub misses: u64,
    /// Full-line write allocations that skipped the fill (neither a hit
    /// nor a miss; `hits + misses + allocs` equals total line accesses).
    pub allocs: u64,
    /// Dirty lines written back (explicitly or by eviction).
    pub writebacks: u64,
    /// Lines dropped by invalidation.
    pub invalidations: u64,
    /// Lines evicted for capacity.
    pub evictions: u64,
}

/// One bank's behaviour counters: relaxed atomics so the hot path updates
/// them under the bank lock without any cross-bank contention, and
/// snapshot readers sum them without taking locks at all.
#[derive(Debug, Default)]
struct BankStats {
    hits: AtomicU64,
    misses: AtomicU64,
    allocs: AtomicU64,
    writebacks: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

/// The shared handle to a cache's per-bank counters. The owning
/// [`crate::NodeCtx`] hands a clone of the [`Arc`] to its
/// [`crate::NodeStats`] so snapshots read cache behaviour directly,
/// with no publish/copy step on the access path.
#[derive(Debug, Default)]
pub(crate) struct CacheStatsCells {
    banks: Box<[BankStats]>,
}

impl CacheStatsCells {
    fn new(banks: usize) -> Self {
        CacheStatsCells {
            banks: (0..banks).map(|_| BankStats::default()).collect(),
        }
    }

    /// Sum every bank's counters into one [`CacheStats`].
    pub(crate) fn total(&self) -> CacheStats {
        let mut t = CacheStats::default();
        for b in &self.banks {
            t.hits += b.hits.load(Ordering::Relaxed);
            t.misses += b.misses.load(Ordering::Relaxed);
            t.allocs += b.allocs.load(Ordering::Relaxed);
            t.writebacks += b.writebacks.load(Ordering::Relaxed);
            t.invalidations += b.invalidations.load(Ordering::Relaxed);
            t.evictions += b.evictions.load(Ordering::Relaxed);
        }
        t
    }
}

/// Slab-index sentinel terminating the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One resident line: payload plus the intrusive LRU links (slab indices).
#[derive(Debug, Clone)]
struct Slot {
    line_id: u64,
    prev: u32,
    next: u32,
    dirty: bool,
    data: [u8; LINE_SIZE],
}

/// One bank: a slab of slots, a line-id → slot index, and the intrusive
/// LRU list threaded through the slots (head = MRU, tail = LRU victim).
#[derive(Debug)]
struct Bank {
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    cap: usize,
}

impl Bank {
    fn new(cap: usize) -> Self {
        Bank {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    /// Move slot `i` to the MRU position.
    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Install `line_id` as the MRU line. The caller ensures it is absent.
    fn insert_line(&mut self, line_id: u64, data: [u8; LINE_SIZE], dirty: bool) -> u32 {
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    line_id,
                    prev: NIL,
                    next: NIL,
                    dirty,
                    data,
                };
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("bank slab exceeds u32 slots");
                self.slots.push(Slot {
                    line_id,
                    prev: NIL,
                    next: NIL,
                    dirty,
                    data,
                });
                i
            }
        };
        self.push_front(i);
        self.map.insert(line_id, i);
        i
    }

    /// Remove `line_id`, returning its dirty flag and payload.
    fn pop_line(&mut self, line_id: u64) -> Option<(bool, [u8; LINE_SIZE])> {
        let i = self.map.remove(&line_id)?;
        self.unlink(i);
        let s = &self.slots[i as usize];
        let out = (s.dirty, s.data);
        self.free.push(i);
        Some(out)
    }

    /// Evict the exact LRU line (list tail), returning (id, dirty, data).
    fn pop_lru(&mut self) -> Option<(u64, bool, [u8; LINE_SIZE])> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        let line_id = self.slots[i as usize].line_id;
        self.map.remove(&line_id);
        self.unlink(i);
        let s = &self.slots[i as usize];
        let out = (line_id, s.dirty, s.data);
        self.free.push(i);
        Some(out)
    }
}

/// A single node's software-managed, non-coherent cache of global memory.
///
/// All methods take `&self`: locking is internal and per-bank, so threads
/// whose accesses land in different banks never contend.
#[derive(Debug)]
pub struct NodeCache {
    banks: Box<[Mutex<Bank>]>,
    cells: Arc<CacheStatsCells>,
    bank_mask: u64,
}

impl NodeCache {
    /// An empty cache with the given capacity configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.banks` is zero or not a power of two.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.banks.is_power_of_two(),
            "cache banks must be a power of two, got {}",
            config.banks
        );
        let per_bank = (config.max_lines / config.banks).max(1);
        NodeCache {
            banks: (0..config.banks)
                .map(|_| Mutex::new(Bank::new(per_bank)))
                .collect(),
            cells: Arc::new(CacheStatsCells::new(config.banks)),
            bank_mask: config.banks as u64 - 1,
        }
    }

    /// The shared per-bank counter cells (for [`crate::NodeStats`]).
    pub(crate) fn stats_cells(&self) -> Arc<CacheStatsCells> {
        self.cells.clone()
    }

    /// Snapshot of the cache's behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.cells.total()
    }

    /// Number of banks the cache is sharded into.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.banks.iter().map(|b| b.lock().map.len()).sum()
    }

    #[inline]
    fn bank_of(&self, line_id: u64) -> usize {
        (line_id & self.bank_mask) as usize
    }

    /// Evict exact-LRU lines until the bank is back under its capacity;
    /// dirty victims are written back.
    fn enforce_capacity(
        bank: &mut Bank,
        stats: &BankStats,
        global: &GlobalMemory,
        lat: &LatencyModel,
    ) -> u64 {
        let mut cost = 0;
        while bank.map.len() > bank.cap {
            let (victim, dirty, data) = match bank.pop_lru() {
                Some(v) => v,
                None => break,
            };
            stats.evictions.fetch_add(1, Ordering::Relaxed);
            if dirty {
                // Best-effort eviction writeback; poisoned lines are dropped,
                // mirroring hardware discarding a line it cannot store.
                if global
                    .write_bytes(GAddr(victim * LINE_SIZE as u64), &data)
                    .is_ok()
                {
                    stats.writebacks.fetch_add(1, Ordering::Relaxed);
                }
                cost += lat.writeback_line_ns;
            }
        }
        cost
    }

    /// Read `buf.len()` bytes at `addr` through the cache.
    ///
    /// Cached lines are served as-is — **possibly stale** relative to
    /// global memory. Returns the simulated cost in nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds/poison errors from line fills.
    pub fn read(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &mut [u8],
    ) -> Result<u64, SimError> {
        if buf.is_empty() {
            return Ok(0);
        }
        Self::check_span(global, addr, buf.len())?;
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            let b = self.bank_of(line_id);
            let stats = &self.cells.banks[b];
            let mut bank = self.banks[b].lock();
            if let Some(&i) = bank.map.get(&line_id) {
                stats.hits.fetch_add(1, Ordering::Relaxed);
                cost += lat.cache_hit_ns;
                bank.touch(i);
                let line = &bank.slots[i as usize];
                buf[pos..pos + take].copy_from_slice(&line.data[in_line..in_line + take]);
            } else {
                let mut data = [0u8; LINE_SIZE];
                global.read_bytes(GAddr(line_id * LINE_SIZE as u64), &mut data)?;
                stats.misses.fetch_add(1, Ordering::Relaxed);
                // Burst model: full fabric latency for the first missed
                // line of the span, bandwidth-limited continuation after.
                cost += if missed {
                    lat.transfer_ns(LINE_SIZE).max(1)
                } else {
                    lat.global_read_ns
                };
                missed = true;
                buf[pos..pos + take].copy_from_slice(&data[in_line..in_line + take]);
                bank.insert_line(line_id, data, false);
                cost += Self::enforce_capacity(&mut bank, stats, global, lat);
            }
            drop(bank);
            pos += take;
            a += take as u64;
        }
        Ok(cost)
    }

    /// Write `buf` at `addr` into the cache (write-allocate, write-back).
    ///
    /// The update is **not visible** to other nodes until written back.
    /// Returns the simulated cost in nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds/poison errors from line fills.
    pub fn write(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &[u8],
    ) -> Result<u64, SimError> {
        if buf.is_empty() {
            return Ok(0);
        }
        Self::check_span(global, addr, buf.len())?;
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            let b = self.bank_of(line_id);
            let stats = &self.cells.banks[b];
            let mut bank = self.banks[b].lock();
            if let Some(&i) = bank.map.get(&line_id) {
                stats.hits.fetch_add(1, Ordering::Relaxed);
                cost += lat.cache_hit_ns;
                bank.touch(i);
                let line = &mut bank.slots[i as usize];
                line.data[in_line..in_line + take].copy_from_slice(&buf[pos..pos + take]);
                line.dirty = true;
            } else if take == LINE_SIZE {
                // Full-line write: allocate without fetching.
                stats.allocs.fetch_add(1, Ordering::Relaxed);
                cost += lat.cache_hit_ns;
                let mut data = [0u8; LINE_SIZE];
                data.copy_from_slice(&buf[pos..pos + take]);
                bank.insert_line(line_id, data, true);
                cost += Self::enforce_capacity(&mut bank, stats, global, lat);
            } else {
                let mut data = [0u8; LINE_SIZE];
                global.read_bytes(GAddr(line_id * LINE_SIZE as u64), &mut data)?;
                stats.misses.fetch_add(1, Ordering::Relaxed);
                cost += if missed {
                    lat.transfer_ns(LINE_SIZE).max(1)
                } else {
                    lat.global_read_ns
                };
                missed = true;
                data[in_line..in_line + take].copy_from_slice(&buf[pos..pos + take]);
                bank.insert_line(line_id, data, true);
                cost += Self::enforce_capacity(&mut bank, stats, global, lat);
            }
            drop(bank);
            pos += take;
            a += take as u64;
        }
        Ok(cost)
    }

    /// Reject spans whose end overflows `u64` or exceeds the pool, before
    /// any per-line work touches the cache. Addresses near `u64::MAX`
    /// previously wrapped silently in release builds.
    fn check_span(global: &GlobalMemory, addr: GAddr, len: usize) -> Result<(), SimError> {
        let oob = SimError::OutOfBounds {
            addr,
            len,
            capacity: global.capacity(),
        };
        let end = addr.0.checked_add(len as u64).ok_or(oob.clone())?;
        if end > global.capacity() as u64 {
            return Err(oob);
        }
        Ok(())
    }

    fn line_range(addr: GAddr, len: usize) -> std::ops::RangeInclusive<u64> {
        let first = addr.0 / LINE_SIZE as u64;
        // Saturate instead of wrapping for spans ending past `u64::MAX`:
        // lines that high can never be resident, so clamping is lossless.
        let last = addr.0.saturating_add(len.max(1) as u64 - 1) / LINE_SIZE as u64;
        first..=last
    }

    /// Write back (but keep cached) any dirty lines covering `[addr, addr+len)`.
    /// Returns the simulated cost.
    pub fn writeback(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        len: usize,
    ) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut cost = 0;
        let mut first = true;
        for line_id in Self::line_range(addr, len) {
            let b = self.bank_of(line_id);
            let stats = &self.cells.banks[b];
            let mut bank = self.banks[b].lock();
            if let Some(&i) = bank.map.get(&line_id) {
                let line = &mut bank.slots[i as usize];
                if line.dirty {
                    if global
                        .write_bytes(GAddr(line_id * LINE_SIZE as u64), &line.data)
                        .is_ok()
                    {
                        line.dirty = false;
                        stats.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                    // Burst model: full latency for the first line of the
                    // range, bandwidth-limited for the rest.
                    cost += if first {
                        lat.writeback_line_ns
                    } else {
                        lat.transfer_ns(LINE_SIZE).max(1)
                    };
                    first = false;
                }
            }
        }
        cost
    }

    /// Drop cached lines covering `[addr, addr+len)`. Dirty data that was
    /// not written back first is **discarded**, as with a hardware
    /// invalidate instruction. Returns the simulated cost.
    pub fn invalidate(&self, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut cost = 0;
        let mut first = true;
        for line_id in Self::line_range(addr, len) {
            let b = self.bank_of(line_id);
            let mut bank = self.banks[b].lock();
            if bank.pop_line(line_id).is_some() {
                self.cells.banks[b]
                    .invalidations
                    .fetch_add(1, Ordering::Relaxed);
                // Invalidation is local bookkeeping: one instruction's
                // latency up front, then a small per-line tail cost.
                cost += if first {
                    lat.invalidate_line_ns
                } else {
                    lat.invalidate_extra_line_ns
                };
                first = false;
            }
        }
        cost
    }

    /// Write back then invalidate `[addr, addr+len)` (clean+invalidate).
    pub fn flush(&self, global: &GlobalMemory, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        self.writeback(global, lat, addr, len) + self.invalidate(lat, addr, len)
    }

    /// Write back every dirty line and drop the whole cache.
    pub fn flush_all(&self, global: &GlobalMemory, lat: &LatencyModel) -> u64 {
        let mut cost = 0;
        for (b, bank) in self.banks.iter().enumerate() {
            let stats = &self.cells.banks[b];
            let mut bank = bank.lock();
            while let Some((line_id, dirty, data)) = bank.pop_lru() {
                if dirty {
                    if global
                        .write_bytes(GAddr(line_id * LINE_SIZE as u64), &data)
                        .is_ok()
                    {
                        stats.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                    cost += lat.writeback_line_ns;
                }
                stats.invalidations.fetch_add(1, Ordering::Relaxed);
                cost += lat.invalidate_line_ns;
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GlobalMemory, NodeCache, NodeCache, LatencyModel) {
        let g = GlobalMemory::new(4096);
        let lat = LatencyModel::hccs();
        (
            g,
            NodeCache::new(CacheConfig::default()),
            NodeCache::new(CacheConfig::default()),
            lat,
        )
    }

    #[test]
    fn cached_write_invisible_until_writeback() {
        let (g, c0, c1, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        c0.write(&g, &lat, a, &[1; 8]).unwrap();
        // Node 1 reads directly: still zero.
        let mut buf = [9u8; 8];
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "write must be invisible before writeback");
        c0.writeback(&g, &lat, a, 8);
        // Node 1 has the line cached and stale; invalidate then read.
        c1.invalidate(&lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
    }

    #[test]
    fn stale_reads_until_invalidate() {
        let (g, c0, c1, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        let mut buf = [0u8; 8];
        c1.read(&g, &lat, a, &mut buf).unwrap(); // c1 caches the zero line
        c0.write(&g, &lat, a, &[7; 8]).unwrap();
        c0.flush(&g, &lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "stale cached value served before invalidate");
        c1.invalidate(&lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn own_writes_read_back() {
        let (g, c0, _, lat) = setup();
        let a = g.alloc(128, 64).unwrap();
        let data: Vec<u8> = (0..100).collect();
        c0.write(&g, &lat, a, &data).unwrap();
        let mut out = vec![0u8; 100];
        c0.read(&g, &lat, a, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn invalidate_discards_dirty_data() {
        let (g, c0, _, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        c0.write(&g, &lat, a, &[5; 8]).unwrap();
        c0.invalidate(&lat, a, 8);
        let mut buf = [0u8; 8];
        c0.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "dirty data dropped by invalidate");
    }

    #[test]
    fn costs_distinguish_hit_and_miss() {
        let (g, c0, _, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        let mut buf = [0u8; 8];
        let miss = c0.read(&g, &lat, a, &mut buf).unwrap();
        let hit = c0.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(miss, lat.global_read_ns);
        assert_eq!(hit, lat.cache_hit_ns);
        assert_eq!(c0.stats().misses, 1);
        assert_eq!(c0.stats().hits, 1);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_victims() {
        let g = GlobalMemory::new(LINE_SIZE * 16);
        let lat = LatencyModel::hccs();
        let c = NodeCache::new(CacheConfig {
            max_lines: 2,
            banks: 1,
        });
        // Dirty three distinct lines; first should be evicted + written back.
        for i in 0..3u64 {
            c.write(
                &g,
                &lat,
                GAddr(i * LINE_SIZE as u64),
                &[i as u8 + 1; LINE_SIZE],
            )
            .unwrap();
        }
        assert_eq!(c.resident_lines(), 2);
        assert!(c.stats().evictions >= 1);
        let mut buf = [0u8; 1];
        g.read_bytes(GAddr(0), &mut buf).unwrap();
        assert_eq!(buf[0], 1, "evicted dirty line landed in global memory");
    }

    #[test]
    fn flush_all_empties_cache() {
        let (g, c0, _, lat) = setup();
        c0.write(&g, &lat, GAddr(0), &[1; 256]).unwrap();
        assert!(c0.resident_lines() > 0);
        c0.flush_all(&g, &lat);
        assert_eq!(c0.resident_lines(), 0);
        let mut buf = [0u8; 256];
        g.read_bytes(GAddr(0), &mut buf).unwrap();
        assert_eq!(buf, [1; 256]);
    }

    #[test]
    fn full_line_write_skips_fetch() {
        let (g, c0, _, lat) = setup();
        let before = c0.stats().misses;
        c0.write(&g, &lat, GAddr(0), &[2; LINE_SIZE]).unwrap();
        assert_eq!(
            c0.stats().misses,
            before,
            "aligned full-line write allocates without fill"
        );
        assert_eq!(c0.stats().allocs, 1, "write-allocate counted as alloc");
    }

    #[test]
    fn stats_identity_hits_misses_allocs() {
        // hits + misses + allocs must equal total line accesses across a
        // mixed workload: partial reads, partial writes, full-line writes.
        let (g, c, _, lat) = setup();
        let mut accesses = 0u64;
        let count_lines = |addr: u64, len: usize| {
            (addr + len as u64 - 1) / LINE_SIZE as u64 - addr / LINE_SIZE as u64 + 1
        };
        for (addr, len, write) in [
            (0u64, 8usize, false),
            (0, LINE_SIZE, true),
            (64, 200, true),
            (32, 96, false),
            (128, LINE_SIZE, true),
            (0, 256, false),
        ] {
            if write {
                c.write(&g, &lat, GAddr(addr), &vec![1u8; len]).unwrap();
            } else {
                c.read(&g, &lat, GAddr(addr), &mut vec![0u8; len]).unwrap();
            }
            accesses += count_lines(addr, len);
        }
        let s = c.stats();
        assert_eq!(
            s.hits + s.misses + s.allocs,
            accesses,
            "line-access accounting identity"
        );
    }

    #[test]
    fn lines_distribute_across_banks() {
        let (g, c, _, lat) = setup();
        // Lines 0..16 with the default 16 banks: one line per bank.
        let mut buf = [0u8; LINE_SIZE];
        for i in 0..16u64 {
            c.read(&g, &lat, GAddr(i * LINE_SIZE as u64), &mut buf)
                .unwrap();
        }
        assert_eq!(c.banks(), 16);
        assert_eq!(c.resident_lines(), 16);
        for (b, bank) in c.banks.iter().enumerate() {
            assert_eq!(
                bank.lock().map.len(),
                1,
                "line {b} should land alone in bank {b}"
            );
        }
    }

    #[test]
    fn eviction_is_exact_lru_deterministically() {
        // With one bank of capacity 3, the victim is always the exact LRU
        // line — the intrusive list tail — on every run.
        let run = || {
            let g = GlobalMemory::new(LINE_SIZE * 64);
            let lat = LatencyModel::hccs();
            let c = NodeCache::new(CacheConfig {
                max_lines: 3,
                banks: 1,
            });
            let mut buf = [0u8; LINE_SIZE];
            for i in [0u64, 1, 2] {
                c.read(&g, &lat, GAddr(i * LINE_SIZE as u64), &mut buf)
                    .unwrap();
            }
            // Touch 0 so 1 becomes the LRU, then insert 3: must evict 1.
            c.read(&g, &lat, GAddr(0), &mut buf).unwrap();
            c.read(&g, &lat, GAddr(3 * LINE_SIZE as u64), &mut buf)
                .unwrap();
            let mut resident: Vec<u64> = {
                let bank = c.banks[0].lock();
                bank.map.keys().copied().collect()
            };
            resident.sort_unstable();
            (resident, c.stats().evictions)
        };
        let (resident, evictions) = run();
        assert_eq!(resident, vec![0, 2, 3], "LRU line 1 evicted");
        assert_eq!(evictions, 1);
        for _ in 0..8 {
            assert_eq!(run(), (resident.clone(), evictions), "exact LRU replays");
        }
    }

    #[test]
    fn slab_slots_are_reused_after_invalidate() {
        let g = GlobalMemory::new(LINE_SIZE * 64);
        let lat = LatencyModel::hccs();
        let c = NodeCache::new(CacheConfig {
            max_lines: 8,
            banks: 1,
        });
        let mut buf = [0u8; 8];
        for round in 0..10 {
            for i in 0..4u64 {
                c.read(&g, &lat, GAddr(i * LINE_SIZE as u64), &mut buf)
                    .unwrap();
            }
            c.invalidate(&lat, GAddr(0), LINE_SIZE * 4);
            let bank = c.banks[0].lock();
            assert!(
                bank.slots.len() <= 4,
                "round {round}: slab grew past the working set ({} slots)",
                bank.slots.len()
            );
        }
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn near_max_addresses_error_instead_of_wrapping() {
        let (g, c, _, lat) = setup();
        let mut buf = [0u8; 16];
        let top = GAddr(u64::MAX - 7);
        assert!(matches!(
            c.read(&g, &lat, top, &mut buf),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.write(&g, &lat, top, &buf),
            Err(SimError::OutOfBounds { .. })
        ));
        // Maintenance ops on absurd ranges are no-ops, not panics/wraps.
        assert_eq!(c.writeback(&g, &lat, top, 16), 0);
        assert_eq!(c.invalidate(&lat, top, 16), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }
}
