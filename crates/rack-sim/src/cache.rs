//! Per-node software cache over global memory — the *non-coherence* model.
//!
//! The memory interconnects the paper targets (§2.1) do not guarantee
//! hardware cache coherence across nodes: a node's cached view of global
//! memory goes stale when another node writes, and a node's own cached
//! writes stay invisible to the rack until explicitly written back. This
//! module models exactly that contract:
//!
//! * [`NodeCache::read`] serves cached lines **without revalidation** —
//!   stale data is returned until the node invalidates.
//! * [`NodeCache::write`] dirties cached lines locally; global memory is
//!   only updated on [`NodeCache::writeback`]/[`NodeCache::flush`] or
//!   capacity eviction.
//! * Atomics (in [`crate::NodeCtx`]) bypass the cache entirely, matching
//!   fabric-level atomics (CXL/libfam-atomic style).
//!
//! Cost accounting: every method returns the simulated nanoseconds the
//! operation cost; the owning [`crate::NodeCtx`] charges its clock.
//!
//! # Internals: banks, single-flight fills, seqlock read hits
//!
//! The cache is **sharded**: a line id maps to one of
//! [`CacheConfig::banks`] banks (`line_id & (banks - 1)`), each bank
//! owning its share of the lines behind its own lock. Three rules keep
//! the banks actually parallel where the first sharded design still
//! serialized:
//!
//! 1. **No bank lock is ever held across a fabric operation.** A miss
//!    installs a per-line in-flight guard (slot state *Filling*: present
//!    in the bank map with `SlotMeta::filling` set, not on the LRU list),
//!    releases the bank mutex, performs the `GlobalMemory` read with no
//!    node-local lock held, then re-acquires the mutex to publish the
//!    line. Dirty eviction victims and explicit writebacks move their
//!    fabric writes out from under the lock the same way. Debug builds
//!    enforce the rule with a thread-local lock-depth assertion in the
//!    [`fabric_read`]/[`fabric_write`] helpers — the only fabric call
//!    sites in this module.
//! 2. **Fills are single-flight.** A second thread missing on a line
//!    that is already *Filling* does not issue a duplicate fabric read;
//!    it waits on the bank's condvar and completes as a cost-shared hit
//!    (`cache_hit_ns`, counted in both `hits` and `coalesced_fills`).
//!    This is the request-coalescing idea flat-combining/OpLog designs
//!    use for fabric-latency operations.
//! 3. **Read hits take no lock at all.** Line payloads live in
//!    [`SlotCell`]s — per-slot seqlock sequence counters
//!    ([`crate::sync::SeqCount`]) over atomic words — outside the bank
//!    mutex, found via a lock-free direct-mapped [`LineIndex`]. A reader
//!    samples the sequence, copies the words, and revalidates; a torn
//!    read retries and then falls back to the locked path, so the fast
//!    path is purely an optimization and never a correctness dependency.
//!    LRU recency for lock-free hits is maintained best-effort via
//!    `try_lock` (exact when uncontended, so single-threaded runs keep
//!    exact-LRU determinism).
//!
//! Within a bank, resident lines are threaded onto an **intrusive
//! doubly-linked LRU list** by slab index: a hit is one hash lookup plus
//! four pointer swaps, and the eviction victim is always the list tail —
//! exact LRU in O(1). Behaviour counters are **per-bank relaxed atomics**
//! shared with [`crate::NodeStats`] through an [`Arc`], so readers
//! snapshot them without taking any bank lock.
//!
//! # Partial-span effects on error
//!
//! Span operations process one line at a time, front to back. When a
//! line fill fails mid-span (poisoned or out-of-pool words), the error
//! propagates after earlier lines already took effect: prefix bytes of
//! the caller's buffer are filled (reads) or cached dirty (writes), and
//! their counters are recorded. The *failing* line contributes nothing —
//! no counter increment, no buffer mutation, no resident line — so the
//! identity `hits + misses + allocs == successfully accessed line
//! segments` holds on every path, success or error. Callers needing
//! all-or-nothing semantics should pre-validate with
//! [`GlobalMemory::is_poisoned`].

use crate::error::SimError;
use crate::latency::LatencyModel;
use crate::memory::{GAddr, GlobalMemory};
use crate::sync::{Condvar, Mutex, SeqCount};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard, OnceLock};

/// Cache line size in bytes, matching common ARM/x86 line sizes.
pub const LINE_SIZE: usize = 64;

/// 64-bit words per cache line.
const LINE_WORDS: usize = LINE_SIZE / 8;

/// Slab-index sentinel terminating the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// `SlotCell::line_id` value for a cell that holds no published line.
const NO_LINE: u64 = u64::MAX;

/// Extra slab slots beyond a bank's capacity, so concurrent in-flight
/// fills never have to wait for slots in practice (a bank would need
/// this many *simultaneous* fills before the grant loop evicts or waits).
const FILL_HEADROOM: usize = 256;

/// Slots per lazily-allocated slab chunk.
const CHUNK: usize = 64;

/// Optimistic-read attempts before the hit path falls back to the lock.
const HIT_RETRIES: usize = 4;

/// Debug-only lock-ordering watchdog: counts bank guards held by the
/// current thread so the fabric helpers can assert the "no bank lock
/// across fabric ops" rule structurally, on every test run.
#[cfg(debug_assertions)]
mod lockdep {
    use std::cell::Cell;

    thread_local! {
        static BANK_GUARDS: Cell<u32> = const { Cell::new(0) };
    }

    pub(super) fn enter() {
        BANK_GUARDS.with(|d| d.set(d.get() + 1));
    }

    pub(super) fn exit() {
        BANK_GUARDS.with(|d| d.set(d.get() - 1));
    }

    pub(super) fn assert_unlocked(op: &str) {
        BANK_GUARDS.with(|d| {
            assert_eq!(d.get(), 0, "{op} attempted while holding a cache bank lock");
        });
    }
}

/// The only fabric-read call site in this module. Free function outside
/// any lock scope by construction; debug builds additionally assert the
/// calling thread holds no bank guard.
fn fabric_read(
    global: &GlobalMemory,
    line_id: u64,
    data: &mut [u8; LINE_SIZE],
) -> Result<(), SimError> {
    #[cfg(debug_assertions)]
    lockdep::assert_unlocked("fabric line fill");
    global.read_bytes(GAddr(line_id * LINE_SIZE as u64), data)
}

/// The only fabric-write call site in this module (see [`fabric_read`]).
fn fabric_write(
    global: &GlobalMemory,
    line_id: u64,
    data: &[u8; LINE_SIZE],
) -> Result<(), SimError> {
    #[cfg(debug_assertions)]
    lockdep::assert_unlocked("fabric line writeback");
    global.write_bytes(GAddr(line_id * LINE_SIZE as u64), data)
}

/// Configuration of a node's cache over global memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of resident lines before LRU eviction. Capacity is
    /// enforced per bank (`max(1, max_lines / banks)` lines each), so the
    /// total never exceeds `max_lines` when it divides evenly.
    pub max_lines: usize,
    /// Number of banks the cache is sharded into. Must be a power of two;
    /// line `id` lives in bank `id & (banks - 1)`.
    pub banks: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 8 MiB of cached global memory per node by default.
        CacheConfig {
            max_lines: 8 * 1024 * 1024 / LINE_SIZE,
            banks: 16,
        }
    }
}

/// Counters describing cache behaviour, used by experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses served from the cache.
    pub hits: u64,
    /// Line accesses that had to fetch from global memory.
    pub misses: u64,
    /// Full-line write allocations that skipped the fill (neither a hit
    /// nor a miss; `hits + misses + allocs` equals total line accesses).
    pub allocs: u64,
    /// Dirty lines written back (explicitly or by eviction).
    pub writebacks: u64,
    /// Lines dropped by invalidation.
    pub invalidations: u64,
    /// Lines evicted for capacity.
    pub evictions: u64,
    /// Hits that waited on another thread's in-flight fill of the same
    /// line instead of issuing a duplicate fabric read (a subset of
    /// `hits`; the coalesced access is charged `cache_hit_ns`).
    pub coalesced_fills: u64,
}

/// One bank's behaviour counters: relaxed atomics so the hot path updates
/// them without any cross-bank contention — and, for the lock-free hit
/// path, without holding the bank lock at all — while snapshot readers
/// sum them without taking locks.
#[derive(Debug, Default)]
struct BankStats {
    hits: AtomicU64,
    misses: AtomicU64,
    allocs: AtomicU64,
    writebacks: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    coalesced_fills: AtomicU64,
}

/// The shared handle to a cache's per-bank counters. The owning
/// [`crate::NodeCtx`] hands a clone of the [`Arc`] to its
/// [`crate::NodeStats`] so snapshots read cache behaviour directly,
/// with no publish/copy step on the access path.
#[derive(Debug, Default)]
pub(crate) struct CacheStatsCells {
    banks: Box<[BankStats]>,
}

impl CacheStatsCells {
    fn new(banks: usize) -> Self {
        CacheStatsCells {
            banks: (0..banks).map(|_| BankStats::default()).collect(),
        }
    }

    /// Sum every bank's counters into one [`CacheStats`].
    pub(crate) fn total(&self) -> CacheStats {
        let mut t = CacheStats::default();
        for b in &self.banks {
            t.hits += b.hits.load(Ordering::Relaxed);
            t.misses += b.misses.load(Ordering::Relaxed);
            t.allocs += b.allocs.load(Ordering::Relaxed);
            t.writebacks += b.writebacks.load(Ordering::Relaxed);
            t.invalidations += b.invalidations.load(Ordering::Relaxed);
            t.evictions += b.evictions.load(Ordering::Relaxed);
            t.coalesced_fills += b.coalesced_fills.load(Ordering::Relaxed);
        }
        t
    }
}

/// One slot's payload, readable without the bank lock: a seqlock sequence
/// counter over the line id and the line's eight data words. Writers are
/// serialized by the bank mutex and bracket every mutation with
/// `seq.write_begin()`/`write_end()`; lock-free readers validate that the
/// id matched and no writer ran during their copy.
#[derive(Debug)]
struct SlotCell {
    seq: SeqCount,
    line_id: AtomicU64,
    words: [AtomicU64; LINE_WORDS],
}

impl SlotCell {
    fn new() -> Self {
        SlotCell {
            seq: SeqCount::new(),
            line_id: AtomicU64::new(NO_LINE),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Copy the whole line out of the atomic words. Safe in any context;
    /// consistency against concurrent writers is the seqlock's job.
    fn load_data(&self) -> [u8; LINE_SIZE] {
        let mut out = [0u8; LINE_SIZE];
        for (w, chunk) in self.words.iter().zip(out.chunks_exact_mut(8)) {
            chunk.copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
        }
        out
    }

    /// Store a whole line into the atomic words. Callers must hold the
    /// bank lock and bracket the call with the seq counter.
    fn store_data(&self, data: &[u8; LINE_SIZE]) {
        for (w, chunk) in self.words.iter().zip(data.chunks_exact(8)) {
            w.store(
                u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
                Ordering::Relaxed,
            );
        }
    }
}

/// A bank's slot payloads, outside the bank mutex so readers reach them
/// lock-free. Chunks are allocated lazily (under the bank lock, via
/// `ensure`) so idle banks cost nothing; `get` is wait-free.
#[derive(Debug)]
struct CellSlab {
    chunks: Box<[OnceLock<Box<[SlotCell; CHUNK]>>]>,
}

impl CellSlab {
    fn new(max_slots: usize) -> Self {
        CellSlab {
            chunks: (0..max_slots.div_ceil(CHUNK))
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    /// The cell for `slot`, or `None` if its chunk was never allocated.
    fn get(&self, slot: u32) -> Option<&SlotCell> {
        let chunk = self.chunks.get(slot as usize / CHUNK)?.get()?;
        Some(&chunk[slot as usize % CHUNK])
    }

    /// The cell for `slot`, allocating its chunk on first use.
    fn ensure(&self, slot: u32) -> &SlotCell {
        let chunk = self.chunks[slot as usize / CHUNK]
            .get_or_init(|| Box::new(std::array::from_fn(|_| SlotCell::new())));
        &chunk[slot as usize % CHUNK]
    }
}

/// A lock-free, direct-mapped hint from line id to slot index (+1; 0 is
/// empty). Published/retracted only under the bank lock; probed without
/// it. Purely a cache-of-the-map: a stale or colliding entry sends the
/// reader to the locked slow path, whose `HashMap` stays authoritative.
#[derive(Debug)]
struct LineIndex {
    entries: Box<[AtomicU32]>,
    shift: u32,
}

impl LineIndex {
    fn new(cap: usize) -> Self {
        let len = (cap * 2).next_power_of_two().clamp(64, 4096);
        LineIndex {
            entries: (0..len).map(|_| AtomicU32::new(0)).collect(),
            shift: 64 - len.trailing_zeros(),
        }
    }

    #[inline]
    fn bucket(&self, line_id: u64) -> usize {
        // Fibonacci hashing spreads consecutive line ids across buckets.
        (line_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    #[inline]
    fn slot_hint(&self, line_id: u64) -> Option<u32> {
        let e = self.entries[self.bucket(line_id)].load(Ordering::Relaxed);
        (e != 0).then(|| e - 1)
    }

    fn publish(&self, line_id: u64, slot: u32) {
        self.entries[self.bucket(line_id)].store(slot + 1, Ordering::Relaxed);
    }

    /// Clear the hint if it still points at `slot` (any entry aimed at a
    /// freed slot is stale regardless of which line published it).
    fn retract(&self, line_id: u64, slot: u32) {
        let e = &self.entries[self.bucket(line_id)];
        if e.load(Ordering::Relaxed) == slot + 1 {
            e.store(0, Ordering::Relaxed);
        }
    }
}

/// Multiply–xor-shift hasher for the bank map's `u64` line-id keys.
/// SipHash (the `HashMap` default) costs more than the rest of a bank-map
/// probe combined on the miss path; line ids need no DoS resistance, so
/// one multiply with an avalanche finalizer is both faster and spreads
/// the per-bank stride-`banks` id sequences well.
#[derive(Debug, Default)]
struct LineIdHasher(u64);

impl std::hash::Hasher for LineIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback; the bank map only ever hashes u64 keys.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 32);
    }
}

/// The bank's authoritative line-id → slot map.
type LineMap = HashMap<u64, u32, BuildHasherDefault<LineIdHasher>>;

/// Per-slot bookkeeping guarded by the bank mutex: the intrusive LRU
/// links plus the dirty and in-flight-fill flags. Payload bytes live in
/// the matching [`SlotCell`], not here.
#[derive(Debug, Clone)]
struct SlotMeta {
    line_id: u64,
    prev: u32,
    next: u32,
    dirty: bool,
    filling: bool,
}

/// One bank's locked state: line-id → slot map, the slot metadata slab,
/// and the intrusive LRU list (head = MRU, tail = LRU victim) threaded
/// through *ready* slots only — a slot mid-fill is in `map` (so misses
/// coalesce onto it) but not on the list (so it cannot be evicted).
#[derive(Debug)]
struct Bank {
    map: LineMap,
    meta: Vec<SlotMeta>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    cap: usize,
    max_slots: usize,
    /// Published (ready) resident lines; `map.len() - ready` fills are in
    /// flight. Capacity is enforced against this count.
    ready: usize,
}

impl Bank {
    fn new(cap: usize, max_slots: usize) -> Self {
        Bank {
            map: LineMap::default(),
            meta: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
            max_slots,
            ready: 0,
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.meta[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.meta[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.meta[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.meta[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.meta[h as usize].prev = i,
        }
        self.head = i;
    }

    /// Move slot `i` to the MRU position.
    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Hand out a free slot index, growing the slab up to `max_slots`.
    fn grant_slot(&mut self) -> Option<u32> {
        if let Some(i) = self.free.pop() {
            return Some(i);
        }
        if self.meta.len() < self.max_slots {
            let i = u32::try_from(self.meta.len()).expect("bank slab exceeds u32 slots");
            self.meta.push(SlotMeta {
                line_id: NO_LINE,
                prev: NIL,
                next: NIL,
                dirty: false,
                filling: false,
            });
            return Some(i);
        }
        None
    }

    /// Claim `line_id` for an in-flight fill in slot `i`: visible in the
    /// map (later misses coalesce) but not on the LRU list.
    fn begin_fill(&mut self, i: u32, line_id: u64) {
        self.meta[i as usize] = SlotMeta {
            line_id,
            prev: NIL,
            next: NIL,
            dirty: false,
            filling: true,
        };
        self.map.insert(line_id, i);
    }

    /// Abandon an in-flight fill (the fabric read failed).
    fn abort_fill(&mut self, i: u32) {
        let line_id = self.meta[i as usize].line_id;
        self.map.remove(&line_id);
        self.meta[i as usize].filling = false;
        self.meta[i as usize].line_id = NO_LINE;
        self.free.push(i);
    }

    /// Flip an in-flight fill to ready at the MRU position. The map
    /// entry already exists from [`Bank::begin_fill`], so unlike
    /// [`Bank::install_ready`] no hash probe is needed.
    fn publish_fill(&mut self, i: u32, dirty: bool) {
        let m = &mut self.meta[i as usize];
        debug_assert!(m.filling, "publish_fill on a slot not mid-fill");
        m.filling = false;
        m.dirty = dirty;
        self.push_front(i);
        self.ready += 1;
    }

    /// Publish slot `i` as the ready, MRU line for `line_id` (completes
    /// full-line write allocations, which skip `begin_fill`).
    fn install_ready(&mut self, i: u32, line_id: u64, dirty: bool) {
        self.meta[i as usize] = SlotMeta {
            line_id,
            prev: NIL,
            next: NIL,
            dirty,
            filling: false,
        };
        self.map.insert(line_id, i);
        self.push_front(i);
        self.ready += 1;
    }

    /// Drop the ready slot `i` from the map, list, and ready count.
    fn remove_ready(&mut self, i: u32) {
        let line_id = self.meta[i as usize].line_id;
        self.map.remove(&line_id);
        self.unlink(i);
        // Freed slots carry no line id, so a stale index hint can never
        // verify against leftover metadata (see `probe_locked`).
        self.meta[i as usize].line_id = NO_LINE;
        self.free.push(i);
        self.ready -= 1;
    }

    /// Evict the exact LRU line (list tail), returning (slot, id, dirty).
    /// Only ready lines are on the list, so in-flight fills are immune.
    fn pop_lru(&mut self) -> Option<(u32, u64, bool)> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        let (line_id, dirty) = {
            let s = &self.meta[i as usize];
            (s.line_id, s.dirty)
        };
        self.map.remove(&line_id);
        self.unlink(i);
        self.meta[i as usize].line_id = NO_LINE;
        self.free.push(i);
        self.ready -= 1;
        Some((i, line_id, dirty))
    }
}

/// RAII wrapper over the bank mutex guard that keeps the debug
/// thread-local lock-depth (see [`lockdep`]) in sync with reality.
struct BankGuard<'a> {
    inner: Option<MutexGuard<'a, Bank>>,
}

impl Deref for BankGuard<'_> {
    type Target = Bank;

    fn deref(&self) -> &Bank {
        self.inner.as_ref().expect("bank guard active")
    }
}

impl DerefMut for BankGuard<'_> {
    fn deref_mut(&mut self) -> &mut Bank {
        self.inner.as_mut().expect("bank guard active")
    }
}

impl Drop for BankGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if self.inner.is_some() {
            lockdep::exit();
        }
    }
}

/// One shard: the locked [`Bank`], a condvar for fill waiters, and the
/// lock-free structures ([`CellSlab`], [`LineIndex`]) readers use
/// without the mutex.
#[derive(Debug)]
struct BankShard {
    state: Mutex<Bank>,
    fill_cv: Condvar,
    fill_waiters: AtomicU32,
    slab: CellSlab,
    index: LineIndex,
}

impl BankShard {
    fn new(cap: usize) -> Self {
        let max_slots = cap.saturating_add(FILL_HEADROOM);
        BankShard {
            state: Mutex::new(Bank::new(cap, max_slots)),
            fill_cv: Condvar::new(),
            fill_waiters: AtomicU32::new(0),
            slab: CellSlab::new(max_slots),
            index: LineIndex::new(cap),
        }
    }

    fn lock(&self) -> BankGuard<'_> {
        let g = self.state.lock();
        #[cfg(debug_assertions)]
        lockdep::enter();
        BankGuard { inner: Some(g) }
    }

    fn try_lock(&self) -> Option<BankGuard<'_>> {
        let g = self.state.try_lock()?;
        #[cfg(debug_assertions)]
        lockdep::enter();
        Some(BankGuard { inner: Some(g) })
    }

    /// Block on the fill condvar, releasing and reacquiring the bank
    /// lock. Spurious wakeups are possible; callers loop on the map.
    fn wait_for_fill<'a>(&self, mut g: BankGuard<'a>) -> BankGuard<'a> {
        // Registered before the lock is released, so a publisher that
        // later acquires the lock is guaranteed to observe the waiter.
        self.fill_waiters.fetch_add(1, Ordering::Relaxed);
        let inner = g.inner.take().expect("bank guard active");
        g.inner = Some(self.fill_cv.wait(inner));
        self.fill_waiters.fetch_sub(1, Ordering::Relaxed);
        g
    }

    /// Wake fill waiters — cheap (one relaxed load, no syscall) when
    /// nobody waits, which is the overwhelmingly common case.
    fn notify_fill_waiters(&self) {
        if self.fill_waiters.load(Ordering::Relaxed) > 0 {
            self.fill_cv.notify_all();
        }
    }
}

/// Locked lookup of `line_id`'s slot. The lock-free index hint, verified
/// against the locked slot metadata, short-circuits the hash-map probe on
/// the hot ready-hit case: a hint that matches the slot's metadata implies
/// a ready resident line, because fills publish to the index only once
/// ready and every eviction/invalidation retracts (or overwrites) the
/// entry before the slot can be reused. Anything else falls back to the
/// authoritative map.
#[inline]
fn probe_locked(shard: &BankShard, bank: &Bank, line_id: u64) -> Option<u32> {
    if let Some(s) = shard.index.slot_hint(line_id) {
        if bank
            .meta
            .get(s as usize)
            .is_some_and(|m| m.line_id == line_id && !m.filling)
        {
            debug_assert_eq!(bank.map.get(&line_id), Some(&s));
            return Some(s);
        }
    }
    bank.map.get(&line_id).copied()
}

/// A dirty eviction victim carried out of the lock scope for its
/// fabric write: (line id, payload snapshot).
type Victim = (u64, [u8; LINE_SIZE]);

/// What a miss should do with the filled line.
enum FillIo<'a> {
    Read(&'a mut [u8]),
    Write(&'a [u8]),
}

/// Pop the LRU victim, charge its cost, and queue its dirty payload for
/// a fabric write after the lock drops. Returns `None` if nothing is
/// evictable (every slot is mid-fill).
fn evict_one(
    shard: &BankShard,
    stats: &BankStats,
    guard: &mut BankGuard<'_>,
    lat: &LatencyModel,
    victims: &mut Vec<Victim>,
) -> Option<u64> {
    let (i, line_id, dirty) = guard.pop_lru()?;
    stats.evictions.fetch_add(1, Ordering::Relaxed);
    let cell = shard.slab.get(i).expect("resident slot has a cell");
    let mut cost = 0;
    if dirty {
        victims.push((line_id, cell.load_data()));
        cost += lat.writeback_line_ns;
    }
    cell.seq.write_begin();
    cell.line_id.store(NO_LINE, Ordering::Relaxed);
    cell.seq.write_end();
    shard.index.retract(line_id, i);
    Some(cost)
}

/// Evict exact-LRU lines until the bank is back under its capacity.
fn enforce_capacity(
    shard: &BankShard,
    stats: &BankStats,
    guard: &mut BankGuard<'_>,
    lat: &LatencyModel,
    victims: &mut Vec<Victim>,
) -> u64 {
    let mut cost = 0;
    while guard.ready > guard.cap {
        match evict_one(shard, stats, guard, lat, victims) {
            Some(c) => cost += c,
            None => break,
        }
    }
    cost
}

/// Write queued eviction victims to the fabric, outside any bank lock.
/// Best-effort: poisoned destinations drop the line, mirroring hardware
/// discarding a line it cannot store (cost was already charged).
fn flush_victims(global: &GlobalMemory, stats: &BankStats, victims: &[Victim]) {
    for (line_id, data) in victims {
        if fabric_write(global, *line_id, data).is_ok() {
            stats.writebacks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A single node's software-managed, non-coherent cache of global memory.
///
/// All methods take `&self`: locking is internal and per-bank, read hits
/// are lock-free, and no bank lock is ever held across a fabric access.
#[derive(Debug)]
pub struct NodeCache {
    shards: Box<[BankShard]>,
    cells: Arc<CacheStatsCells>,
    bank_mask: u64,
}

impl NodeCache {
    /// An empty cache with the given capacity configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.banks` is zero or not a power of two.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.banks.is_power_of_two(),
            "cache banks must be a power of two, got {}",
            config.banks
        );
        let per_bank = (config.max_lines / config.banks).max(1);
        NodeCache {
            shards: (0..config.banks)
                .map(|_| BankShard::new(per_bank))
                .collect(),
            cells: Arc::new(CacheStatsCells::new(config.banks)),
            bank_mask: config.banks as u64 - 1,
        }
    }

    /// The shared per-bank counter cells (for [`crate::NodeStats`]).
    pub(crate) fn stats_cells(&self) -> Arc<CacheStatsCells> {
        self.cells.clone()
    }

    /// Snapshot of the cache's behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.cells.total()
    }

    /// Number of banks the cache is sharded into.
    pub fn banks(&self) -> usize {
        self.shards.len()
    }

    /// Number of currently resident (published) lines. Fills still in
    /// flight are not counted until they publish.
    pub fn resident_lines(&self) -> usize {
        self.shards.iter().map(|s| s.lock().ready).sum()
    }

    #[inline]
    fn bank_of(&self, line_id: u64) -> usize {
        (line_id & self.bank_mask) as usize
    }

    /// The seqlock read-hit fast path: probe the lock-free index, copy
    /// the cell's words, and validate that no writer ran concurrently.
    /// `false` means "not provably a hit" — the caller falls back to the
    /// locked path, which is always authoritative.
    fn try_seqlock_hit(
        &self,
        shard: &BankShard,
        line_id: u64,
        in_line: usize,
        out: &mut [u8],
    ) -> bool {
        let Some(slot) = shard.index.slot_hint(line_id) else {
            return false;
        };
        let Some(cell) = shard.slab.get(slot) else {
            return false;
        };
        for _ in 0..HIT_RETRIES {
            let Some(begin) = cell.seq.read_begin() else {
                // A writer is mid-update; brief retry then fall back.
                std::hint::spin_loop();
                continue;
            };
            if cell.line_id.load(Ordering::Relaxed) != line_id {
                return false;
            }
            let data = cell.load_data();
            if cell.seq.read_validate(begin) {
                out.copy_from_slice(&data[in_line..in_line + out.len()]);
                return true;
            }
        }
        false
    }

    /// Best-effort LRU touch after a lock-free hit: exact whenever the
    /// bank lock is uncontended (always, single-threaded — preserving
    /// exact-LRU determinism), skipped under contention so the hit path
    /// never blocks.
    fn touch_best_effort(&self, shard: &BankShard, line_id: u64) {
        let Some(mut guard) = shard.try_lock() else {
            return;
        };
        let Some(i) = probe_locked(shard, &guard, line_id) else {
            return;
        };
        if !guard.meta[i as usize].filling {
            guard.touch(i);
        }
    }

    /// The locked access path for one line segment: hit, coalesced wait
    /// on an in-flight fill, full-line write allocation, or single-flight
    /// miss fill with the bank lock dropped across the fabric read.
    fn access_line(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        line_id: u64,
        in_line: usize,
        io: FillIo<'_>,
        missed: &mut bool,
    ) -> Result<u64, SimError> {
        let b = self.bank_of(line_id);
        let shard = &self.shards[b];
        let stats = &self.cells.banks[b];
        let mut cost = 0u64;
        let mut waited = false;
        let mut published = false;
        let mut victims: Vec<Victim> = Vec::new();
        let mut guard = shard.lock();
        loop {
            match probe_locked(shard, &guard, line_id) {
                Some(i) if !guard.meta[i as usize].filling => {
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        stats.coalesced_fills.fetch_add(1, Ordering::Relaxed);
                    }
                    guard.touch(i);
                    let cell = shard.slab.get(i).expect("ready slot has a cell");
                    match io {
                        FillIo::Read(out) => {
                            let take = out.len();
                            let data = cell.load_data();
                            out.copy_from_slice(&data[in_line..in_line + take]);
                        }
                        FillIo::Write(src) => {
                            let mut data = cell.load_data();
                            data[in_line..in_line + src.len()].copy_from_slice(src);
                            cell.seq.write_begin();
                            cell.store_data(&data);
                            cell.seq.write_end();
                            guard.meta[i as usize].dirty = true;
                        }
                    }
                    cost += lat.cache_hit_ns;
                    break;
                }
                Some(_) => {
                    // Another thread's fill is in flight: single-flight
                    // means we wait and cost-share instead of issuing a
                    // duplicate fabric read.
                    waited = true;
                    guard = shard.wait_for_fill(guard);
                }
                None => {
                    let Some(slot) = guard.grant_slot() else {
                        if guard.ready > 0 {
                            cost +=
                                evict_one(shard, stats, &mut guard, lat, &mut victims).unwrap_or(0);
                        } else {
                            // Every slot is mid-fill; wait for a publish
                            // or abort, then re-dispatch from the map.
                            guard = shard.wait_for_fill(guard);
                        }
                        continue;
                    };
                    let cell = shard.slab.ensure(slot);
                    if let FillIo::Write(src) = &io {
                        if src.len() == LINE_SIZE {
                            // Full-line write: allocate without fetching.
                            stats.allocs.fetch_add(1, Ordering::Relaxed);
                            let mut data = [0u8; LINE_SIZE];
                            data.copy_from_slice(src);
                            cell.seq.write_begin();
                            cell.store_data(&data);
                            cell.line_id.store(line_id, Ordering::Relaxed);
                            cell.seq.write_end();
                            guard.install_ready(slot, line_id, true);
                            shard.index.publish(line_id, slot);
                            cost += lat.cache_hit_ns;
                            cost += enforce_capacity(shard, stats, &mut guard, lat, &mut victims);
                            published = true;
                            break;
                        }
                    }
                    // Single-flight miss fill: claim the line, drop the
                    // bank lock for the fabric read, re-acquire to publish.
                    guard.begin_fill(slot, line_id);
                    drop(guard);
                    let mut data = [0u8; LINE_SIZE];
                    let filled = fabric_read(global, line_id, &mut data);
                    guard = shard.lock();
                    if let Err(e) = filled {
                        // Failing line leaves no trace: no counters, no
                        // buffer bytes, no resident line (see module docs
                        // on partial-span effects).
                        guard.abort_fill(slot);
                        drop(guard);
                        shard.notify_fill_waiters();
                        flush_victims(global, stats, &victims);
                        return Err(e);
                    }
                    stats.misses.fetch_add(1, Ordering::Relaxed);
                    // Burst model: full fabric latency for the first
                    // missed line of the span, bandwidth-limited
                    // continuation after.
                    cost += if *missed {
                        lat.transfer_ns(LINE_SIZE).max(1)
                    } else {
                        lat.global_read_ns
                    };
                    *missed = true;
                    let dirty = match io {
                        FillIo::Read(out) => {
                            let take = out.len();
                            out.copy_from_slice(&data[in_line..in_line + take]);
                            false
                        }
                        FillIo::Write(src) => {
                            data[in_line..in_line + src.len()].copy_from_slice(src);
                            true
                        }
                    };
                    cell.seq.write_begin();
                    cell.store_data(&data);
                    cell.line_id.store(line_id, Ordering::Relaxed);
                    cell.seq.write_end();
                    guard.publish_fill(slot, dirty);
                    shard.index.publish(line_id, slot);
                    cost += enforce_capacity(shard, stats, &mut guard, lat, &mut victims);
                    published = true;
                    break;
                }
            }
        }
        drop(guard);
        if published {
            shard.notify_fill_waiters();
        }
        flush_victims(global, stats, &victims);
        Ok(cost)
    }

    /// Read `buf.len()` bytes at `addr` through the cache.
    ///
    /// Cached lines are served as-is — **possibly stale** relative to
    /// global memory. Returns the simulated cost in nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds/poison errors from line fills. A mid-span
    /// failure leaves the effects of earlier lines in place (prefix of
    /// `buf` filled, counters recorded); the failing line contributes
    /// nothing — see the module docs on partial-span effects.
    pub fn read(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &mut [u8],
    ) -> Result<u64, SimError> {
        if buf.is_empty() {
            return Ok(0);
        }
        Self::check_span(global, addr, buf.len())?;
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            let seg = &mut buf[pos..pos + take];
            let b = self.bank_of(line_id);
            let shard = &self.shards[b];
            cost += if self.try_seqlock_hit(shard, line_id, in_line, seg) {
                self.cells.banks[b].hits.fetch_add(1, Ordering::Relaxed);
                self.touch_best_effort(shard, line_id);
                lat.cache_hit_ns
            } else {
                self.access_line(
                    global,
                    lat,
                    line_id,
                    in_line,
                    FillIo::Read(seg),
                    &mut missed,
                )?
            };
            pos += take;
            a += take as u64;
        }
        Ok(cost)
    }

    /// Write `buf` at `addr` into the cache (write-allocate, write-back).
    ///
    /// The update is **not visible** to other nodes until written back.
    /// Returns the simulated cost in nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds/poison errors from line fills, with the
    /// same partial-span effects contract as [`NodeCache::read`].
    pub fn write(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &[u8],
    ) -> Result<u64, SimError> {
        if buf.is_empty() {
            return Ok(0);
        }
        Self::check_span(global, addr, buf.len())?;
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            cost += self.access_line(
                global,
                lat,
                line_id,
                in_line,
                FillIo::Write(&buf[pos..pos + take]),
                &mut missed,
            )?;
            pos += take;
            a += take as u64;
        }
        Ok(cost)
    }

    /// Reject spans whose end overflows `u64` or exceeds the pool, before
    /// any per-line work touches the cache. Addresses near `u64::MAX`
    /// previously wrapped silently in release builds.
    fn check_span(global: &GlobalMemory, addr: GAddr, len: usize) -> Result<(), SimError> {
        let oob = SimError::OutOfBounds {
            addr,
            len,
            capacity: global.capacity(),
        };
        let end = addr.0.checked_add(len as u64).ok_or(oob.clone())?;
        if end > global.capacity() as u64 {
            return Err(oob);
        }
        Ok(())
    }

    fn line_range(addr: GAddr, len: usize) -> std::ops::RangeInclusive<u64> {
        let first = addr.0 / LINE_SIZE as u64;
        // Saturate instead of wrapping for spans ending past `u64::MAX`:
        // lines that high can never be resident, so clamping is lossless.
        let last = addr.0.saturating_add(len.max(1) as u64 - 1) / LINE_SIZE as u64;
        first..=last
    }

    /// Write back (but keep cached) any dirty lines covering `[addr, addr+len)`.
    /// Returns the simulated cost.
    ///
    /// The fabric write happens with no bank lock held; `dirty` is only
    /// cleared afterwards if no writer touched the line in the interim
    /// (checked via the slot's sequence counter), so a racing write can
    /// never be silently marked clean.
    pub fn writeback(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        len: usize,
    ) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut cost = 0;
        let mut first = true;
        for line_id in Self::line_range(addr, len) {
            let b = self.bank_of(line_id);
            let shard = &self.shards[b];
            let stats = &self.cells.banks[b];
            let mut pending: Option<(u32, u64, [u8; LINE_SIZE])> = None;
            {
                let guard = shard.lock();
                if let Some(&i) = guard.map.get(&line_id) {
                    let m = &guard.meta[i as usize];
                    if !m.filling && m.dirty {
                        let cell = shard.slab.get(i).expect("ready slot has a cell");
                        pending = Some((i, cell.seq.current(), cell.load_data()));
                        // Burst model: full latency for the first line of
                        // the range, bandwidth-limited for the rest.
                        cost += if first {
                            lat.writeback_line_ns
                        } else {
                            lat.transfer_ns(LINE_SIZE).max(1)
                        };
                        first = false;
                    }
                }
            }
            let Some((i, seq0, data)) = pending else {
                continue;
            };
            if fabric_write(global, line_id, &data).is_ok() {
                stats.writebacks.fetch_add(1, Ordering::Relaxed);
                let mut guard = shard.lock();
                if guard.map.get(&line_id) == Some(&i)
                    && !guard.meta[i as usize].filling
                    && shard.slab.get(i).is_some_and(|c| c.seq.current() == seq0)
                {
                    guard.meta[i as usize].dirty = false;
                }
            }
        }
        cost
    }

    /// Drop cached lines covering `[addr, addr+len)`. Dirty data that was
    /// not written back first is **discarded**, as with a hardware
    /// invalidate instruction. Returns the simulated cost.
    ///
    /// An in-flight fill of a covered line is *not* chased: it publishes
    /// after this invalidate returns, which is a legal outcome of racing
    /// an invalidate against a concurrent fetch of the same line.
    pub fn invalidate(&self, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut cost = 0;
        let mut first = true;
        for line_id in Self::line_range(addr, len) {
            let b = self.bank_of(line_id);
            let shard = &self.shards[b];
            let mut guard = shard.lock();
            let Some(&i) = guard.map.get(&line_id) else {
                continue;
            };
            if guard.meta[i as usize].filling {
                continue;
            }
            guard.remove_ready(i);
            let cell = shard.slab.get(i).expect("ready slot has a cell");
            cell.seq.write_begin();
            cell.line_id.store(NO_LINE, Ordering::Relaxed);
            cell.seq.write_end();
            shard.index.retract(line_id, i);
            self.cells.banks[b]
                .invalidations
                .fetch_add(1, Ordering::Relaxed);
            // Invalidation is local bookkeeping: one instruction's
            // latency up front, then a small per-line tail cost.
            cost += if first {
                lat.invalidate_line_ns
            } else {
                lat.invalidate_extra_line_ns
            };
            first = false;
        }
        cost
    }

    /// Write back then invalidate `[addr, addr+len)` (clean+invalidate).
    pub fn flush(&self, global: &GlobalMemory, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        self.writeback(global, lat, addr, len) + self.invalidate(lat, addr, len)
    }

    /// Write back every dirty line and drop the whole cache. Lines whose
    /// fills are still in flight on other threads are left to publish.
    pub fn flush_all(&self, global: &GlobalMemory, lat: &LatencyModel) -> u64 {
        let mut cost = 0;
        for (b, shard) in self.shards.iter().enumerate() {
            let stats = &self.cells.banks[b];
            let mut victims: Vec<Victim> = Vec::new();
            let mut guard = shard.lock();
            while let Some((i, line_id, dirty)) = guard.pop_lru() {
                let cell = shard.slab.get(i).expect("resident slot has a cell");
                if dirty {
                    victims.push((line_id, cell.load_data()));
                    cost += lat.writeback_line_ns;
                }
                cell.seq.write_begin();
                cell.line_id.store(NO_LINE, Ordering::Relaxed);
                cell.seq.write_end();
                shard.index.retract(line_id, i);
                stats.invalidations.fetch_add(1, Ordering::Relaxed);
                cost += lat.invalidate_line_ns;
            }
            drop(guard);
            flush_victims(global, stats, &victims);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GlobalMemory, NodeCache, NodeCache, LatencyModel) {
        let g = GlobalMemory::new(4096);
        let lat = LatencyModel::hccs();
        (
            g,
            NodeCache::new(CacheConfig::default()),
            NodeCache::new(CacheConfig::default()),
            lat,
        )
    }

    #[test]
    fn cached_write_invisible_until_writeback() {
        let (g, c0, c1, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        c0.write(&g, &lat, a, &[1; 8]).unwrap();
        // Node 1 reads directly: still zero.
        let mut buf = [9u8; 8];
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "write must be invisible before writeback");
        c0.writeback(&g, &lat, a, 8);
        // Node 1 has the line cached and stale; invalidate then read.
        c1.invalidate(&lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
    }

    #[test]
    fn stale_reads_until_invalidate() {
        let (g, c0, c1, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        let mut buf = [0u8; 8];
        c1.read(&g, &lat, a, &mut buf).unwrap(); // c1 caches the zero line
        c0.write(&g, &lat, a, &[7; 8]).unwrap();
        c0.flush(&g, &lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "stale cached value served before invalidate");
        c1.invalidate(&lat, a, 8);
        c1.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn own_writes_read_back() {
        let (g, c0, _, lat) = setup();
        let a = g.alloc(128, 64).unwrap();
        let data: Vec<u8> = (0..100).collect();
        c0.write(&g, &lat, a, &data).unwrap();
        let mut out = vec![0u8; 100];
        c0.read(&g, &lat, a, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn invalidate_discards_dirty_data() {
        let (g, c0, _, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        c0.write(&g, &lat, a, &[5; 8]).unwrap();
        c0.invalidate(&lat, a, 8);
        let mut buf = [0u8; 8];
        c0.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "dirty data dropped by invalidate");
    }

    #[test]
    fn costs_distinguish_hit_and_miss() {
        let (g, c0, _, lat) = setup();
        let a = g.alloc(8, 8).unwrap();
        let mut buf = [0u8; 8];
        let miss = c0.read(&g, &lat, a, &mut buf).unwrap();
        let hit = c0.read(&g, &lat, a, &mut buf).unwrap();
        assert_eq!(miss, lat.global_read_ns);
        assert_eq!(hit, lat.cache_hit_ns);
        assert_eq!(c0.stats().misses, 1);
        assert_eq!(c0.stats().hits, 1);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_victims() {
        let g = GlobalMemory::new(LINE_SIZE * 16);
        let lat = LatencyModel::hccs();
        let c = NodeCache::new(CacheConfig {
            max_lines: 2,
            banks: 1,
        });
        // Dirty three distinct lines; first should be evicted + written back.
        for i in 0..3u64 {
            c.write(
                &g,
                &lat,
                GAddr(i * LINE_SIZE as u64),
                &[i as u8 + 1; LINE_SIZE],
            )
            .unwrap();
        }
        assert_eq!(c.resident_lines(), 2);
        assert!(c.stats().evictions >= 1);
        let mut buf = [0u8; 1];
        g.read_bytes(GAddr(0), &mut buf).unwrap();
        assert_eq!(buf[0], 1, "evicted dirty line landed in global memory");
    }

    #[test]
    fn flush_all_empties_cache() {
        let (g, c0, _, lat) = setup();
        c0.write(&g, &lat, GAddr(0), &[1; 256]).unwrap();
        assert!(c0.resident_lines() > 0);
        c0.flush_all(&g, &lat);
        assert_eq!(c0.resident_lines(), 0);
        let mut buf = [0u8; 256];
        g.read_bytes(GAddr(0), &mut buf).unwrap();
        assert_eq!(buf, [1; 256]);
    }

    #[test]
    fn full_line_write_skips_fetch() {
        let (g, c0, _, lat) = setup();
        let before = c0.stats().misses;
        c0.write(&g, &lat, GAddr(0), &[2; LINE_SIZE]).unwrap();
        assert_eq!(
            c0.stats().misses,
            before,
            "aligned full-line write allocates without fill"
        );
        assert_eq!(c0.stats().allocs, 1, "write-allocate counted as alloc");
    }

    #[test]
    fn stats_identity_hits_misses_allocs() {
        // hits + misses + allocs must equal total line accesses across a
        // mixed workload: partial reads, partial writes, full-line writes.
        let (g, c, _, lat) = setup();
        let mut accesses = 0u64;
        let count_lines = |addr: u64, len: usize| {
            (addr + len as u64 - 1) / LINE_SIZE as u64 - addr / LINE_SIZE as u64 + 1
        };
        for (addr, len, write) in [
            (0u64, 8usize, false),
            (0, LINE_SIZE, true),
            (64, 200, true),
            (32, 96, false),
            (128, LINE_SIZE, true),
            (0, 256, false),
        ] {
            if write {
                c.write(&g, &lat, GAddr(addr), &vec![1u8; len]).unwrap();
            } else {
                c.read(&g, &lat, GAddr(addr), &mut vec![0u8; len]).unwrap();
            }
            accesses += count_lines(addr, len);
        }
        let s = c.stats();
        assert_eq!(
            s.hits + s.misses + s.allocs,
            accesses,
            "line-access accounting identity"
        );
    }

    #[test]
    fn lines_distribute_across_banks() {
        let (g, c, _, lat) = setup();
        // Lines 0..16 with the default 16 banks: one line per bank.
        let mut buf = [0u8; LINE_SIZE];
        for i in 0..16u64 {
            c.read(&g, &lat, GAddr(i * LINE_SIZE as u64), &mut buf)
                .unwrap();
        }
        assert_eq!(c.banks(), 16);
        assert_eq!(c.resident_lines(), 16);
        for (b, shard) in c.shards.iter().enumerate() {
            assert_eq!(
                shard.lock().map.len(),
                1,
                "line {b} should land alone in bank {b}"
            );
        }
    }

    #[test]
    fn eviction_is_exact_lru_deterministically() {
        // With one bank of capacity 3, the victim is always the exact LRU
        // line — the intrusive list tail — on every run.
        let run = || {
            let g = GlobalMemory::new(LINE_SIZE * 64);
            let lat = LatencyModel::hccs();
            let c = NodeCache::new(CacheConfig {
                max_lines: 3,
                banks: 1,
            });
            let mut buf = [0u8; LINE_SIZE];
            for i in [0u64, 1, 2] {
                c.read(&g, &lat, GAddr(i * LINE_SIZE as u64), &mut buf)
                    .unwrap();
            }
            // Touch 0 so 1 becomes the LRU, then insert 3: must evict 1.
            c.read(&g, &lat, GAddr(0), &mut buf).unwrap();
            c.read(&g, &lat, GAddr(3 * LINE_SIZE as u64), &mut buf)
                .unwrap();
            let mut resident: Vec<u64> = {
                let bank = c.shards[0].lock();
                bank.map.keys().copied().collect()
            };
            resident.sort_unstable();
            (resident, c.stats().evictions)
        };
        let (resident, evictions) = run();
        assert_eq!(resident, vec![0, 2, 3], "LRU line 1 evicted");
        assert_eq!(evictions, 1);
        for _ in 0..8 {
            assert_eq!(run(), (resident.clone(), evictions), "exact LRU replays");
        }
    }

    #[test]
    fn slab_slots_are_reused_after_invalidate() {
        let g = GlobalMemory::new(LINE_SIZE * 64);
        let lat = LatencyModel::hccs();
        let c = NodeCache::new(CacheConfig {
            max_lines: 8,
            banks: 1,
        });
        let mut buf = [0u8; 8];
        for round in 0..10 {
            for i in 0..4u64 {
                c.read(&g, &lat, GAddr(i * LINE_SIZE as u64), &mut buf)
                    .unwrap();
            }
            c.invalidate(&lat, GAddr(0), LINE_SIZE * 4);
            let bank = c.shards[0].lock();
            assert!(
                bank.meta.len() <= 4,
                "round {round}: slab grew past the working set ({} slots)",
                bank.meta.len()
            );
        }
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn near_max_addresses_error_instead_of_wrapping() {
        let (g, c, _, lat) = setup();
        let mut buf = [0u8; 16];
        let top = GAddr(u64::MAX - 7);
        assert!(matches!(
            c.read(&g, &lat, top, &mut buf),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.write(&g, &lat, top, &buf),
            Err(SimError::OutOfBounds { .. })
        ));
        // Maintenance ops on absurd ranges are no-ops, not panics/wraps.
        assert_eq!(c.writeback(&g, &lat, top, 16), 0);
        assert_eq!(c.invalidate(&lat, top, 16), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn partial_span_error_preserves_stats_identity() {
        // The documented partial-effects contract: a mid-span failure
        // keeps the effects of earlier lines and leaves no trace of the
        // failing one, so `hits + misses + allocs` still equals the
        // number of successfully accessed line segments.
        let g = GlobalMemory::new(LINE_SIZE * 8);
        let lat = LatencyModel::hccs();
        let c = NodeCache::new(CacheConfig::default());
        g.poison(GAddr(LINE_SIZE as u64), 8); // middle line of a 3-line span

        let mut buf = [0xAAu8; 3 * LINE_SIZE];
        assert!(matches!(
            c.read(&g, &lat, GAddr(0), &mut buf),
            Err(SimError::PoisonedMemory { .. })
        ));
        let s = c.stats();
        assert_eq!(
            (s.hits, s.misses, s.allocs),
            (0, 1, 0),
            "line 0 filled; the poisoned line 1 left no counters"
        );
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(&buf[..LINE_SIZE], &[0u8; LINE_SIZE][..], "prefix was read");
        assert_eq!(
            &buf[LINE_SIZE..],
            &[0xAAu8; 2 * LINE_SIZE][..],
            "failed tail untouched"
        );

        // Writes follow the same contract: the line-0 segment hits the
        // now-resident line (and dirties it); the poisoned line-1 fill
        // fails without counters or residency.
        assert!(c.write(&g, &lat, GAddr(32), &[1u8; LINE_SIZE]).is_err());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.allocs), (1, 1, 0));
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(
            s.hits + s.misses + s.allocs,
            2,
            "identity holds across both error paths"
        );
    }

    #[test]
    fn coalesced_fills_counter_defaults_to_zero() {
        // Single-threaded workloads never wait on a fill, so the
        // coalesced counter must stay zero through a mixed workload.
        let (g, c, _, lat) = setup();
        let mut buf = [0u8; 256];
        c.read(&g, &lat, GAddr(0), &mut buf).unwrap();
        c.write(&g, &lat, GAddr(32), &[3u8; 128]).unwrap();
        c.read(&g, &lat, GAddr(0), &mut buf).unwrap();
        assert!(c.stats().hits > 0);
        assert_eq!(c.stats().coalesced_fills, 0);
    }

    #[test]
    fn seqlock_fast_path_serves_hits_without_bank_lock() {
        // Holding a bank's lock from another context must not block a
        // read hit on a published line of that bank.
        let g = GlobalMemory::new(LINE_SIZE * 4);
        let lat = LatencyModel::hccs();
        let c = NodeCache::new(CacheConfig {
            max_lines: 8,
            banks: 1,
        });
        let mut buf = [0u8; 8];
        c.read(&g, &lat, GAddr(0), &mut buf).unwrap(); // publish line 0
        let shard = &c.shards[0];
        let mut out = [0xFFu8; 8];
        {
            let _guard = shard.state.lock(); // raw inner lock: simulate contention
            assert!(
                c.try_seqlock_hit(shard, 0, 0, &mut out),
                "fast path must succeed while the bank mutex is held elsewhere"
            );
        }
        assert_eq!(out, [0u8; 8]);
    }
}
