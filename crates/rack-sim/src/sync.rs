//! Non-poisoning `std::sync` wrappers.
//!
//! The workspace builds hermetically — no network, no external crates —
//! so the `parking_lot` primitives the codebase originally used are
//! replaced by these thin wrappers over `std::sync`. They keep
//! `parking_lot`'s ergonomics: `lock()`/`read()`/`write()` return guards
//! directly instead of `Result`s, and a lock held by a panicking thread
//! is recovered rather than poisoning every later access. All simulator
//! state guarded by these locks is valid under inner-mutation at any
//! point (counters, queues, maps), so clearing poison is sound.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{self, LockResult, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual-exclusion lock with `parking_lot`-style API over
/// [`std::sync::Mutex`]: `lock()` returns the guard directly and never
/// observes poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with `parking_lot`-style API over
/// [`std::sync::RwLock`]: `read()`/`write()` return guards directly and
/// never observe poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquire exclusive write access, blocking until the lock is free.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// A condition variable with `parking_lot`-style ergonomics over
/// [`std::sync::Condvar`]: `wait` hands the guard back directly and never
/// observes poisoning. Pairs with [`Mutex`], whose guard is the plain
/// [`std::sync::MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release `guard` and block until notified, then reacquire.
    /// Spurious wakeups are possible; callers must loop on their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        unpoison(self.inner.wait(guard))
    }

    /// Wake every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

/// A seqlock sequence counter: the optimistic-concurrency half of a
/// seqlock, used by the node cache's lock-free read-hit path.
///
/// Writers (who are serialized externally, e.g. by a bank mutex) bracket
/// every mutation of the protected data with
/// [`SeqCount::write_begin`]/[`SeqCount::write_end`], leaving the counter
/// odd while a write is in flight. Readers sample the counter with
/// [`SeqCount::read_begin`], copy the data out of atomics (so torn
/// *words* are impossible and the protocol is safe Rust), and accept the
/// copy only if [`SeqCount::read_validate`] confirms no writer ran
/// concurrently. A failed validation means "retry or fall back to the
/// lock", never corruption.
#[derive(Debug, Default)]
pub struct SeqCount {
    seq: AtomicU64,
}

impl SeqCount {
    /// A new counter in the stable (even) state.
    pub const fn new() -> Self {
        SeqCount {
            seq: AtomicU64::new(0),
        }
    }

    /// Sample the counter before an optimistic read. Returns `None` when a
    /// write is in flight (odd count) — callers should retry or fall back.
    #[inline]
    pub fn read_begin(&self) -> Option<u64> {
        let s = self.seq.load(Ordering::Acquire);
        if s & 1 == 1 {
            None
        } else {
            Some(s)
        }
    }

    /// Validate an optimistic read begun at `begin`. Must be called after
    /// every protected load; `true` means no writer ran in between.
    #[inline]
    pub fn read_validate(&self, begin: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == begin
    }

    /// Enter the write-in-flight (odd) state. The caller must hold the
    /// external writer lock; nested `write_begin` is a logic error.
    #[inline]
    pub fn write_begin(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "nested SeqCount::write_begin");
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
    }

    /// Leave the write-in-flight state, publishing the mutation.
    #[inline]
    pub fn write_end(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 1, "SeqCount::write_end without write_begin");
        self.seq.store(s.wrapping_add(1), Ordering::Release);
    }

    /// The current raw count (even = stable). Lets writers detect whether
    /// protected data changed between two locked inspections.
    #[inline]
    pub fn current(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_lock_cycle() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn seqcount_read_write_protocol() {
        let s = SeqCount::new();
        let r = s.read_begin().expect("stable counter readable");
        assert!(s.read_validate(r), "no writer ran");
        s.write_begin();
        assert!(s.read_begin().is_none(), "odd count rejects readers");
        assert!(!s.read_validate(r), "in-flight write invalidates");
        s.write_end();
        assert!(!s.read_validate(r), "completed write invalidates");
        let r2 = s.read_begin().unwrap();
        assert_eq!(r2, r + 2);
        assert!(s.read_validate(r2));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(41));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A std Mutex would now return Err(Poisoned); the shim recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
