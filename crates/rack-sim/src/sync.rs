//! Non-poisoning `std::sync` wrappers.
//!
//! The workspace builds hermetically — no network, no external crates —
//! so the `parking_lot` primitives the codebase originally used are
//! replaced by these thin wrappers over `std::sync`. They keep
//! `parking_lot`'s ergonomics: `lock()`/`read()`/`write()` return guards
//! directly instead of `Result`s, and a lock held by a panicking thread
//! is recovered rather than poisoning every later access. All simulator
//! state guarded by these locks is valid under inner-mutation at any
//! point (counters, queues, maps), so clearing poison is sound.

use std::sync::{self, LockResult, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual-exclusion lock with `parking_lot`-style API over
/// [`std::sync::Mutex`]: `lock()` returns the guard directly and never
/// observes poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with `parking_lot`-style API over
/// [`std::sync::RwLock`]: `read()`/`write()` return guards directly and
/// never observe poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquire exclusive write access, blocking until the lock is free.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_lock_cycle() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(41));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A std Mutex would now return Err(Poisoned); the shim recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
