//! Seeded fault-storm campaigns: reproducible timelines of injected
//! faults interleaved with workload steps.
//!
//! The paper argues (§2.2, §4) that fault tolerance must be exercised as
//! a *system-wide, continuous* property, not a hand-placed unit test. A
//! [`StormCampaign`] turns one `u64` seed into a deterministic schedule
//! of node crashes/restarts, link failures/restores, memory poisoning,
//! and delayed writebacks, interleaved with workload steps driven by a
//! caller-supplied reaction closure. Every decision — which fault, which
//! victim, how much simulated time passes between steps — draws from a
//! single [`SplitMix64`] stream, so the same seed replays the exact same
//! campaign and emits a **byte-identical event log**.
//!
//! The campaign engine only schedules and injects; recovery behaviour
//! (retry, re-election, journal replay) lives in the layers above, which
//! observe each [`StormOp`] through the reaction closure and report an
//! outcome string that becomes part of the log. A reaction that is itself
//! deterministic (no host time, no host randomness) keeps the whole log
//! reproducible — the property `tests/properties.rs` checks.

use crate::fault::FaultKind;
use crate::memory::GAddr;
use crate::rack::Rack;
use crate::rng::SplitMix64;
use crate::topology::NodeId;
use std::fmt;

/// Shape of one seeded campaign: how many steps, the relative frequency
/// of each operation class, and the safety limits the scheduler respects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormConfig {
    /// Number of scheduled steps (heal actions at the end are extra).
    pub steps: u32,
    /// Relative weight of plain workload steps.
    pub workload_weight: u32,
    /// Relative weight of node crashes.
    pub crash_weight: u32,
    /// Relative weight of node restarts.
    pub restart_weight: u32,
    /// Relative weight of directed link failures.
    pub link_fail_weight: u32,
    /// Relative weight of directed link restores.
    pub link_restore_weight: u32,
    /// Relative weight of single-word memory poisoning.
    pub poison_weight: u32,
    /// Relative weight of delayed-writeback steps (the reaction layer
    /// writes without flushing, committing only on a later step).
    pub delayed_writeback_weight: u32,
    /// The scheduler never crashes below this many live nodes.
    pub min_live_nodes: usize,
    /// Global-memory region poison picks target (base, len in bytes).
    /// `None` demotes poison steps to workload steps.
    pub poison_region: Option<(GAddr, usize)>,
    /// Simulated-time gap between steps, drawn uniformly from this
    /// inclusive range.
    pub gap_ns: (u64, u64),
    /// Restart every down node and restore every down link after the
    /// last step, so liveness invariants can be checked post-campaign.
    pub heal_at_end: bool,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            steps: 100,
            workload_weight: 10,
            crash_weight: 2,
            restart_weight: 3,
            link_fail_weight: 2,
            link_restore_weight: 3,
            poison_weight: 1,
            delayed_writeback_weight: 2,
            min_live_nodes: 1,
            poison_region: None,
            gap_ns: (500, 5_000),
            heal_at_end: true,
        }
    }
}

impl StormConfig {
    fn total_weight(&self) -> u64 {
        u64::from(self.workload_weight)
            + u64::from(self.crash_weight)
            + u64::from(self.restart_weight)
            + u64::from(self.link_fail_weight)
            + u64::from(self.link_restore_weight)
            + u64::from(self.poison_weight)
            + u64::from(self.delayed_writeback_weight)
    }
}

/// One scheduled operation of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormOp {
    /// A plain workload step: the reaction closure does subsystem work.
    Workload,
    /// The reaction layer should write *without* flushing, committing on
    /// a later step — the crash-during-writeback window.
    DelayedWriteback { node: NodeId },
    /// `crash_node(node)` was injected before the reaction ran.
    CrashNode { node: NodeId },
    /// `restart_node(node)` was injected before the reaction ran.
    RestartNode { node: NodeId },
    /// `fail_link(from, to)` was injected before the reaction ran.
    FailLink { from: NodeId, to: NodeId },
    /// `restore_link(from, to)` was injected before the reaction ran.
    RestoreLink { from: NodeId, to: NodeId },
    /// One word at `addr` was poisoned before the reaction ran.
    PoisonWord { addr: GAddr },
}

impl fmt::Display for StormOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StormOp::Workload => write!(f, "workload"),
            StormOp::DelayedWriteback { node } => write!(f, "delayed-writeback n{}", node.0),
            StormOp::CrashNode { node } => write!(f, "crash n{}", node.0),
            StormOp::RestartNode { node } => write!(f, "restart n{}", node.0),
            StormOp::FailLink { from, to } => write!(f, "link-fail n{}->n{}", from.0, to.0),
            StormOp::RestoreLink { from, to } => {
                write!(f, "link-restore n{}->n{}", from.0, to.0)
            }
            StormOp::PoisonWord { addr } => write!(f, "poison-word {addr}"),
        }
    }
}

/// One executed campaign step: what happened, when, and how the reaction
/// layer fared (its returned outcome string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormEvent {
    /// Step index (heal steps continue the numbering past `steps`).
    pub step: u32,
    /// Campaign-virtual simulated time of the step.
    pub at_ns: u64,
    /// The scheduled operation.
    pub op: StormOp,
    /// Outcome reported by the reaction closure.
    pub outcome: String,
}

impl fmt::Display for StormEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[step {:04} @ {:>10} ns] {} :: {}",
            self.step, self.at_ns, self.op, self.outcome
        )
    }
}

/// Per-class operation counts of one campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StormCounts {
    pub workload: u64,
    pub delayed_writebacks: u64,
    pub crashes: u64,
    pub restarts: u64,
    pub link_failures: u64,
    pub link_restores: u64,
    pub poisons: u64,
}

/// The deterministic result of one campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormReport {
    /// The seed the campaign ran from (print it to reproduce a failure).
    pub seed: u64,
    /// Every executed step, in order.
    pub events: Vec<StormEvent>,
    /// Per-class operation counts.
    pub counts: StormCounts,
    /// Campaign-virtual time at the last step.
    pub final_ns: u64,
}

impl StormReport {
    /// The event log, one stable line per step.
    pub fn log_lines(&self) -> Vec<String> {
        self.events.iter().map(|e| e.to_string()).collect()
    }

    /// The whole event log as one newline-joined string, prefixed with
    /// the seed — the byte-identical replay artifact.
    pub fn log_text(&self) -> String {
        let mut out = format!("seed {:#018x}\n", self.seed);
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// A seeded fault-storm campaign over one [`Rack`].
///
/// ```
/// use rack_sim::storm::{StormCampaign, StormConfig};
/// use rack_sim::{Rack, RackConfig};
///
/// let rack = Rack::new(RackConfig::small_test());
/// let campaign = StormCampaign::new(42, StormConfig { steps: 20, ..Default::default() });
/// let report = campaign.run(&rack, |_step, _op, _rack| "ok".to_string());
/// assert_eq!(report.events.len() as u64,
///            report.counts.workload + report.counts.delayed_writebacks
///            + report.counts.crashes + report.counts.restarts
///            + report.counts.link_failures + report.counts.link_restores
///            + report.counts.poisons);
/// ```
#[derive(Debug, Clone)]
pub struct StormCampaign {
    seed: u64,
    config: StormConfig,
}

impl StormCampaign {
    /// A campaign that will replay identically for a given `seed`.
    pub fn new(seed: u64, config: StormConfig) -> Self {
        StormCampaign { seed, config }
    }

    /// The campaign's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drive the campaign against `rack`. Faults are injected through the
    /// rack's [`crate::FaultInjector`] *before* `react` observes the
    /// [`StormOp`]; `react`'s returned string becomes the step outcome.
    ///
    /// The campaign keeps its own virtual timeline (the `at_ns` stamps)
    /// and its own bookkeeping of which nodes/links it took down, so its
    /// schedule never depends on rack state mutated by the reaction
    /// layer — determinism holds as long as `react` itself is
    /// deterministic.
    pub fn run(
        &self,
        rack: &Rack,
        mut react: impl FnMut(u32, &StormOp, &Rack) -> String,
    ) -> StormReport {
        let cfg = &self.config;
        let n = rack.node_count();
        let mut rng = SplitMix64::new(self.seed);
        let mut t = 0u64;
        let mut down_nodes: Vec<NodeId> = Vec::new();
        let mut down_links: Vec<(NodeId, NodeId)> = Vec::new();
        let mut events = Vec::with_capacity(cfg.steps as usize);
        let mut counts = StormCounts::default();

        let mut step = 0u32;
        let emit = |rack: &Rack,
                    react: &mut dyn FnMut(u32, &StormOp, &Rack) -> String,
                    step: u32,
                    at_ns: u64,
                    op: StormOp,
                    counts: &mut StormCounts,
                    events: &mut Vec<StormEvent>| {
            match op {
                StormOp::Workload => counts.workload += 1,
                StormOp::DelayedWriteback { .. } => counts.delayed_writebacks += 1,
                StormOp::CrashNode { node } => {
                    rack.faults().crash_node(node, at_ns);
                    counts.crashes += 1;
                }
                StormOp::RestartNode { node } => {
                    rack.faults().restart_node(node, at_ns);
                    counts.restarts += 1;
                }
                StormOp::FailLink { from, to } => {
                    rack.faults().fail_link(from, to, at_ns);
                    counts.link_failures += 1;
                }
                StormOp::RestoreLink { from, to } => {
                    rack.faults().restore_link(from, to, at_ns);
                    counts.link_restores += 1;
                }
                StormOp::PoisonWord { addr } => {
                    rack.faults().poison_memory(rack.global(), addr, 8, at_ns);
                    counts.poisons += 1;
                }
            }
            let outcome = react(step, &op, rack);
            events.push(StormEvent {
                step,
                at_ns,
                op,
                outcome,
            });
        };

        for _ in 0..cfg.steps {
            let (lo, hi) = cfg.gap_ns;
            t += lo + rng.next_below(hi.saturating_sub(lo) + 1);
            let op = self.pick_op(&mut rng, n, &mut down_nodes, &mut down_links);
            emit(rack, &mut react, step, t, op, &mut counts, &mut events);
            step += 1;
        }

        if cfg.heal_at_end {
            // Deterministic heal order: nodes ascending, then links.
            down_nodes.sort_unstable_by_key(|n| n.0);
            for node in down_nodes.drain(..) {
                t += cfg.gap_ns.0;
                emit(
                    rack,
                    &mut react,
                    step,
                    t,
                    StormOp::RestartNode { node },
                    &mut counts,
                    &mut events,
                );
                step += 1;
            }
            down_links.sort_unstable_by_key(|(a, b)| (a.0, b.0));
            for (from, to) in down_links.drain(..) {
                t += cfg.gap_ns.0;
                emit(
                    rack,
                    &mut react,
                    step,
                    t,
                    StormOp::RestoreLink { from, to },
                    &mut counts,
                    &mut events,
                );
                step += 1;
            }
        }

        // Surface the campaign in the PR-1 metrics layer so the rack
        // report shows what the storm did.
        let node0 = rack.node(0);
        let reg = node0.stats().registry();
        reg.add("storm", "steps", events.len() as u64);
        reg.add("storm", "crashes", counts.crashes);
        reg.add("storm", "restarts", counts.restarts);
        reg.add("storm", "link_failures", counts.link_failures);
        reg.add("storm", "link_restores", counts.link_restores);
        reg.add("storm", "poisons", counts.poisons);

        StormReport {
            seed: self.seed,
            events,
            counts,
            final_ns: t,
        }
    }

    /// Draw the next operation. Infeasible draws (crash below the live
    /// floor, restart with nothing down, …) demote to a workload step —
    /// still a deterministic function of the RNG stream.
    fn pick_op(
        &self,
        rng: &mut SplitMix64,
        n: usize,
        down_nodes: &mut Vec<NodeId>,
        down_links: &mut Vec<(NodeId, NodeId)>,
    ) -> StormOp {
        let cfg = &self.config;
        let mut r = rng.next_below(cfg.total_weight().max(1));
        let mut in_class = |w: u32| {
            if r < u64::from(w) {
                true
            } else {
                r -= u64::from(w);
                false
            }
        };

        if in_class(cfg.workload_weight) {
            return StormOp::Workload;
        }
        if in_class(cfg.crash_weight) {
            let live: Vec<NodeId> = (0..n)
                .map(NodeId)
                .filter(|id| !down_nodes.contains(id))
                .collect();
            if live.len() > cfg.min_live_nodes {
                let victim = live[rng.gen_index(live.len())];
                down_nodes.push(victim);
                return StormOp::CrashNode { node: victim };
            }
            return StormOp::Workload;
        }
        if in_class(cfg.restart_weight) {
            if !down_nodes.is_empty() {
                let node = down_nodes.swap_remove(rng.gen_index(down_nodes.len()));
                return StormOp::RestartNode { node };
            }
            return StormOp::Workload;
        }
        if in_class(cfg.link_fail_weight) {
            if n >= 2 {
                let from = NodeId(rng.gen_index(n));
                let mut to = NodeId(rng.gen_index(n - 1));
                if to.0 >= from.0 {
                    to.0 += 1;
                }
                if !down_links.contains(&(from, to)) {
                    down_links.push((from, to));
                    return StormOp::FailLink { from, to };
                }
            }
            return StormOp::Workload;
        }
        if in_class(cfg.link_restore_weight) {
            if !down_links.is_empty() {
                let (from, to) = down_links.swap_remove(rng.gen_index(down_links.len()));
                return StormOp::RestoreLink { from, to };
            }
            return StormOp::Workload;
        }
        if in_class(cfg.poison_weight) {
            if let Some((base, len)) = cfg.poison_region {
                let words = (len / 8).max(1);
                let addr = GAddr((base.0 & !7) + rng.gen_index(words) as u64 * 8);
                return StormOp::PoisonWord { addr };
            }
            return StormOp::Workload;
        }
        // Remaining weight: delayed writeback on a live node.
        let live: Vec<NodeId> = (0..n)
            .map(NodeId)
            .filter(|id| !down_nodes.contains(id))
            .collect();
        if live.is_empty() {
            return StormOp::Workload;
        }
        StormOp::DelayedWriteback {
            node: live[rng.gen_index(live.len())],
        }
    }
}

/// Render the campaign's fault-injector view next to the storm's own log
/// (the injector log is the ground truth of what was injected; the storm
/// log adds workload steps and reaction outcomes).
pub fn injector_log_matches(rack: &Rack, report: &StormReport) -> bool {
    let injected: Vec<FaultKind> = rack.faults().events().iter().map(|e| e.kind).collect();
    let expected: Vec<FaultKind> = report
        .events
        .iter()
        .filter_map(|e| match e.op {
            StormOp::CrashNode { node } => Some(FaultKind::NodeCrash { node }),
            StormOp::RestartNode { node } => Some(FaultKind::NodeRestart { node }),
            StormOp::FailLink { from, to } => Some(FaultKind::LinkFailure { from, to }),
            StormOp::RestoreLink { from, to } => Some(FaultKind::LinkRestore { from, to }),
            StormOp::PoisonWord { addr } => Some(FaultKind::MemoryPoison { addr, len: 8 }),
            _ => None,
        })
        .collect();
    // The injector may hold extra events injected by the reaction layer;
    // require the storm's sequence to appear as a subsequence.
    let mut it = injected.iter();
    expected.iter().all(|want| it.any(|got| got == want))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rack::RackConfig;

    fn config() -> StormConfig {
        StormConfig {
            steps: 200,
            poison_region: Some((GAddr(0), 4096)),
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_yields_byte_identical_log() {
        let run = |seed: u64| {
            let rack = Rack::new(RackConfig::small_test());
            StormCampaign::new(seed, config())
                .run(&rack, |step, op, _| format!("saw {op} at {step}"))
                .log_text()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn campaign_respects_min_live_floor() {
        let rack = Rack::new(RackConfig::small_test());
        let mut min_live = usize::MAX;
        StormCampaign::new(3, config()).run(&rack, |_, _, rack| {
            let live = (0..rack.node_count())
                .filter(|&i| rack.liveness().is_alive(NodeId(i)))
                .count();
            min_live = min_live.min(live);
            String::new()
        });
        assert!(min_live >= 1, "never crashed below the floor");
    }

    #[test]
    fn heal_at_end_restores_everything() {
        let rack = Rack::new(RackConfig::small_test());
        let report = StormCampaign::new(11, config()).run(&rack, |_, _, _| String::new());
        for i in 0..rack.node_count() {
            assert!(rack.liveness().is_alive(NodeId(i)), "node {i} healed");
        }
        for a in 0..rack.node_count() {
            for b in 0..rack.node_count() {
                assert!(!rack.faults().link_down(NodeId(a), NodeId(b)));
            }
        }
        assert!(report.counts.crashes > 0, "storm actually crashed nodes");
        assert!(injector_log_matches(&rack, &report));
    }

    #[test]
    fn injected_faults_land_in_injector_log() {
        let rack = Rack::new(RackConfig::small_test());
        let report = StormCampaign::new(5, config()).run(&rack, |_, _, _| String::new());
        let injected = rack.faults().events().len() as u64;
        let storm_faults = report.counts.crashes
            + report.counts.restarts
            + report.counts.link_failures
            + report.counts.link_restores
            + report.counts.poisons;
        assert_eq!(injected, storm_faults);
    }

    #[test]
    fn timeline_is_monotonic_and_counts_match() {
        let rack = Rack::new(RackConfig::small_test());
        let report = StormCampaign::new(13, config()).run(&rack, |_, _, _| String::new());
        let mut last = 0;
        for e in &report.events {
            assert!(e.at_ns > last, "strictly increasing virtual time");
            last = e.at_ns;
        }
        let c = report.counts;
        assert_eq!(
            report.events.len() as u64,
            c.workload
                + c.delayed_writebacks
                + c.crashes
                + c.restarts
                + c.link_failures
                + c.link_restores
                + c.poisons
        );
    }
}
