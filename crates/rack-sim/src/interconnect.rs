//! Inter-node messaging over the memory interconnect.
//!
//! Besides load/store access to global memory, nodes need a doorbell-style
//! notification path (the paper's §5 calls the missing hardware "rack-wide
//! interrupt"; current fabrics approximate it with polled mailboxes). This
//! module provides timestamped, ported message queues between nodes:
//! delegation-based synchronization, TLB shootdown, and the RPC layer all
//! ride on it.
//!
//! Virtual-time semantics: a message departs at the sender's clock, takes
//! `hops * hop_ns + bytes * transfer` to arrive, and the receiver's clock
//! advances to at least the arrival time when it consumes the message.

use crate::error::SimError;
use crate::fault::{FaultInjector, NodeLiveness};
use crate::latency::LatencyModel;
use crate::sync::Mutex;
use crate::topology::{NodeId, RackTopology};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message in flight or delivered between nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Destination port (application-level demultiplexing).
    pub port: u16,
    /// Simulated departure time (sender clock).
    pub depart_ns: u64,
    /// Simulated arrival time (depart + fabric latency).
    pub arrive_ns: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// One node's inbox: the ported FIFO queues plus a lock-free count of
/// queued messages across all ports. The count lets the common poll loop
/// (`pending` then `try_recv`, spinning while empty) return without
/// taking the queue mutex at all — previously every empty poll paid a
/// lock + hash lookup, and peek-then-pop paid the lock twice.
#[derive(Debug, Default)]
struct NodeInbox {
    ports: Mutex<HashMap<u16, VecDeque<Message>>>,
    /// Messages queued across every port. Incremented/decremented while
    /// the `ports` lock is held; read without it by the empty fast path.
    queued: AtomicU64,
}

/// The rack's message fabric.
#[derive(Debug)]
pub struct Interconnect {
    topology: RackTopology,
    latency: LatencyModel,
    liveness: Arc<NodeLiveness>,
    faults: Arc<FaultInjector>,
    /// Per-node, per-port FIFO queues.
    queues: Vec<NodeInbox>,
}

impl Interconnect {
    pub(crate) fn new(
        topology: RackTopology,
        latency: LatencyModel,
        liveness: Arc<NodeLiveness>,
        faults: Arc<FaultInjector>,
    ) -> Self {
        let queues = (0..topology.nodes())
            .map(|_| NodeInbox::default())
            .collect();
        Interconnect {
            topology,
            latency,
            liveness,
            faults,
            queues,
        }
    }

    /// Send `payload` from `from` to `to`'s `port`, departing at `now_ns`.
    /// Returns the simulated arrival time.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is down or the link is severed.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        payload: Vec<u8>,
        now_ns: u64,
    ) -> Result<u64, SimError> {
        if !self.liveness.is_alive(from) {
            return Err(SimError::NodeDown { node: from });
        }
        if !self.liveness.is_alive(to) {
            return Err(SimError::NodeDown { node: to });
        }
        if self.faults.link_down(from, to) {
            return Err(SimError::LinkDown { from, to });
        }
        let inbox = self
            .queues
            .get(to.0)
            .ok_or(SimError::NodeDown { node: to })?;
        let hops = self.topology.hops(from, to);
        let bw = self.topology.link_bw_divisor(from, to);
        let arrive_ns = now_ns + self.latency.message_ns_over(hops, payload.len(), bw);
        let msg = Message {
            from,
            to,
            port,
            depart_ns: now_ns,
            arrive_ns,
            payload,
        };
        let mut ports = inbox.ports.lock();
        ports.entry(port).or_default().push_back(msg);
        // Release pairs with the fast path's Acquire: a receiver that
        // observed this send's effects sees a non-zero count.
        inbox.queued.fetch_add(1, Ordering::Release);
        drop(ports);
        Ok(arrive_ns)
    }

    /// Non-blocking receive of the oldest message on `node`'s `port`.
    ///
    /// When the node's inbox is empty — the common case in the RPC and
    /// netstack poll loops — this returns without taking the queue lock
    /// or allocating.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when the port queue is empty;
    /// [`SimError::NodeDown`] when the receiving node has crashed.
    pub fn try_recv(&self, node: NodeId, port: u16) -> Result<Message, SimError> {
        if !self.liveness.is_alive(node) {
            return Err(SimError::NodeDown { node });
        }
        let inbox = self.queues.get(node.0).ok_or(SimError::NodeDown { node })?;
        if inbox.queued.load(Ordering::Acquire) == 0 {
            return Err(SimError::WouldBlock);
        }
        let mut ports = inbox.ports.lock();
        let msg = ports
            .get_mut(&port)
            .and_then(|q| q.pop_front())
            .ok_or(SimError::WouldBlock)?;
        inbox.queued.fetch_sub(1, Ordering::Release);
        Ok(msg)
    }

    /// Number of queued messages on `node`'s `port`. Lock-free when the
    /// node's inbox is empty.
    pub fn pending(&self, node: NodeId, port: u16) -> usize {
        self.queues
            .get(node.0)
            .map(|inbox| {
                if inbox.queued.load(Ordering::Acquire) == 0 {
                    return 0;
                }
                inbox.ports.lock().get(&port).map(|d| d.len()).unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// Drop all queued messages for a node (used when it crashes).
    pub fn purge_node(&self, node: NodeId) {
        if let Some(inbox) = self.queues.get(node.0) {
            let mut ports = inbox.ports.lock();
            ports.clear();
            inbox.queued.store(0, Ordering::Release);
        }
    }

    /// The topology this fabric connects.
    pub fn topology(&self) -> &RackTopology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(nodes: usize) -> (Interconnect, Arc<FaultInjector>) {
        let topo = RackTopology::switched(nodes, 4);
        let liveness = NodeLiveness::new(nodes);
        let faults = Arc::new(FaultInjector::new(7, liveness.clone()));
        (
            Interconnect::new(topo, LatencyModel::hccs(), liveness, faults.clone()),
            faults,
        )
    }

    #[test]
    fn message_arrival_time_includes_fabric_latency() {
        let (ic, _) = fabric(2);
        let lat = LatencyModel::hccs();
        let arrive = ic
            .send(NodeId(0), NodeId(1), 0, vec![0u8; 1000], 100)
            .unwrap();
        assert_eq!(arrive, 100 + lat.message_ns(2, 1000));
        let msg = ic.try_recv(NodeId(1), 0).unwrap();
        assert_eq!(msg.arrive_ns, arrive);
        assert_eq!(msg.payload.len(), 1000);
    }

    #[test]
    fn ports_demultiplex() {
        let (ic, _) = fabric(2);
        ic.send(NodeId(0), NodeId(1), 1, vec![1], 0).unwrap();
        ic.send(NodeId(0), NodeId(1), 2, vec![2], 0).unwrap();
        assert!(matches!(
            ic.try_recv(NodeId(1), 3),
            Err(SimError::WouldBlock)
        ));
        assert_eq!(ic.try_recv(NodeId(1), 2).unwrap().payload, vec![2]);
        assert_eq!(ic.try_recv(NodeId(1), 1).unwrap().payload, vec![1]);
    }

    #[test]
    fn fifo_order_per_port() {
        let (ic, _) = fabric(2);
        for i in 0..5u8 {
            ic.send(NodeId(0), NodeId(1), 0, vec![i], i as u64).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(ic.try_recv(NodeId(1), 0).unwrap().payload, vec![i]);
        }
    }

    #[test]
    fn dead_endpoints_and_links_fail() {
        let (ic, faults) = fabric(3);
        faults.crash_node(NodeId(2), 0);
        assert!(matches!(
            ic.send(NodeId(0), NodeId(2), 0, vec![], 0),
            Err(SimError::NodeDown { .. })
        ));
        assert!(matches!(
            ic.try_recv(NodeId(2), 0),
            Err(SimError::NodeDown { .. })
        ));
        faults.fail_link(NodeId(0), NodeId(1), 0);
        assert!(matches!(
            ic.send(NodeId(0), NodeId(1), 0, vec![], 0),
            Err(SimError::LinkDown { .. })
        ));
        // Reverse direction still up.
        assert!(ic.send(NodeId(1), NodeId(0), 0, vec![], 0).is_ok());
    }

    #[test]
    fn empty_fast_path_keeps_queued_count_consistent() {
        let (ic, _) = fabric(2);
        // Empty inbox: the lock-free fast path answers both calls.
        assert!(matches!(
            ic.try_recv(NodeId(1), 0),
            Err(SimError::WouldBlock)
        ));
        assert_eq!(ic.pending(NodeId(1), 0), 0);
        ic.send(NodeId(0), NodeId(1), 1, vec![1], 0).unwrap();
        ic.send(NodeId(0), NodeId(1), 2, vec![2], 0).unwrap();
        // Wrong port while the inbox is non-empty: slow path, still
        // WouldBlock, and the count must not be decremented by the miss.
        assert!(matches!(
            ic.try_recv(NodeId(1), 9),
            Err(SimError::WouldBlock)
        ));
        assert_eq!(ic.pending(NodeId(1), 1), 1);
        ic.try_recv(NodeId(1), 1).unwrap();
        ic.try_recv(NodeId(1), 2).unwrap();
        // Fully drained: back on the fast path for every port.
        assert_eq!(ic.pending(NodeId(1), 1), 0);
        assert_eq!(ic.pending(NodeId(1), 2), 0);
        assert!(matches!(
            ic.try_recv(NodeId(1), 2),
            Err(SimError::WouldBlock)
        ));
    }

    #[test]
    fn purge_discards_pending() {
        let (ic, _) = fabric(2);
        ic.send(NodeId(0), NodeId(1), 0, vec![9], 0).unwrap();
        assert_eq!(ic.pending(NodeId(1), 0), 1);
        ic.purge_node(NodeId(1));
        assert_eq!(ic.pending(NodeId(1), 0), 0);
    }
}
