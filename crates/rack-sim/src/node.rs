//! Per-node execution context.
//!
//! A [`NodeCtx`] is the handle through which code "running on" a node
//! touches the simulated hardware: cached loads/stores to global memory,
//! fabric atomics, cache maintenance, local memory, and messaging. Every
//! operation charges the node's [`SimClock`] and updates its
//! [`NodeStats`]; operations fail once the node has been crashed by the
//! fault injector.

use crate::cache::{CacheConfig, NodeCache};
use crate::clock::SimClock;
use crate::error::SimError;
use crate::fault::NodeLiveness;
use crate::interconnect::{Interconnect, Message};
use crate::latency::LatencyModel;
use crate::memory::{GAddr, GlobalMemory, LAddr, LocalMemory};
use crate::metrics::{AddrClass, CostClass, OpKind};
use crate::stats::NodeStats;
use crate::topology::NodeId;
use std::sync::Arc;

/// The execution context of one rack node.
///
/// Cheap to share: wrap it in [`Arc`] (as [`crate::Rack`] does) and hand
/// clones of the `Arc` to the components running on the node.
#[derive(Debug)]
pub struct NodeCtx {
    id: NodeId,
    global: Arc<GlobalMemory>,
    local: LocalMemory,
    /// Sharded internally (per-bank locks): threads touching different
    /// banks proceed concurrently, so no node-wide mutex is needed here.
    cache: NodeCache,
    clock: SimClock,
    latency: Arc<LatencyModel>,
    stats: NodeStats,
    interconnect: Arc<Interconnect>,
    liveness: Arc<NodeLiveness>,
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        global: Arc<GlobalMemory>,
        local_capacity: usize,
        cache_config: CacheConfig,
        latency: Arc<LatencyModel>,
        interconnect: Arc<Interconnect>,
        liveness: Arc<NodeLiveness>,
    ) -> Self {
        let cache = NodeCache::new(cache_config);
        let stats = NodeStats::new();
        // The stats handle reads the cache's per-bank counters directly;
        // no publish/copy step runs on the access path.
        stats.attach_cache(cache.stats_cells());
        NodeCtx {
            id,
            global,
            local: LocalMemory::new(local_capacity),
            cache,
            clock: SimClock::new(),
            latency,
            stats,
            interconnect,
            liveness,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The rack's global memory pool.
    pub fn global(&self) -> &Arc<GlobalMemory> {
        &self.global
    }

    /// This node's simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The latency model in effect.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// This node's operation counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Whether this node is currently alive.
    pub fn is_alive(&self) -> bool {
        self.liveness.is_alive(self.id)
    }

    fn ensure_alive(&self) -> Result<(), SimError> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(SimError::NodeDown { node: self.id })
        }
    }

    /// Charge `ns` of simulated compute time (CPU work, not memory).
    pub fn charge(&self, ns: u64) {
        let at = self.clock.advance(ns);
        self.stats
            .record_op(CostClass::Compute, OpKind::Compute, AddrClass::None, at, ns);
    }

    /// Advance the clock by `cost` and record the charge in this node's
    /// metrics (histogram by cost class + optional trace event).
    fn charge_op(&self, class: CostClass, kind: OpKind, addr_class: AddrClass, cost: u64) {
        let at = self.clock.advance(cost);
        self.stats.record_op(class, kind, addr_class, at, cost);
    }

    /// The latency model to charge for an access to global address
    /// `addr`: under the default uniform home policy this is the node's
    /// flat model, borrowed (zero overhead, byte-identical); under an
    /// interleaved policy it is the model specialized to the
    /// requester→home distance class through the topology tree.
    fn lat_for(&self, addr: GAddr) -> std::borrow::Cow<'_, LatencyModel> {
        match self.interconnect.topology().mem_path(self.id, addr.0) {
            None => std::borrow::Cow::Borrowed(&*self.latency),
            Some((levels, bw)) => std::borrow::Cow::Owned(self.latency.for_path(levels, bw)),
        }
    }

    // ----- cached global memory access ------------------------------------

    /// Read `buf.len()` bytes at `addr` through this node's cache.
    ///
    /// May return **stale** data cached before another node's writeback;
    /// call [`NodeCtx::invalidate`] first to force a refetch.
    ///
    /// # Errors
    ///
    /// Fails on node crash, out-of-bounds, or poisoned memory.
    pub fn read(&self, addr: GAddr, buf: &mut [u8]) -> Result<(), SimError> {
        self.ensure_alive()?;
        // Spans are charged at the distance class of their first line's
        // home (interleave stripes are page-sized or larger; cached
        // spans are line bursts, so mixed-home spans are rare and the
        // approximation is one line's tail cost at most).
        let cost = self
            .cache
            .read(&self.global, &self.lat_for(addr), addr, buf)?;
        self.charge_op(CostClass::GlobalRead, OpKind::Read, AddrClass::Global, cost);
        self.stats.count_global_read(buf.len());
        Ok(())
    }

    /// Write `buf` at `addr` through this node's cache (write-back).
    ///
    /// Invisible to other nodes until [`NodeCtx::writeback`] /
    /// [`NodeCtx::flush`].
    ///
    /// # Errors
    ///
    /// Fails on node crash, out-of-bounds, or poisoned memory.
    pub fn write(&self, addr: GAddr, buf: &[u8]) -> Result<(), SimError> {
        self.ensure_alive()?;
        let cost = self
            .cache
            .write(&self.global, &self.lat_for(addr), addr, buf)?;
        self.charge_op(
            CostClass::GlobalWrite,
            OpKind::Write,
            AddrClass::Global,
            cost,
        );
        self.stats.count_global_write(buf.len());
        Ok(())
    }

    /// Convenience: cached read of an aligned u64.
    ///
    /// # Errors
    ///
    /// As [`NodeCtx::read`].
    pub fn read_u64(&self, addr: GAddr) -> Result<u64, SimError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Convenience: cached write of an aligned u64.
    ///
    /// # Errors
    ///
    /// As [`NodeCtx::write`].
    pub fn write_u64(&self, addr: GAddr, value: u64) -> Result<(), SimError> {
        self.write(addr, &value.to_le_bytes())
    }

    // ----- cache maintenance ----------------------------------------------

    /// Write dirty cached lines covering `[addr, addr+len)` back to global
    /// memory, keeping them cached.
    pub fn writeback(&self, addr: GAddr, len: usize) {
        let cost = self
            .cache
            .writeback(&self.global, &self.lat_for(addr), addr, len);
        self.charge_op(
            CostClass::CacheMaint,
            OpKind::Writeback,
            AddrClass::Global,
            cost,
        );
    }

    /// Drop cached lines covering `[addr, addr+len)` (un-written dirty data
    /// is discarded, as on hardware).
    pub fn invalidate(&self, addr: GAddr, len: usize) {
        let cost = self.cache.invalidate(&self.latency, addr, len);
        self.charge_op(
            CostClass::CacheMaint,
            OpKind::Invalidate,
            AddrClass::Global,
            cost,
        );
    }

    /// Write back then invalidate `[addr, addr+len)`.
    pub fn flush(&self, addr: GAddr, len: usize) {
        let cost = self
            .cache
            .flush(&self.global, &self.lat_for(addr), addr, len);
        self.charge_op(
            CostClass::CacheMaint,
            OpKind::Flush,
            AddrClass::Global,
            cost,
        );
    }

    /// Flush this node's entire cache.
    pub fn flush_all(&self) {
        let cost = self.cache.flush_all(&self.global, &self.latency);
        self.charge_op(
            CostClass::CacheMaint,
            OpKind::Flush,
            AddrClass::Global,
            cost,
        );
    }

    /// Cache behaviour counters for this node (lock-free snapshot of the
    /// per-bank atomics).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    // ----- uncached + atomic global access ---------------------------------

    /// Uncached load of an aligned u64 straight from global memory.
    ///
    /// # Errors
    ///
    /// Fails on node crash, bounds, alignment, or poison.
    pub fn load_uncached_u64(&self, addr: GAddr) -> Result<u64, SimError> {
        self.ensure_alive()?;
        let v = self.global.load_u64(addr)?;
        self.charge_op(
            CostClass::Uncached,
            OpKind::Read,
            AddrClass::GlobalUncached,
            self.lat_for(addr).global_read_ns,
        );
        self.stats.count_global_read(8);
        Ok(v)
    }

    /// Uncached store of an aligned u64 straight to global memory.
    ///
    /// # Errors
    ///
    /// Fails on node crash, bounds, alignment, or poison.
    pub fn store_uncached_u64(&self, addr: GAddr, value: u64) -> Result<(), SimError> {
        self.ensure_alive()?;
        self.global.store_u64(addr, value)?;
        self.charge_op(
            CostClass::Uncached,
            OpKind::Write,
            AddrClass::GlobalUncached,
            self.lat_for(addr).global_write_ns,
        );
        self.stats.count_global_write(8);
        Ok(())
    }

    /// Fabric atomic compare-exchange (bypasses all caches). Returns the
    /// previous value; success iff it equals `current`.
    ///
    /// # Errors
    ///
    /// Fails on node crash, bounds, alignment, or poison.
    pub fn compare_exchange_u64(
        &self,
        addr: GAddr,
        current: u64,
        new: u64,
    ) -> Result<u64, SimError> {
        self.ensure_alive()?;
        let prev = self.global.compare_exchange_u64(addr, current, new)?;
        self.charge_op(
            CostClass::Atomic,
            OpKind::Atomic,
            AddrClass::GlobalUncached,
            self.lat_for(addr).global_atomic_ns,
        );
        self.stats.count_atomic();
        Ok(prev)
    }

    /// Fabric atomic fetch-add (bypasses all caches); returns the previous
    /// value.
    ///
    /// # Errors
    ///
    /// Fails on node crash, bounds, alignment, or poison.
    pub fn fetch_add_u64(&self, addr: GAddr, delta: u64) -> Result<u64, SimError> {
        self.ensure_alive()?;
        let prev = self.global.fetch_add_u64(addr, delta)?;
        self.charge_op(
            CostClass::Atomic,
            OpKind::Atomic,
            AddrClass::GlobalUncached,
            self.lat_for(addr).global_atomic_ns,
        );
        self.stats.count_atomic();
        Ok(prev)
    }

    // ----- local memory -----------------------------------------------------

    /// This node's local memory arena.
    pub fn local(&self) -> &LocalMemory {
        &self.local
    }

    /// Allocate `len` bytes of local memory.
    ///
    /// # Errors
    ///
    /// Fails when the local arena is exhausted.
    pub fn local_alloc(&self, len: usize) -> Result<LAddr, SimError> {
        self.ensure_alive()?;
        self.local.alloc(len)
    }

    /// Read from local memory, charging local DRAM latency.
    ///
    /// # Errors
    ///
    /// Fails on node crash or out-of-bounds.
    pub fn local_read(&self, addr: LAddr, buf: &mut [u8]) -> Result<(), SimError> {
        self.ensure_alive()?;
        self.local.read(addr, buf)?;
        self.charge_op(
            CostClass::Local,
            OpKind::Read,
            AddrClass::Local,
            self.latency.local_read_ns,
        );
        self.stats.count_local(buf.len());
        Ok(())
    }

    /// Write to local memory, charging local DRAM latency.
    ///
    /// # Errors
    ///
    /// Fails on node crash or out-of-bounds.
    pub fn local_write(&self, addr: LAddr, buf: &[u8]) -> Result<(), SimError> {
        self.ensure_alive()?;
        self.local.write(addr, buf)?;
        self.charge_op(
            CostClass::Local,
            OpKind::Write,
            AddrClass::Local,
            self.latency.local_write_ns,
        );
        self.stats.count_local(buf.len());
        Ok(())
    }

    // ----- messaging ----------------------------------------------------------

    /// Send `payload` to `to`'s `port`, departing at this node's current
    /// simulated time. Returns the simulated arrival time.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is down or the link is severed.
    pub fn send(&self, to: NodeId, port: u16, payload: Vec<u8>) -> Result<u64, SimError> {
        self.ensure_alive()?;
        let len = payload.len();
        let depart = self.clock.now();
        let arrive = self.interconnect.send(self.id, to, port, payload, depart)?;
        // The sender is not stalled by the flight time; record the fabric
        // cost of the message without advancing the sender's clock.
        self.stats.record_op(
            CostClass::Message,
            OpKind::Send,
            AddrClass::Fabric,
            depart,
            arrive - depart,
        );
        self.stats.count_message(len);
        Ok(arrive)
    }

    /// Non-blocking receive on `port`. On success the node's clock advances
    /// to at least the message's arrival time.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when no message is queued.
    pub fn try_recv(&self, port: u16) -> Result<Message, SimError> {
        self.ensure_alive()?;
        let msg = self.interconnect.try_recv(self.id, port)?;
        let before = self.clock.now();
        let at = self.clock.advance_to(msg.arrive_ns);
        // Cost attributed to the receiver: how long it (logically) waited.
        self.stats.record_op(
            CostClass::Message,
            OpKind::Recv,
            AddrClass::Fabric,
            at,
            at.saturating_sub(before),
        );
        Ok(msg)
    }

    /// Number of messages queued on `port`.
    pub fn pending(&self, port: u16) -> usize {
        self.interconnect.pending(self.id, port)
    }

    /// The interconnect fabric (for topology queries).
    pub fn interconnect(&self) -> &Arc<Interconnect> {
        &self.interconnect
    }
}

#[cfg(test)]
mod tests {
    use crate::rack::{Rack, RackConfig};
    use crate::SimError;

    #[test]
    fn cached_rw_charges_clock() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let a = rack.global().alloc(64, 8).unwrap();
        let before = n0.clock().now();
        n0.write_u64(a, 3).unwrap();
        assert!(n0.clock().now() > before);
        assert_eq!(n0.read_u64(a).unwrap(), 3);
    }

    #[test]
    fn incoherence_visible_through_node_api() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let a = rack.global().alloc(8, 8).unwrap();
        n0.write_u64(a, 77).unwrap();
        assert_eq!(n1.read_u64(a).unwrap(), 0, "no writeback yet");
        n0.writeback(a, 8);
        assert_eq!(n1.read_u64(a).unwrap(), 0, "n1 still caches stale line");
        n1.invalidate(a, 8);
        assert_eq!(n1.read_u64(a).unwrap(), 77);
    }

    #[test]
    fn atomics_bypass_caches() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let a = rack.global().alloc(8, 8).unwrap();
        n0.fetch_add_u64(a, 5).unwrap();
        // Visible immediately to another node's atomic/uncached access.
        assert_eq!(n1.load_uncached_u64(a).unwrap(), 5);
        assert_eq!(n1.compare_exchange_u64(a, 5, 9).unwrap(), 5);
        assert_eq!(n0.load_uncached_u64(a).unwrap(), 9);
    }

    #[test]
    fn crashed_node_operations_fail() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let a = rack.global().alloc(8, 8).unwrap();
        rack.faults().crash_node(n0.id(), 0);
        assert!(!n0.is_alive());
        assert!(matches!(n0.read_u64(a), Err(SimError::NodeDown { .. })));
        assert!(matches!(
            n0.fetch_add_u64(a, 1),
            Err(SimError::NodeDown { .. })
        ));
        rack.faults().restart_node(n0.id(), 0);
        assert!(n0.read_u64(a).is_ok());
    }

    #[test]
    fn messaging_advances_receiver_clock() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        n0.charge(10_000);
        let arrive = n0.send(n1.id(), 4, vec![1, 2, 3]).unwrap();
        assert!(arrive > 10_000);
        let msg = n1.try_recv(4).unwrap();
        assert_eq!(msg.payload, vec![1, 2, 3]);
        assert!(n1.clock().now() >= arrive);
    }

    #[test]
    fn local_memory_rw() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let a = n0.local_alloc(32).unwrap();
        n0.local_write(a, &[4; 32]).unwrap();
        let mut out = [0u8; 32];
        n0.local_read(a, &mut out).unwrap();
        assert_eq!(out, [4; 32]);
        assert_eq!(n0.stats().snapshot().local_accesses, 2);
    }
}
