//! Per-node operation counters.
//!
//! Experiments use these to explain *why* a configuration is fast or slow
//! (e.g. Figure 4's gap decomposes into copies and stack processing on the
//! networking side versus a handful of interconnect accesses for FlacOS).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe counters for one node. Cloning shares the counters.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    global_reads: AtomicU64,
    global_writes: AtomicU64,
    global_atomics: AtomicU64,
    local_accesses: AtomicU64,
    bytes_copied: AtomicU64,
    messages_sent: AtomicU64,
    message_bytes: AtomicU64,
}

/// A point-in-time copy of a node's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Cached or uncached loads from global memory.
    pub global_reads: u64,
    /// Cached or uncached stores to global memory.
    pub global_writes: u64,
    /// Fabric atomics issued.
    pub global_atomics: u64,
    /// Local-memory reads + writes.
    pub local_accesses: u64,
    /// Payload bytes memcpy'd by simulator operations.
    pub bytes_copied: u64,
    /// Interconnect messages sent.
    pub messages_sent: u64,
    /// Interconnect payload bytes sent.
    pub message_bytes: u64,
}

impl NodeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_global_read(&self, bytes: usize) {
        self.inner.global_reads.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_global_write(&self, bytes: usize) {
        self.inner.global_writes.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_atomic(&self) {
        self.inner.global_atomics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_local(&self, bytes: usize) {
        self.inner.local_accesses.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_message(&self, bytes: usize) {
        self.inner.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.inner.message_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            global_reads: self.inner.global_reads.load(Ordering::Relaxed),
            global_writes: self.inner.global_writes.load(Ordering::Relaxed),
            global_atomics: self.inner.global_atomics.load(Ordering::Relaxed),
            local_accesses: self.inner.local_accesses.load(Ordering::Relaxed),
            bytes_copied: self.inner.bytes_copied.load(Ordering::Relaxed),
            messages_sent: self.inner.messages_sent.load(Ordering::Relaxed),
            message_bytes: self.inner.message_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let s = NodeStats::new();
        let s2 = s.clone();
        s.count_global_read(8);
        s.count_global_write(16);
        s.count_atomic();
        s.count_local(4);
        s.count_message(100);
        let snap = s2.snapshot();
        assert_eq!(snap.global_reads, 1);
        assert_eq!(snap.global_writes, 1);
        assert_eq!(snap.global_atomics, 1);
        assert_eq!(snap.local_accesses, 1);
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.message_bytes, 100);
        assert_eq!(snap.bytes_copied, 8 + 16 + 4);
    }
}
