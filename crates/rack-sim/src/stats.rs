//! Per-node operation counters, latency histograms, and event traces.
//!
//! Experiments use these to explain *why* a configuration is fast or slow
//! (e.g. Figure 4's gap decomposes into copies and stack processing on the
//! networking side versus a handful of interconnect accesses for FlacOS).
//! Counts alone don't close the argument — the same op count at different
//! cost classes gives very different simulated time — so every operation
//! also lands in a per-[`CostClass`] [`LatencyHistogram`], and (when
//! enabled) in the node's bounded [`TraceRing`]. Layers above the
//! simulator register their own counters in the [`CounterRegistry`]
//! (page-cache hits, fault-box entries, IPC messages, …).

use crate::metrics::{
    AddrClass, CostClass, Counter, CounterRegistry, HistogramSnapshot, LatencyHistogram, OpKind,
    SubsystemCounter, TraceEvent, TraceRing,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared, thread-safe metrics for one node. Cloning shares the state.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Counters,
    /// Shared handle to the node cache's per-bank atomic counters,
    /// attached once by the owning `NodeCtx`. Snapshots read the cache's
    /// own cells; nothing is copied or published on the access path.
    cache: OnceLock<Arc<crate::cache::CacheStatsCells>>,
    histograms: [LatencyHistogram; CostClass::ALL.len()],
    trace: TraceRing,
    registry: CounterRegistry,
}

#[derive(Debug, Default)]
struct Counters {
    global_reads: AtomicU64,
    global_writes: AtomicU64,
    global_atomics: AtomicU64,
    local_accesses: AtomicU64,
    local_bytes: AtomicU64,
    global_bytes: AtomicU64,
    bytes_copied: AtomicU64,
    messages_sent: AtomicU64,
    message_bytes: AtomicU64,
}

/// A point-in-time copy of a node's counters, cache behaviour,
/// per-cost-class latency histograms, and subsystem counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Cached or uncached loads from global memory.
    pub global_reads: u64,
    /// Cached or uncached stores to global memory.
    pub global_writes: u64,
    /// Fabric atomics issued.
    pub global_atomics: u64,
    /// Local-memory reads + writes.
    pub local_accesses: u64,
    /// Payload bytes served by the node-local DRAM tier.
    pub local_bytes: u64,
    /// Payload bytes served by the global pool tier (reads + writes).
    pub global_bytes: u64,
    /// Payload bytes memcpy'd by simulator operations.
    pub bytes_copied: u64,
    /// Interconnect messages sent.
    pub messages_sent: u64,
    /// Interconnect payload bytes sent.
    pub message_bytes: u64,
    /// Cache line accesses served from the node cache.
    pub cache_hits: u64,
    /// Cache line accesses that fetched from global memory.
    pub cache_misses: u64,
    /// Full-line write allocations that skipped the fill.
    pub cache_allocs: u64,
    /// Dirty lines written back (explicitly or by eviction).
    pub cache_writebacks: u64,
    /// Lines dropped by invalidation.
    pub cache_invalidations: u64,
    /// Lines evicted for capacity.
    pub cache_evictions: u64,
    /// Hits that cost-shared another thread's in-flight line fill
    /// instead of issuing a duplicate fabric read (subset of
    /// `cache_hits`).
    pub cache_coalesced_fills: u64,
    /// Per-cost-class latency histograms, indexed by [`CostClass::index`].
    pub histograms: [HistogramSnapshot; CostClass::ALL.len()],
    /// Subsystem counters registered by layers above the simulator.
    pub subsystems: Vec<SubsystemCounter>,
}

impl Default for StatsSnapshot {
    fn default() -> Self {
        StatsSnapshot {
            global_reads: 0,
            global_writes: 0,
            global_atomics: 0,
            local_accesses: 0,
            local_bytes: 0,
            global_bytes: 0,
            bytes_copied: 0,
            messages_sent: 0,
            message_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_allocs: 0,
            cache_writebacks: 0,
            cache_invalidations: 0,
            cache_evictions: 0,
            cache_coalesced_fills: 0,
            histograms: [HistogramSnapshot::default(); CostClass::ALL.len()],
            subsystems: Vec::new(),
        }
    }
}

impl StatsSnapshot {
    /// The histogram for one cost class.
    pub fn histogram(&self, class: CostClass) -> &HistogramSnapshot {
        &self.histograms[class.index()]
    }

    /// Total simulated nanoseconds across every cost class — the node's
    /// charged time decomposed by this snapshot.
    pub fn total_charged_ns(&self) -> u64 {
        self.histograms.iter().map(|h| h.total_ns).sum()
    }

    /// Fold another node's snapshot into this one (rack-wide merging).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.global_atomics += other.global_atomics;
        self.local_accesses += other.local_accesses;
        self.local_bytes += other.local_bytes;
        self.global_bytes += other.global_bytes;
        self.bytes_copied += other.bytes_copied;
        self.messages_sent += other.messages_sent;
        self.message_bytes += other.message_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_allocs += other.cache_allocs;
        self.cache_writebacks += other.cache_writebacks;
        self.cache_invalidations += other.cache_invalidations;
        self.cache_evictions += other.cache_evictions;
        self.cache_coalesced_fills += other.cache_coalesced_fills;
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            a.merge(b);
        }
        let merged = crate::metrics::merge_counters(&[
            std::mem::take(&mut self.subsystems),
            other.subsystems.clone(),
        ]);
        self.subsystems = merged;
    }
}

impl NodeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_global_read(&self, bytes: usize) {
        self.inner
            .counters
            .global_reads
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .global_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_copied
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_global_write(&self, bytes: usize) {
        self.inner
            .counters
            .global_writes
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .global_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_copied
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_atomic(&self) {
        self.inner
            .counters
            .global_atomics
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_local(&self, bytes: usize) {
        self.inner
            .counters
            .local_accesses
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .local_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_copied
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_message(&self, bytes: usize) {
        self.inner
            .counters
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .message_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one charged operation: histogram by cost class, plus a trace
    /// event when tracing is enabled.
    pub(crate) fn record_op(
        &self,
        class: CostClass,
        kind: OpKind,
        addr_class: AddrClass,
        at_ns: u64,
        cost_ns: u64,
    ) {
        self.inner.histograms[class.index()].record(cost_ns);
        self.inner.trace.record(TraceEvent {
            kind,
            addr_class,
            at_ns,
            cost_ns,
        });
    }

    /// Attach the node cache's shared counter cells (called once by the
    /// owning `NodeCtx` at construction). Later calls are ignored.
    pub(crate) fn attach_cache(&self, cells: Arc<crate::cache::CacheStatsCells>) {
        let _ = self.inner.cache.set(cells);
    }

    /// This node's event-trace ring (disabled by default).
    pub fn trace(&self) -> &TraceRing {
        &self.inner.trace
    }

    /// The subsystem counter registry for layers above the simulator.
    pub fn registry(&self) -> &CounterRegistry {
        &self.inner.registry
    }

    /// Convenience: get (registering on first use) a subsystem counter.
    pub fn counter(&self, subsystem: &'static str, name: &'static str) -> Counter {
        self.inner.registry.counter(subsystem, name)
    }

    /// A live histogram snapshot for one cost class.
    pub fn histogram(&self, class: CostClass) -> HistogramSnapshot {
        self.inner.histograms[class.index()].snapshot()
    }

    /// Zero every histogram (counters and traces are left untouched).
    /// Intended for experiment harnesses between repetitions.
    pub fn reset_histograms(&self) {
        for h in &self.inner.histograms {
            h.reset();
        }
    }

    /// Take a consistent-enough snapshot of all counters, cache counters,
    /// histograms, and subsystem counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        let k = self
            .inner
            .cache
            .get()
            .map(|cells| cells.total())
            .unwrap_or_default();
        let mut histograms = [HistogramSnapshot::default(); CostClass::ALL.len()];
        for (out, h) in histograms.iter_mut().zip(&self.inner.histograms) {
            *out = h.snapshot();
        }
        StatsSnapshot {
            global_reads: c.global_reads.load(Ordering::Relaxed),
            global_writes: c.global_writes.load(Ordering::Relaxed),
            global_atomics: c.global_atomics.load(Ordering::Relaxed),
            local_accesses: c.local_accesses.load(Ordering::Relaxed),
            local_bytes: c.local_bytes.load(Ordering::Relaxed),
            global_bytes: c.global_bytes.load(Ordering::Relaxed),
            bytes_copied: c.bytes_copied.load(Ordering::Relaxed),
            messages_sent: c.messages_sent.load(Ordering::Relaxed),
            message_bytes: c.message_bytes.load(Ordering::Relaxed),
            cache_hits: k.hits,
            cache_misses: k.misses,
            cache_allocs: k.allocs,
            cache_writebacks: k.writebacks,
            cache_invalidations: k.invalidations,
            cache_evictions: k.evictions,
            cache_coalesced_fills: k.coalesced_fills,
            histograms,
            subsystems: self.inner.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let s = NodeStats::new();
        let s2 = s.clone();
        s.count_global_read(8);
        s.count_global_write(16);
        s.count_atomic();
        s.count_local(4);
        s.count_message(100);
        let snap = s2.snapshot();
        assert_eq!(snap.global_reads, 1);
        assert_eq!(snap.global_writes, 1);
        assert_eq!(snap.global_atomics, 1);
        assert_eq!(snap.local_accesses, 1);
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.message_bytes, 100);
        assert_eq!(snap.bytes_copied, 8 + 16 + 4);
        assert_eq!(snap.global_bytes, 8 + 16, "per-tier global byte split");
        assert_eq!(snap.local_bytes, 4, "per-tier local byte split");
    }

    #[test]
    fn record_op_feeds_class_histogram_and_trace() {
        let s = NodeStats::new();
        s.trace().enable();
        s.record_op(
            CostClass::Atomic,
            OpKind::Atomic,
            AddrClass::GlobalUncached,
            700,
            700,
        );
        s.record_op(
            CostClass::GlobalRead,
            OpKind::Read,
            AddrClass::Global,
            1180,
            480,
        );
        let snap = s.snapshot();
        assert_eq!(snap.histogram(CostClass::Atomic).count, 1);
        assert_eq!(snap.histogram(CostClass::Atomic).total_ns, 700);
        assert_eq!(snap.histogram(CostClass::GlobalRead).count, 1);
        assert_eq!(snap.total_charged_ns(), 1180);
        let trace = s.trace().events();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, OpKind::Atomic);
        assert_eq!(trace[1].at_ns, 1180);
    }

    #[test]
    fn snapshot_merge_sums_everything() {
        let (a, b) = (NodeStats::new(), NodeStats::new());
        a.count_global_read(8);
        a.record_op(
            CostClass::GlobalRead,
            OpKind::Read,
            AddrClass::Global,
            480,
            480,
        );
        a.registry().add("ipc", "messages", 2);
        b.count_global_read(8);
        b.record_op(
            CostClass::GlobalRead,
            OpKind::Read,
            AddrClass::Global,
            480,
            480,
        );
        b.registry().add("ipc", "messages", 3);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.global_reads, 2);
        assert_eq!(merged.histogram(CostClass::GlobalRead).count, 2);
        assert_eq!(merged.subsystems.len(), 1);
        assert_eq!(merged.subsystems[0].value, 5);
    }

    #[test]
    fn reset_histograms_keeps_counters() {
        let s = NodeStats::new();
        s.count_atomic();
        s.record_op(
            CostClass::Atomic,
            OpKind::Atomic,
            AddrClass::GlobalUncached,
            700,
            700,
        );
        s.reset_histograms();
        let snap = s.snapshot();
        assert_eq!(snap.global_atomics, 1);
        assert_eq!(snap.histogram(CostClass::Atomic).count, 0);
    }
}
