//! The assembled rack: nodes + global memory + fabric + fault injector.

use crate::cache::CacheConfig;
use crate::fault::{FaultInjector, NodeLiveness};
use crate::interconnect::Interconnect;
use crate::latency::LatencyModel;
use crate::memory::GlobalMemory;
use crate::metrics::CostClass;
use crate::node::NodeCtx;
use crate::stats::StatsSnapshot;
use crate::topology::{NodeId, RackTopology};
use std::fmt;
use std::sync::Arc;

/// Configuration for building a [`Rack`].
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Compute topology (node/core counts, hop distances).
    pub topology: RackTopology,
    /// Latency cost model.
    pub latency: LatencyModel,
    /// Global (interconnect-shared) memory pool size in bytes.
    pub global_mem_bytes: usize,
    /// Per-node local memory arena size in bytes.
    pub local_mem_bytes: usize,
    /// Per-node cache configuration.
    pub cache: CacheConfig,
    /// Seed for the deterministic fault injector.
    pub seed: u64,
}

impl RackConfig {
    /// The paper's physical testbed shape: 2 nodes × 320 cores over HCCS,
    /// with a 256 MiB shared pool (scaled from the testbed for host RAM).
    pub fn two_node_hccs() -> Self {
        RackConfig {
            topology: RackTopology::kunpeng_two_node(),
            latency: LatencyModel::hccs(),
            global_mem_bytes: 256 << 20,
            local_mem_bytes: 64 << 20,
            cache: CacheConfig::default(),
            seed: 0xF1AC,
        }
    }

    /// A small rack for unit tests: 2 nodes, 1 MiB pools.
    pub fn small_test() -> Self {
        RackConfig {
            topology: RackTopology::switched(2, 4),
            latency: LatencyModel::hccs(),
            global_mem_bytes: 1 << 20,
            local_mem_bytes: 1 << 20,
            cache: CacheConfig::default(),
            seed: 7,
        }
    }

    /// An `n`-node switched rack with modest pools, for scaling ablations.
    pub fn n_node(n: usize) -> Self {
        RackConfig {
            topology: RackTopology::switched(n, 16),
            latency: LatencyModel::hccs(),
            global_mem_bytes: 64 << 20,
            local_mem_bytes: 16 << 20,
            cache: CacheConfig::default(),
            seed: 7,
        }
    }

    /// A multi-rack pod: `racks` racks of `nodes_per_rack` nodes (one
    /// socket each) under a pod spine, with global memory interleaved
    /// page-wise across the leaves so memory costs charge by
    /// requester→home distance class. For hierarchical-topology
    /// ablations against the depth-1 [`RackConfig::n_node`] shape.
    pub fn pod(nodes_per_rack: usize, racks: usize) -> Self {
        RackConfig {
            topology: RackTopology::pod(1, nodes_per_rack, racks, 16).with_home_interleaved(4096),
            latency: LatencyModel::hccs(),
            global_mem_bytes: 64 << 20,
            local_mem_bytes: 16 << 20,
            cache: CacheConfig::default(),
            seed: 7,
        }
    }

    /// Replace the topology (builder-style).
    #[must_use]
    pub fn with_topology(mut self, topology: RackTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the latency model (builder-style).
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replace the global pool size (builder-style).
    #[must_use]
    pub fn with_global_mem(mut self, bytes: usize) -> Self {
        self.global_mem_bytes = bytes;
        self
    }

    /// Replace the fault-injection seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for RackConfig {
    fn default() -> Self {
        Self::two_node_hccs()
    }
}

/// A fully assembled simulated rack.
///
/// Cloning is cheap; all clones refer to the same simulated hardware.
#[derive(Debug, Clone)]
pub struct Rack {
    config: RackConfig,
    global: Arc<GlobalMemory>,
    nodes: Vec<Arc<NodeCtx>>,
    interconnect: Arc<Interconnect>,
    faults: Arc<FaultInjector>,
    liveness: Arc<NodeLiveness>,
}

impl Rack {
    /// Build a rack from `config`.
    pub fn new(config: RackConfig) -> Self {
        let global = Arc::new(GlobalMemory::new(config.global_mem_bytes));
        let latency = Arc::new(config.latency.clone());
        let liveness = NodeLiveness::new(config.topology.nodes());
        let faults = Arc::new(FaultInjector::new(config.seed, liveness.clone()));
        let interconnect = Arc::new(Interconnect::new(
            config.topology.clone(),
            config.latency.clone(),
            liveness.clone(),
            faults.clone(),
        ));
        let nodes = config
            .topology
            .node_ids()
            .map(|id| {
                Arc::new(NodeCtx::new(
                    id,
                    global.clone(),
                    config.local_mem_bytes,
                    config.cache.clone(),
                    latency.clone(),
                    interconnect.clone(),
                    liveness.clone(),
                ))
            })
            .collect();
        Rack {
            config,
            global,
            nodes,
            interconnect,
            faults,
            liveness,
        }
    }

    /// The configuration this rack was built from.
    pub fn config(&self) -> &RackConfig {
        &self.config
    }

    /// Node context by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node(&self, idx: usize) -> Arc<NodeCtx> {
        self.nodes[idx].clone()
    }

    /// All node contexts.
    pub fn nodes(&self) -> &[Arc<NodeCtx>] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The rack's shared global memory.
    pub fn global(&self) -> &Arc<GlobalMemory> {
        &self.global
    }

    /// The message fabric.
    pub fn interconnect(&self) -> &Arc<Interconnect> {
        &self.interconnect
    }

    /// The fault injector.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Node liveness flags.
    pub fn liveness(&self) -> &Arc<NodeLiveness> {
        &self.liveness
    }

    /// Whether node `id` is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.liveness.is_alive(id)
    }

    /// Maximum simulated time across all node clocks — the rack-wide
    /// "makespan" of an experiment.
    pub fn max_time_ns(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.clock().now())
            .max()
            .unwrap_or(0)
    }

    /// Reset every node clock to zero (between experiment repetitions).
    pub fn reset_clocks(&self) {
        for n in &self.nodes {
            n.clock().reset();
        }
    }

    /// Enable event tracing on every node.
    pub fn enable_tracing(&self) {
        for n in &self.nodes {
            n.stats().trace().enable();
        }
    }

    /// Disable event tracing on every node (captured events are kept).
    pub fn disable_tracing(&self) {
        for n in &self.nodes {
            n.stats().trace().disable();
        }
    }

    /// Collect every node's metrics and merge them into a rack-wide
    /// report: operation counts, cache behaviour, per-cost-class latency
    /// histograms, and subsystem counters.
    pub fn metrics_report(&self) -> RackReport {
        let per_node: Vec<StatsSnapshot> =
            self.nodes.iter().map(|n| n.stats().snapshot()).collect();
        let mut merged = StatsSnapshot::default();
        for snap in &per_node {
            merged.merge(snap);
        }
        RackReport {
            per_node,
            merged,
            makespan_ns: self.max_time_ns(),
        }
    }
}

/// Merged metrics for a whole rack, plus the per-node snapshots they came
/// from. `Display` renders the operation-count decomposition the
/// experiment tables use to explain their numbers.
#[derive(Debug, Clone)]
pub struct RackReport {
    /// One snapshot per node, indexed by node id.
    pub per_node: Vec<StatsSnapshot>,
    /// All nodes merged (counts summed, histograms bucket-wise summed).
    pub merged: StatsSnapshot,
    /// Maximum simulated time across all node clocks at capture.
    pub makespan_ns: u64,
}

impl fmt::Display for RackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.merged;
        writeln!(
            f,
            "  ops: {} global reads, {} global writes, {} atomics, {} local, {} msgs ({} B), {} B copied",
            m.global_reads,
            m.global_writes,
            m.global_atomics,
            m.local_accesses,
            m.messages_sent,
            m.message_bytes,
            m.bytes_copied,
        )?;
        writeln!(
            f,
            "  tier: {} B via local DRAM, {} B via global pool",
            m.local_bytes, m.global_bytes,
        )?;
        writeln!(
            f,
            "  cache: {} hits ({} coalesced), {} misses, {} allocs, {} writebacks, {} invalidations, {} evictions",
            m.cache_hits,
            m.cache_coalesced_fills,
            m.cache_misses,
            m.cache_allocs,
            m.cache_writebacks,
            m.cache_invalidations,
            m.cache_evictions,
        )?;
        for class in CostClass::ALL {
            let h = m.histogram(class);
            if h.count > 0 {
                writeln!(f, "  lat[{:>12}]: {}", class.label(), h.summary())?;
            }
        }
        if !m.subsystems.is_empty() {
            for c in &m.subsystems {
                writeln!(f, "  ctr[{}/{}]: {}", c.subsystem, c.name, c.value)?;
            }
        }
        write!(
            f,
            "  makespan: {} ns over {} node(s)",
            self.makespan_ns,
            self.per_node.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_topology() {
        let rack = Rack::new(RackConfig::n_node(4));
        assert_eq!(rack.node_count(), 4);
        for (i, n) in rack.nodes().iter().enumerate() {
            assert_eq!(n.id(), NodeId(i));
        }
        assert!(rack.is_alive(NodeId(3)));
    }

    #[test]
    fn global_pool_shared_between_nodes() {
        let rack = Rack::new(RackConfig::small_test());
        let a = rack.global().alloc(8, 8).unwrap();
        rack.node(0).store_uncached_u64(a, 11).unwrap();
        assert_eq!(rack.node(1).load_uncached_u64(a).unwrap(), 11);
    }

    #[test]
    fn max_time_and_reset() {
        let rack = Rack::new(RackConfig::small_test());
        rack.node(0).charge(50);
        rack.node(1).charge(75);
        assert_eq!(rack.max_time_ns(), 75);
        rack.reset_clocks();
        assert_eq!(rack.max_time_ns(), 0);
    }

    #[test]
    fn config_builders() {
        let cfg = RackConfig::small_test()
            .with_latency(LatencyModel::cxl_switched())
            .with_global_mem(2 << 20)
            .with_seed(99);
        assert_eq!(cfg.global_mem_bytes, 2 << 20);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.latency, LatencyModel::cxl_switched());
    }
}
