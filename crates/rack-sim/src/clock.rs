//! Per-node simulated clocks.
//!
//! The simulator uses *virtual time*: instead of measuring wall-clock
//! duration of the (host) code, every modeled hardware operation advances
//! the acting node's clock by its modeled cost. Cross-node interactions
//! synchronize clocks through message timestamps (see
//! [`crate::interconnect`]), giving deterministic, reproducible latencies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing simulated clock, in nanoseconds.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advance the clock by `delta_ns` and return the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Advance the clock to at least `ts_ns` (used when a message arrives
    /// that departed at a later simulated time than this node has reached).
    /// Returns the resulting time.
    pub fn advance_to(&self, ts_ns: u64) -> u64 {
        let mut cur = self.ns.load(Ordering::Relaxed);
        while cur < ts_ns {
            match self
                .ns
                .compare_exchange_weak(cur, ts_ns, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return ts_ns,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    /// Reset the clock to zero. Intended for experiment harnesses between
    /// repetitions; concurrent use with `advance` is a logic error.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

/// A span measured on a [`SimClock`], for timing whole operations.
#[derive(Debug)]
pub struct SimSpan {
    clock: SimClock,
    start_ns: u64,
}

impl SimSpan {
    /// Begin measuring from the clock's current time.
    pub fn begin(clock: &SimClock) -> Self {
        SimSpan {
            clock: clock.clone(),
            start_ns: clock.now(),
        }
    }

    /// Simulated nanoseconds elapsed since `begin`.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now().saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        c.advance(100);
        assert_eq!(c.advance_to(50), 100, "never goes backwards");
        assert_eq!(c.advance_to(200), 200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now(), 7);
    }

    #[test]
    fn span_measures_elapsed() {
        let c = SimClock::new();
        c.advance(3);
        let span = SimSpan::begin(&c);
        c.advance(39);
        assert_eq!(span.elapsed_ns(), 39);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = SimClock::new();
        c.advance(123);
        c.reset();
        assert_eq!(c.now(), 0);
    }
}
