//! Fault injection: memory poisoning, node crashes, link failures.
//!
//! The paper's §2.2 motivates system-wide fault tolerance with two
//! observations: global memory fails more often than local DRAM, and every
//! interconnect hop/switch expands the fault surface. This module gives
//! those failures a concrete, *deterministic* form so the FlacDK
//! reliability mechanisms and the fault-box experiments have real faults
//! to detect, isolate, and recover from.

use crate::memory::{GAddr, GlobalMemory};
use crate::rng::SplitMix64;
use crate::sync::{Mutex, RwLock};
use crate::topology::NodeId;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The kind of an injected fault (or recovery action).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Uncorrectable memory error over a global address range.
    MemoryPoison { addr: GAddr, len: usize },
    /// A node stopped executing.
    NodeCrash { node: NodeId },
    /// A crashed node came back (its cache is cold, its clock survives).
    NodeRestart { node: NodeId },
    /// The link between two nodes went down.
    LinkFailure { from: NodeId, to: NodeId },
    /// A severed link was repaired.
    LinkRestore { from: NodeId, to: NodeId },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::MemoryPoison { addr, len } => write!(f, "poison {addr}+{len}"),
            FaultKind::NodeCrash { node } => write!(f, "crash n{}", node.0),
            FaultKind::NodeRestart { node } => write!(f, "restart n{}", node.0),
            FaultKind::LinkFailure { from, to } => {
                write!(f, "link-fail n{}->n{}", from.0, to.0)
            }
            FaultKind::LinkRestore { from, to } => {
                write!(f, "link-restore n{}->n{}", from.0, to.0)
            }
        }
    }
}

/// A recorded fault event, timestamped in simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Simulated time at which the fault was injected.
    pub at_ns: u64,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12} ns] {}", self.at_ns, self.kind)
    }
}

/// Shared liveness flags consulted by node contexts and the interconnect.
#[derive(Debug)]
pub struct NodeLiveness {
    alive: Vec<AtomicBool>,
}

impl NodeLiveness {
    pub(crate) fn new(nodes: usize) -> Arc<Self> {
        Arc::new(NodeLiveness {
            alive: (0..nodes).map(|_| AtomicBool::new(true)).collect(),
        })
    }

    /// Whether the node is currently executing.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive
            .get(node.0)
            .map(|a| a.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    fn set(&self, node: NodeId, alive: bool) {
        if let Some(a) = self.alive.get(node.0) {
            a.store(alive, Ordering::SeqCst);
        }
    }
}

/// Deterministic injector of the three fault classes.
///
/// All randomized choices draw from a seeded RNG, so a given seed replays
/// the exact same fault schedule.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    rng: Mutex<SplitMix64>,
    liveness: Arc<NodeLiveness>,
    down_links: RwLock<HashSet<(NodeId, NodeId)>>,
    log: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    pub(crate) fn new(seed: u64, liveness: Arc<NodeLiveness>) -> Self {
        FaultInjector {
            seed,
            rng: Mutex::new(SplitMix64::new(seed)),
            liveness,
            down_links: RwLock::new(HashSet::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The explicit seed this injector was built with. Every randomized
    /// choice derives from it, so replaying a run only needs this value.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Restart the randomized schedule from an explicit seed (between
    /// experiment repetitions). The fault log is kept.
    pub fn reseed(&self, seed: u64) {
        *self.rng.lock() = SplitMix64::new(seed);
    }

    /// Poison `len` bytes of global memory at `addr` at simulated time `at_ns`.
    pub fn poison_memory(&self, global: &GlobalMemory, addr: GAddr, len: usize, at_ns: u64) {
        global.poison(addr, len);
        self.log.lock().push(FaultEvent {
            kind: FaultKind::MemoryPoison { addr, len },
            at_ns,
        });
    }

    /// Poison a uniformly random word inside `[base, base+len)`.
    /// Returns the poisoned address.
    pub fn poison_random_word(
        &self,
        global: &GlobalMemory,
        base: GAddr,
        len: usize,
        at_ns: u64,
    ) -> GAddr {
        let words = (len / 8).max(1);
        let pick = self.rng.lock().gen_index(words);
        let addr = GAddr((base.0 & !7) + (pick as u64) * 8);
        self.poison_memory(global, addr, 8, at_ns);
        addr
    }

    /// Crash a node: all of its subsequent operations fail with
    /// [`crate::SimError::NodeDown`] until [`FaultInjector::restart_node`].
    pub fn crash_node(&self, node: NodeId, at_ns: u64) {
        self.liveness.set(node, false);
        self.log.lock().push(FaultEvent {
            kind: FaultKind::NodeCrash { node },
            at_ns,
        });
    }

    /// Bring a crashed node back at simulated time `at_ns`.
    pub fn restart_node(&self, node: NodeId, at_ns: u64) {
        self.liveness.set(node, true);
        self.log.lock().push(FaultEvent {
            kind: FaultKind::NodeRestart { node },
            at_ns,
        });
    }

    /// Sever the directed link `from -> to`.
    pub fn fail_link(&self, from: NodeId, to: NodeId, at_ns: u64) {
        self.down_links.write().insert((from, to));
        self.log.lock().push(FaultEvent {
            kind: FaultKind::LinkFailure { from, to },
            at_ns,
        });
    }

    /// Restore the directed link `from -> to` at simulated time `at_ns`.
    pub fn restore_link(&self, from: NodeId, to: NodeId, at_ns: u64) {
        self.down_links.write().remove(&(from, to));
        self.log.lock().push(FaultEvent {
            kind: FaultKind::LinkRestore { from, to },
            at_ns,
        });
    }

    /// Whether the directed link `from -> to` is currently down.
    pub fn link_down(&self, from: NodeId, to: NodeId) -> bool {
        self.down_links.read().contains(&(from, to))
    }

    /// All injected fault events, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    /// The event log rendered one line per event — a stable text form for
    /// byte-identical replay comparison (same seed ⇒ same lines).
    pub fn log_lines(&self) -> Vec<String> {
        self.log.lock().iter().map(|e| e.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_restart_flip_liveness() {
        let liveness = NodeLiveness::new(2);
        let inj = FaultInjector::new(1, liveness.clone());
        assert!(liveness.is_alive(NodeId(1)));
        inj.crash_node(NodeId(1), 100);
        assert!(!liveness.is_alive(NodeId(1)));
        inj.restart_node(NodeId(1), 200);
        assert!(liveness.is_alive(NodeId(1)));
        // Both transitions land in the log, so a replayed schedule can be
        // compared transition-for-transition.
        assert_eq!(
            inj.events(),
            vec![
                FaultEvent {
                    kind: FaultKind::NodeCrash { node: NodeId(1) },
                    at_ns: 100
                },
                FaultEvent {
                    kind: FaultKind::NodeRestart { node: NodeId(1) },
                    at_ns: 200
                },
            ]
        );
        assert_eq!(
            inj.log_lines(),
            vec![
                "[         100 ns] crash n1".to_string(),
                "[         200 ns] restart n1".to_string(),
            ]
        );
    }

    #[test]
    fn out_of_range_node_is_not_alive() {
        let liveness = NodeLiveness::new(2);
        assert!(!liveness.is_alive(NodeId(9)));
    }

    #[test]
    fn link_failure_is_directional() {
        let liveness = NodeLiveness::new(2);
        let inj = FaultInjector::new(1, liveness);
        inj.fail_link(NodeId(0), NodeId(1), 5);
        assert!(inj.link_down(NodeId(0), NodeId(1)));
        assert!(!inj.link_down(NodeId(1), NodeId(0)));
        inj.restore_link(NodeId(0), NodeId(1), 9);
        assert!(!inj.link_down(NodeId(0), NodeId(1)));
        assert_eq!(inj.events().len(), 2, "failure and restore both logged");
    }

    #[test]
    fn poison_random_word_is_deterministic_per_seed() {
        let g1 = GlobalMemory::new(4096);
        let g2 = GlobalMemory::new(4096);
        let a1 =
            FaultInjector::new(42, NodeLiveness::new(1)).poison_random_word(&g1, GAddr(0), 4096, 0);
        let a2 =
            FaultInjector::new(42, NodeLiveness::new(1)).poison_random_word(&g2, GAddr(0), 4096, 0);
        assert_eq!(a1, a2);
        assert!(g1.is_poisoned(a1, 8));
    }
}
