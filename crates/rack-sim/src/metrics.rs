//! Simulated-time observability: latency histograms, event traces, and
//! per-subsystem counter registries.
//!
//! The paper's claims decompose into *counts and costs of interconnect
//! operations* — a configuration is fast because it issues fewer fabric
//! atomics, copies fewer bytes, or turns interconnect round-trips into
//! cache hits. The seven flat counters in [`crate::stats`] give the
//! counts; this module adds the costs and the ordering:
//!
//! * [`LatencyHistogram`] — fixed power-of-two buckets over simulated
//!   nanoseconds, one per [`CostClass`], fed by every `SimClock` charge a
//!   [`crate::NodeCtx`] makes.
//! * [`TraceRing`] — a bounded per-node ring of [`TraceEvent`]s (op kind,
//!   address class, simulated timestamp, cost). Off by default; when off,
//!   recording is a single relaxed atomic load.
//! * [`CounterRegistry`] — dynamically registered `(subsystem, counter)`
//!   cells for layers above the simulator (page cache hits, fault-box
//!   entries, IPC messages, …), merged into rack-wide reports.
//!
//! Everything here is interiorly mutable and cheap to share; all types
//! are `Sync` and recording never blocks on anything slower than a mutex
//! around a ring buffer (and that only when tracing is enabled).

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two buckets in a [`LatencyHistogram`].
///
/// Bucket 0 holds zero-cost operations; bucket `i` (for `i >= 1`) holds
/// costs in `[2^(i-1), 2^i)` ns. The last bucket additionally absorbs
/// everything at or above `2^(BUCKETS-2)` ns (~4.3 s of simulated time),
/// far beyond any single modeled operation.
pub const HIST_BUCKETS: usize = 33;

/// The cost class a simulated charge belongs to.
///
/// Classes mirror the operation taxonomy of [`crate::LatencyModel`]: what
/// kind of hardware action the simulated nanoseconds paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostClass {
    /// Loads/stores served from node-local DRAM.
    Local,
    /// Cached reads over global memory (hit + miss mix).
    GlobalRead,
    /// Cached writes over global memory.
    GlobalWrite,
    /// Uncached fabric loads/stores.
    Uncached,
    /// Fabric atomics (CAS / fetch-add).
    Atomic,
    /// Cache maintenance: writeback, invalidate, flush.
    CacheMaint,
    /// Interconnect messages sent.
    Message,
    /// Explicit compute charges ([`crate::NodeCtx::charge`]).
    Compute,
}

impl CostClass {
    /// All classes, in display order.
    pub const ALL: [CostClass; 8] = [
        CostClass::Local,
        CostClass::GlobalRead,
        CostClass::GlobalWrite,
        CostClass::Uncached,
        CostClass::Atomic,
        CostClass::CacheMaint,
        CostClass::Message,
        CostClass::Compute,
    ];

    /// Dense index into per-class tables.
    pub fn index(self) -> usize {
        match self {
            CostClass::Local => 0,
            CostClass::GlobalRead => 1,
            CostClass::GlobalWrite => 2,
            CostClass::Uncached => 3,
            CostClass::Atomic => 4,
            CostClass::CacheMaint => 5,
            CostClass::Message => 6,
            CostClass::Compute => 7,
        }
    }

    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Local => "local",
            CostClass::GlobalRead => "global_read",
            CostClass::GlobalWrite => "global_write",
            CostClass::Uncached => "uncached",
            CostClass::Atomic => "atomic",
            CostClass::CacheMaint => "cache_maint",
            CostClass::Message => "message",
            CostClass::Compute => "compute",
        }
    }
}

/// What a traced operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    Write,
    Atomic,
    Writeback,
    Invalidate,
    Flush,
    Send,
    Recv,
    Compute,
}

/// Which address domain a traced operation touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrClass {
    /// Rack-shared global memory (through the node cache).
    Global,
    /// Rack-shared global memory, bypassing the cache (uncached/atomic).
    GlobalUncached,
    /// Node-private local memory.
    Local,
    /// The message fabric (no memory address).
    Fabric,
    /// No address (pure compute charge).
    None,
}

/// One recorded operation: kind, address class, when (simulated), and how
/// much simulated time it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the operation did.
    pub kind: OpKind,
    /// Which address domain it touched.
    pub addr_class: AddrClass,
    /// Simulated timestamp at which the operation completed.
    pub at_ns: u64,
    /// Simulated nanoseconds the operation cost.
    pub cost_ns: u64,
}

/// Map a simulated cost to its histogram bucket.
pub fn bucket_index(cost_ns: u64) -> usize {
    if cost_ns == 0 {
        0
    } else {
        (64 - cost_ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive-exclusive `[lo, hi)` bounds of bucket `i` in nanoseconds.
/// The final bucket's `hi` is `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        _ if i >= HIST_BUCKETS - 1 => (1 << (HIST_BUCKETS - 2), u64::MAX),
        _ => (1 << (i - 1), 1 << i),
    }
}

/// A fixed-size power-of-two latency histogram over simulated nanoseconds.
///
/// Thread-safe and lock-free; recording is one relaxed `fetch_add` per
/// counter touched.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation costing `cost_ns` simulated nanoseconds.
    pub fn record(&self, cost_ns: u64) {
        self.buckets[bucket_index(cost_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(cost_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(cost_ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket and summary counter.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// An owned copy of a [`LatencyHistogram`], mergeable across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket operation counts (see [`bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total operations recorded.
    pub count: u64,
    /// Sum of all recorded costs, in simulated nanoseconds.
    pub total_ns: u64,
    /// Largest single recorded cost.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (rack-wide merging).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean cost in simulated nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate percentile (`p` in `[0, 100]`): the upper bound of the
    /// bucket containing the `p`-th percentile operation.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                // The true value lies in [lo, hi); report the bucket's
                // upper bound, capped by the observed maximum.
                return if hi == u64::MAX {
                    self.max_ns.max(lo)
                } else {
                    (hi - 1).min(self.max_ns)
                };
            }
        }
        self.max_ns
    }

    /// Render the non-empty buckets as a compact one-line summary, e.g.
    /// `n=12 mean=480ns p50<=511ns p99<=511ns max=520ns`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={}ns p50<={}ns p99<={}ns max={}ns",
            self.count,
            self.mean_ns(),
            self.percentile_ns(50.0),
            self.percentile_ns(99.0),
            self.max_ns,
        )
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug)]
struct TraceInner {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

/// A bounded ring of [`TraceEvent`]s with cheap on/off.
///
/// Disabled by default: a disabled ring's [`TraceRing::record`] is a
/// single relaxed atomic load, so leaving tracing compiled into every hot
/// path costs nothing measurable. When the ring is full, the oldest
/// events are overwritten and counted in [`TraceRing::dropped`].
#[derive(Debug)]
pub struct TraceRing {
    enabled: AtomicBool,
    inner: Mutex<TraceInner>,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// A disabled ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(TraceInner {
                buf: Vec::with_capacity(capacity.min(1024)),
                head: 0,
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (already-captured events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Record one event; a no-op unless enabled.
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.buf.len() < inner.capacity {
            inner.buf.push(event);
        } else {
            let head = inner.head;
            inner.buf[head] = event;
            inner.head = (head + 1) % inner.capacity;
            inner.dropped += 1;
        }
    }

    /// Captured events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.buf.len());
        out.extend_from_slice(&inner.buf[inner.head..]);
        out.extend_from_slice(&inner.buf[..inner.head]);
        out
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Drop all captured events (the enabled flag is unchanged).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.head = 0;
        inner.dropped = 0;
    }
}

/// A named monotonically-increasing counter cell handed out by a
/// [`CounterRegistry`]. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Registry of `(subsystem, counter)` cells for the layers above the
/// simulator.
///
/// Subsystems register counters lazily by name ("page_cache"/"hit",
/// "fault_box"/"entries", "ipc"/"messages", …); hot paths should hold the
/// returned [`Counter`] rather than re-looking it up.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    cells: Mutex<BTreeMap<(&'static str, &'static str), Counter>>,
    /// Debug-build budget enforcement for [`CounterRegistry::add`]: the
    /// number of one-shot calls per counter, so hot loops that should
    /// hold a [`Counter`] fail loudly in tests instead of silently
    /// serializing on the registry lock.
    #[cfg(debug_assertions)]
    one_shot_calls: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (registering on first use) the counter `subsystem/name`.
    pub fn counter(&self, subsystem: &'static str, name: &'static str) -> Counter {
        self.cells
            .lock()
            .entry((subsystem, name))
            .or_default()
            .clone()
    }

    /// One-shot add to `subsystem/name` (registers on first use).
    ///
    /// Every call re-takes the registry mutex and a tree lookup, so this
    /// is for *cold* paths only (recovery, migrations, policy switches).
    /// **Do not call `add` in a loop or on a per-operation path** — hold
    /// the [`Counter`] from [`CounterRegistry::counter`] once and bump
    /// that instead; it is a single relaxed atomic. Debug builds enforce
    /// a generous per-counter call budget to catch violations in tests.
    pub fn add(&self, subsystem: &'static str, name: &'static str, delta: u64) {
        #[cfg(debug_assertions)]
        {
            let mut calls = self.one_shot_calls.lock();
            let n = calls.entry((subsystem, name)).or_insert(0);
            *n += 1;
            debug_assert!(
                *n < (1 << 20),
                "CounterRegistry::add(\"{subsystem}\", \"{name}\") called {n} times — \
                 this is a hot path; hold a Counter from CounterRegistry::counter() instead"
            );
        }
        self.counter(subsystem, name).add(delta);
    }

    /// Snapshot every registered counter, sorted by subsystem then name.
    pub fn snapshot(&self) -> Vec<SubsystemCounter> {
        self.cells
            .lock()
            .iter()
            .map(|(&(subsystem, name), cell)| SubsystemCounter {
                subsystem: subsystem.to_string(),
                name: name.to_string(),
                value: cell.get(),
            })
            .collect()
    }
}

/// One registered counter's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsystemCounter {
    /// Owning subsystem, e.g. `"page_cache"`.
    pub subsystem: String,
    /// Counter name within the subsystem, e.g. `"hit"`.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Merge counter snapshots from several nodes, summing same-named cells.
pub fn merge_counters(snapshots: &[Vec<SubsystemCounter>]) -> Vec<SubsystemCounter> {
    let mut merged: BTreeMap<(String, String), u64> = BTreeMap::new();
    for snap in snapshots {
        for c in snap {
            *merged
                .entry((c.subsystem.clone(), c.name.clone()))
                .or_default() += c.value;
        }
    }
    merged
        .into_iter()
        .map(|((subsystem, name), value)| SubsystemCounter {
            subsystem,
            name,
            value,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // bounds and index agree on every bucket edge
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo edge of bucket {i}");
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), i, "hi edge of bucket {i}");
                assert_eq!(bucket_index(hi), i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let h = LatencyHistogram::new();
        for ns in [0, 1, 90, 480, 480, 700] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.total_ns, 1751);
        assert_eq!(s.max_ns, 700);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[7], 1); // 90 in [64,128)
        assert_eq!(s.buckets[9], 2); // 480 in [256,512)
        assert_eq!(s.buckets[10], 1); // 700 in [512,1024)
        assert_eq!(s.mean_ns(), 1751 / 6);
        assert_eq!(s.percentile_ns(100.0), 700);
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
        a.record(100);
        b.record(100);
        b.record(5000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets[bucket_index(100)], 2);
        assert_eq!(m.buckets[bucket_index(5000)], 1);
        assert_eq!(m.max_ns, 5000);
    }

    #[test]
    fn histogram_reset_zeroes() {
        let h = LatencyHistogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn percentiles_pick_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8,16)
        }
        h.record(1000); // bucket [512,1024)
        let s = h.snapshot();
        assert_eq!(s.percentile_ns(50.0), 15);
        assert_eq!(s.percentile_ns(99.0), 15);
        assert_eq!(s.percentile_ns(100.0), 1000);
    }

    #[test]
    fn trace_ring_disabled_records_nothing() {
        let t = TraceRing::with_capacity(4);
        t.record(TraceEvent {
            kind: OpKind::Read,
            addr_class: AddrClass::Global,
            at_ns: 1,
            cost_ns: 1,
        });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn trace_ring_wraps_oldest_first() {
        let t = TraceRing::with_capacity(3);
        t.enable();
        for i in 0..5u64 {
            t.record(TraceEvent {
                kind: OpKind::Write,
                addr_class: AddrClass::Local,
                at_ns: i,
                cost_ns: i,
            });
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(t.dropped(), 2);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn registry_counters_accumulate_and_merge() {
        let r = CounterRegistry::new();
        let hits = r.counter("page_cache", "hit");
        hits.incr();
        hits.add(2);
        r.add("ipc", "messages", 5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].subsystem, "ipc");
        assert_eq!(snap[0].value, 5);
        assert_eq!(snap[1].name, "hit");
        assert_eq!(snap[1].value, 3);

        let merged = merge_counters(&[snap.clone(), snap]);
        assert_eq!(merged[0].value, 10);
        assert_eq!(merged[1].value, 6);
    }
}
