//! Vendored deterministic PRNG.
//!
//! The hermetic build bans the `rand` crate, so the simulator carries its
//! own small generator: SplitMix64 (Steele, Lea & Flood, OOPSLA '14) for
//! seeding and sequence generation, with an xorshift-style output mix. It
//! is *not* cryptographic — it exists to make fault schedules and test
//! case generation reproducible from a single `u64` seed.

/// A seedable SplitMix64 generator.
///
/// Identical seeds produce identical sequences on every platform, which is
/// what fault-injection replay and the deterministic property tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, negligible for simulator-sized bounds.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` (half-open range). `lo < hi` required.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty gen_range");
        range.start + self.next_below(range.end - range.start)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniformly random bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_ratio(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A fresh random byte vector of length `len`.
    pub fn gen_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// Split off an independent child generator (for sub-streams that must
    /// not perturb the parent's sequence).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(0xF1AC);
        let mut b = SplitMix64::new(0xF1AC);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference output of SplitMix64 for seed 1234567, as published in
        // the xoshiro/splitmix reference implementation's test vectors.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            assert!(r.gen_index(7) < 7);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_is_deterministic_and_nonconstant() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        let (va, vb) = (a.gen_bytes(33), b.gen_bytes(33));
        assert_eq!(va, vb);
        assert!(va.iter().any(|&x| x != va[0]), "bytes should vary");
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut r = SplitMix64::new(8);
        assert!((0..50).all(|_| !r.gen_ratio(0.0)));
        assert!((0..50).all(|_| r.gen_ratio(1.0)));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(11);
        let mut child = parent.split();
        let after_split = parent.next_u64();
        // Re-derive: the child must not have consumed parent state beyond
        // the single split draw.
        let mut parent2 = SplitMix64::new(11);
        let _ = parent2.split();
        assert_eq!(parent2.next_u64(), after_split);
        let _ = child.next_u64();
    }
}
