//! Vendored deterministic PRNG.
//!
//! The hermetic build bans the `rand` crate, so the simulator carries its
//! own small generator: SplitMix64 (Steele, Lea & Flood, OOPSLA '14) for
//! seeding and sequence generation, with an xorshift-style output mix. It
//! is *not* cryptographic — it exists to make fault schedules and test
//! case generation reproducible from a single `u64` seed.

/// A seedable SplitMix64 generator.
///
/// Identical seeds produce identical sequences on every platform, which is
/// what fault-injection replay and the deterministic property tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, negligible for simulator-sized bounds.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` (half-open range). `lo < hi` required.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty gen_range");
        range.start + self.next_below(range.end - range.start)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniformly random bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_ratio(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A fresh random byte vector of length `len`.
    pub fn gen_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// Split off an independent child generator (for sub-streams that must
    /// not perturb the parent's sequence).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// A Zipf-distributed sampler over `{0, 1, …, n-1}` with rank `i` drawn
/// proportionally to `(i + 1)^-skew` — the canonical skewed page/key
/// popularity model for tiering and caching experiments.
///
/// The CDF is precomputed once (`O(n)` memory, `O(log n)` per sample via
/// binary search), and sampling consumes exactly one [`SplitMix64`] draw,
/// so zipfian workloads replay deterministically from a seed.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `skew` (`skew = 0` is
    /// uniform; `skew ≈ 1` is the classic heavy-skew web/page workload).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `skew` is negative/non-finite.
    pub fn new(n: usize, skew: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            skew >= 0.0 && skew.is_finite(),
            "zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-skew);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true: `new` rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank in `[0, n)` using a single uniform draw from `rng`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        // 53-bit uniform in [0, 1) — the standard double conversion.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(0xF1AC);
        let mut b = SplitMix64::new(0xF1AC);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference output of SplitMix64 for seed 1234567, as published in
        // the xoshiro/splitmix reference implementation's test vectors.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            assert!(r.gen_index(7) < 7);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_is_deterministic_and_nonconstant() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        let (va, vb) = (a.gen_bytes(33), b.gen_bytes(33));
        assert_eq!(va, vb);
        assert!(va.iter().any(|&x| x != va[0]), "bytes should vary");
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut r = SplitMix64::new(8);
        assert!((0..50).all(|_| !r.gen_ratio(0.0)));
        assert!((0..50).all(|_| r.gen_ratio(1.0)));
    }

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let zipf = Zipf::new(512, 0.99);
        let mut rng = SplitMix64::new(0x0F1A_C21F);
        let mut top64 = 0u64;
        const DRAWS: u64 = 20_000;
        for _ in 0..DRAWS {
            let r = zipf.sample(&mut rng);
            assert!(r < 512);
            if r < 64 {
                top64 += 1;
            }
        }
        // Analytically H(64)/H(512) ≈ 0.61 at skew 0.99; allow slack.
        assert!(
            top64 > DRAWS / 2,
            "top-64 ranks got only {top64}/{DRAWS} draws"
        );
    }

    #[test]
    fn zipf_is_deterministic() {
        let zipf = Zipf::new(100, 0.99);
        let draw = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..50).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn zipf_skew_zero_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut seen = [0u64; 4];
        for _ in 0..4000 {
            seen[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &count) in seen.iter().enumerate() {
            assert!(
                (700..=1300).contains(&count),
                "rank {rank} drew {count}/4000 — not uniform"
            );
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(11);
        let mut child = parent.split();
        let after_split = parent.next_u64();
        // Re-derive: the child must not have consumed parent state beyond
        // the single split draw.
        let mut parent2 = SplitMix64::new(11);
        let _ = parent2.split();
        assert_eq!(parent2.next_u64(), after_split);
        let _ = child.next_u64();
    }
}
