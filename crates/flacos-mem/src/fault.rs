//! Demand paging: frame allocation and page-fault handling.
//!
//! Paper §3.3: *"page fault handling in FlacOS must be capable of
//! allocating and loading pages into global memory"* — and, because the
//! page table is heterogeneous, into node-local memory too. The handler
//! implements demand-zero allocation with a placement policy, minor
//! faults (mapping already present), write-protection faults resolved by
//! copy-on-write, and fault accounting.

use crate::addr::{PhysFrame, PAGE_SIZE};
use crate::address_space::AddressSpace;
use crate::page_table::Pte;
use rack_sim::sync::Mutex;
use rack_sim::{GAddr, GlobalMemory, LAddr, NodeCtx, SimError};
use std::sync::Arc;

/// Page-aligned frame allocator over global memory, with a free list so
/// unmapped frames are recycled.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    global: Arc<GlobalMemory>,
    // coherent-local: recycle list of frame *addresses*; the frames are
    // global but alloc/free charge the fabric for them, and losing the
    // list only leaks frames — it cannot corrupt shared state.
    free: Arc<Mutex<Vec<GAddr>>>,
}

impl FrameAllocator {
    /// A frame allocator over `global`.
    pub fn new(global: Arc<GlobalMemory>) -> Self {
        FrameAllocator {
            global,
            free: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Allocate one page-aligned global frame.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&self, ctx: &NodeCtx) -> Result<GAddr, SimError> {
        ctx.charge(ctx.latency().global_atomic_ns);
        if let Some(f) = self.free.lock().pop() {
            return Ok(f);
        }
        self.global.alloc(PAGE_SIZE, PAGE_SIZE)
    }

    /// Return a frame for reuse.
    pub fn free(&self, ctx: &NodeCtx, frame: GAddr) {
        ctx.charge(ctx.latency().global_atomic_ns);
        self.free.lock().push(frame);
    }

    /// Frames currently on the free list.
    pub fn free_frames(&self) -> usize {
        self.free.lock().len()
    }
}

/// Where the handler places newly faulted-in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePlacement {
    /// Always allocate in the rack-shared global pool (shareable pages).
    Global,
    /// Allocate in the faulting node's local memory (private, fastest).
    Local,
}

/// How a fault was resolved, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultResolution {
    /// Mapping already present with sufficient permissions.
    Minor,
    /// A fresh zero frame was allocated and mapped.
    MajorZeroFill,
    /// Write to a read-only mapping resolved by copy-on-write.
    CopyOnWrite,
    /// The page is mid-migration between tiers: the caller must retry
    /// after the daemon commits or aborts (the old frame stays
    /// authoritative, so no torn read is possible either way).
    Retry,
}

/// Fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Minor faults (spurious / permission-satisfied).
    pub minor: u64,
    /// Zero-fill major faults.
    pub major: u64,
    /// Copy-on-write resolutions.
    pub cow: u64,
    /// Faults bounced off an in-flight tier migration.
    pub retries: u64,
}

/// The page-fault handler for one node (placement decisions are
/// per-handler; the page table itself is shared).
#[derive(Debug)]
pub struct PageFaultHandler {
    frames: FrameAllocator,
    placement: PagePlacement,
    // coherent-local: per-node handler counters (the handler is a
    // node-local object; the page table it faults into is shared).
    stats: Mutex<FaultStats>,
}

impl PageFaultHandler {
    /// A handler drawing global frames from `frames` and placing new
    /// pages per `placement`.
    pub fn new(frames: FrameAllocator, placement: PagePlacement) -> Self {
        PageFaultHandler {
            frames,
            placement,
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Allocate a page-aligned frame in `ctx`'s local memory.
    fn alloc_local_frame(ctx: &NodeCtx) -> Result<LAddr, SimError> {
        // The local bump allocator aligns to 8; over-allocate and round up.
        let raw = ctx.local_alloc(PAGE_SIZE * 2)?;
        Ok(LAddr((raw.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)))
    }

    /// Handle a fault at virtual page `vpn` of `space`, for a read
    /// (`write == false`) or write access.
    ///
    /// # Errors
    ///
    /// Out-of-memory and fabric errors are propagated.
    pub fn handle(
        &self,
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        vpn: u64,
        write: bool,
    ) -> Result<FaultResolution, SimError> {
        let existing = space.translate(ctx, crate::addr::VirtAddr::from_vpn(vpn))?;
        match existing {
            Some(pte) if pte.migrating => {
                self.stats.lock().retries += 1;
                Ok(FaultResolution::Retry)
            }
            Some(pte) if pte.writable || !write => {
                self.stats.lock().minor += 1;
                Ok(FaultResolution::Minor)
            }
            Some(pte) => {
                // Write to a read-only page: copy-on-write into a frame
                // this handler's policy chooses.
                let new_frame = self.place_frame(ctx)?;
                let mut content = vec![0u8; PAGE_SIZE];
                space.read_frame(ctx, pte.frame, &mut content)?;
                space.write_frame(ctx, new_frame, &content)?;
                space.map(ctx, vpn, Pte::new(new_frame, true))?;
                self.stats.lock().cow += 1;
                Ok(FaultResolution::CopyOnWrite)
            }
            None => {
                // Demand-zero fill.
                let frame = self.place_frame(ctx)?;
                space.write_frame(ctx, frame, &[0u8; PAGE_SIZE])?;
                space.map(ctx, vpn, Pte::new(frame, true))?;
                self.stats.lock().major += 1;
                Ok(FaultResolution::MajorZeroFill)
            }
        }
    }

    fn place_frame(&self, ctx: &NodeCtx) -> Result<PhysFrame, SimError> {
        Ok(match self.placement {
            PagePlacement::Global => PhysFrame::Global(self.frames.alloc(ctx)?),
            PagePlacement::Local => PhysFrame::Local(ctx.id(), Self::alloc_local_frame(ctx)?),
        })
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// The global frame allocator.
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_space::AddressSpace;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use rack_sim::{Rack, RackConfig};

    fn setup(placement: PagePlacement) -> (Rack, AddressSpace, PageFaultHandler) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let handler = PageFaultHandler::new(FrameAllocator::new(rack.global().clone()), placement);
        (rack, space, handler)
    }

    #[test]
    fn zero_fill_then_minor() {
        let (rack, space, handler) = setup(PagePlacement::Global);
        let n0 = rack.node(0);
        assert_eq!(
            handler.handle(&n0, &space, 5, true).unwrap(),
            FaultResolution::MajorZeroFill
        );
        assert_eq!(
            handler.handle(&n0, &space, 5, false).unwrap(),
            FaultResolution::Minor
        );
        assert_eq!(
            handler.handle(&n0, &space, 5, true).unwrap(),
            FaultResolution::Minor
        );
        let s = handler.stats();
        assert_eq!((s.major, s.minor, s.cow), (1, 2, 0));
    }

    #[test]
    fn fault_on_migrating_page_retries() {
        let (rack, space, handler) = setup(PagePlacement::Global);
        let n0 = rack.node(0);
        handler.handle(&n0, &space, 4, true).unwrap();
        let pte = space
            .translate(&n0, crate::addr::VirtAddr::from_vpn(4))
            .unwrap()
            .unwrap();
        space.table().map(&n0, 4, pte.begin_migration()).unwrap();
        assert_eq!(
            handler.handle(&n0, &space, 4, false).unwrap(),
            FaultResolution::Retry
        );
        assert_eq!(
            handler.handle(&n0, &space, 4, true).unwrap(),
            FaultResolution::Retry
        );
        space.table().map(&n0, 4, pte.end_migration()).unwrap();
        assert_eq!(
            handler.handle(&n0, &space, 4, true).unwrap(),
            FaultResolution::Minor
        );
        assert_eq!(handler.stats().retries, 2);
    }

    #[test]
    fn zero_filled_page_reads_zero_rack_wide() {
        let (rack, space, handler) = setup(PagePlacement::Global);
        let (n0, n1) = (rack.node(0), rack.node(1));
        handler.handle(&n0, &space, 3, false).unwrap();
        let mut buf = [7u8; 64];
        space
            .read(&n1, crate::addr::VirtAddr::from_vpn(3), &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn cow_preserves_content_and_remaps_writable() {
        let (rack, space, handler) = setup(PagePlacement::Global);
        let n0 = rack.node(0);
        // Map a read-only page with known content.
        let frame = PhysFrame::Global(handler.frames().alloc(&n0).unwrap());
        space.write_frame(&n0, frame, &[9u8; PAGE_SIZE]).unwrap();
        space.table().map(&n0, 2, Pte::new(frame, false)).unwrap();

        assert_eq!(
            handler.handle(&n0, &space, 2, true).unwrap(),
            FaultResolution::CopyOnWrite
        );
        let pte = space
            .translate(&n0, crate::addr::VirtAddr::from_vpn(2))
            .unwrap()
            .unwrap();
        assert!(pte.writable);
        assert_ne!(pte.frame, frame, "fresh frame");
        let mut buf = [0u8; 16];
        space
            .read(&n0, crate::addr::VirtAddr::from_vpn(2), &mut buf)
            .unwrap();
        assert_eq!(buf, [9u8; 16]);
    }

    #[test]
    fn local_placement_produces_local_frames() {
        let (rack, space, handler) = setup(PagePlacement::Local);
        let n0 = rack.node(0);
        handler.handle(&n0, &space, 1, true).unwrap();
        let pte = space
            .translate(&n0, crate::addr::VirtAddr::from_vpn(1))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame.home_node(), Some(n0.id()));
    }

    #[test]
    fn frame_allocator_recycles() {
        let rack = Rack::new(RackConfig::small_test());
        let fa = FrameAllocator::new(rack.global().clone());
        let n0 = rack.node(0);
        let f = fa.alloc(&n0).unwrap();
        assert!(f.is_aligned(PAGE_SIZE as u64));
        fa.free(&n0, f);
        assert_eq!(fa.free_frames(), 1);
        assert_eq!(fa.alloc(&n0).unwrap(), f);
    }
}
