//! Lightweight page-access telemetry for the tiering daemon.
//!
//! The paper's tiering argument needs the OS to *observe* its own page
//! traffic cheaply: sampling every Nth successful page-table walk into a
//! bounded ring is the software analogue of hardware access-bit scanning.
//! [`AddressSpace::attach_sampler`](crate::AddressSpace::attach_sampler)
//! feeds a ring from the translation path; `flacos-tier` drains it on
//! each sim-time tick and folds the samples into its hotness tracker.
//!
//! The ring is deterministic: sampling is a modular counter (not random),
//! so the same access sequence always yields the same sample stream —
//! required for byte-identical storm replay.

use rack_sim::sync::Mutex;
use rack_sim::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;

/// One sampled page access: who touched which page of which space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccess {
    /// The node whose translation was sampled.
    pub node: NodeId,
    /// The address space the page belongs to.
    pub asid: u64,
    /// The virtual page number that was touched.
    pub vpn: u64,
}

/// Telemetry counters for one ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Accesses offered to the sampler.
    pub seen: u64,
    /// Accesses that passed the 1-in-N sample gate.
    pub sampled: u64,
    /// Samples evicted because the ring was full before a drain.
    pub dropped: u64,
}

/// A bounded, sampled ring of page accesses shared between the
/// translation path (producer) and the tiering daemon (consumer).
#[derive(Debug)]
pub struct AccessRing {
    // coherent-local: bounded, loss-tolerant sample buffer drained by
    // the node's own tiering daemon; never consulted cross-node.
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    buf: VecDeque<PageAccess>,
    capacity: usize,
    sample_period: u64,
    stats: RingStats,
}

impl AccessRing {
    /// A ring holding at most `capacity` samples, keeping one access in
    /// every `sample_period` (1 = keep everything).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `sample_period` is zero.
    pub fn new(capacity: usize, sample_period: u64) -> Arc<Self> {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(sample_period > 0, "sample period must be positive");
        Arc::new(AccessRing {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                sample_period,
                stats: RingStats::default(),
            }),
        })
    }

    /// Offer one access; kept only when the deterministic 1-in-N gate
    /// fires. A full ring evicts its oldest sample (newest data wins).
    pub fn record(&self, node: NodeId, asid: u64, vpn: u64) {
        let mut inner = self.inner.lock();
        inner.stats.seen += 1;
        if !inner.stats.seen.is_multiple_of(inner.sample_period) {
            return;
        }
        inner.stats.sampled += 1;
        if inner.buf.len() == inner.capacity {
            inner.buf.pop_front();
            inner.stats.dropped += 1;
        }
        inner.buf.push_back(PageAccess { node, asid, vpn });
    }

    /// Take every buffered sample, oldest first.
    pub fn drain(&self) -> Vec<PageAccess> {
        self.inner.lock().buf.drain(..).collect()
    }

    /// Telemetry counters so far.
    pub fn stats(&self) -> RingStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_one_keeps_everything_in_order() {
        let ring = AccessRing::new(8, 1);
        for vpn in 0..5 {
            ring.record(NodeId(0), 1, vpn);
        }
        let got: Vec<u64> = ring.drain().iter().map(|a| a.vpn).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn sampling_is_a_deterministic_modular_gate() {
        let ring = AccessRing::new(64, 4);
        for vpn in 1..=16 {
            ring.record(NodeId(2), 9, vpn);
        }
        // Every 4th offer is kept: offers 4, 8, 12, 16.
        let got: Vec<u64> = ring.drain().iter().map(|a| a.vpn).collect();
        assert_eq!(got, vec![4, 8, 12, 16]);
        let s = ring.stats();
        assert_eq!((s.seen, s.sampled, s.dropped), (16, 4, 0));
    }

    #[test]
    fn full_ring_evicts_oldest() {
        let ring = AccessRing::new(2, 1);
        for vpn in 0..5 {
            ring.record(NodeId(0), 0, vpn);
        }
        let got: Vec<u64> = ring.drain().iter().map(|a| a.vpn).collect();
        assert_eq!(got, vec![3, 4], "newest samples win");
        assert_eq!(ring.stats().dropped, 3);
    }
}
