//! The shared heterogeneous page table.
//!
//! Paper §3.3: *"The page tables are stored in global memory, enabling
//! the address spaces sharing and multi-threading support across the
//! entire rack. Moreover, FlacOS page tables are capable of indexing both
//! local and global memory and unifies them into a single level address
//! space."*
//!
//! The table is a [`flacdk::ds::radix::RadixTree`] (RCU copy-on-write) in
//! global memory mapping virtual page number → encoded [`Pte`]. Any node
//! can walk it; updates are lock-free and incoherence-safe by
//! construction (readers only ever see immutable published nodes).

use crate::addr::{PageSize, PhysFrame, PAGE_SIZE};
use flacdk::alloc::GlobalAllocator;
use flacdk::ds::radix::RadixTree;
use flacdk::sync::rcu::{EpochManager, RcuReadGuard};
use flacdk::sync::reclaim::RetireList;
use rack_sim::{GAddr, GlobalMemory, LAddr, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// A decoded page-table entry: frame location plus permissions and the
/// migration guard bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical frame.
    pub frame: PhysFrame,
    /// Whether the mapping permits writes.
    pub writable: bool,
    /// Set while the tiering daemon copies this page between tiers. The
    /// old frame stays authoritative; accessors must retry (never read
    /// the in-flight copy, which may be torn under incoherent caches).
    pub migrating: bool,
    /// Translation granularity. A [`PageSize::Huge`] entry lives at a
    /// 512-aligned region-head vpn and maps the whole 2 MiB region with
    /// one PTE; [`crate::AddressSpace::translate`] synthesizes per-vpn
    /// 4 KiB views from it.
    pub page_size: PageSize,
}

const TIER_LOCAL: u64 = 1 << 0;
const WRITABLE: u64 = 1 << 1;
const NODE_SHIFT: u64 = 2;
const NODE_MASK: u64 = 0x1ff << NODE_SHIFT; // 512 nodes
const MIGRATING: u64 = 1 << 11;
// Bits 12.. hold the frame address, so the huge flag takes the top bit
// (frame addresses in the simulator never approach 2^63).
const HUGE: u64 = 1 << 63;

impl Pte {
    /// A plain (non-migrating) 4 KiB entry for `frame`.
    pub fn new(frame: PhysFrame, writable: bool) -> Pte {
        Pte {
            frame,
            writable,
            migrating: false,
            page_size: PageSize::Base,
        }
    }

    /// This entry as a 2 MiB huge mapping (store it at the 512-aligned
    /// region-head vpn; `frame` is the base of a contiguous 2 MiB span).
    #[must_use]
    pub fn huge(self) -> Pte {
        Pte {
            page_size: PageSize::Huge,
            ..self
        }
    }

    /// This entry with the migration guard bit set (old frame stays
    /// authoritative while the daemon copies).
    pub fn begin_migration(self) -> Pte {
        Pte {
            migrating: true,
            ..self
        }
    }

    /// This entry with the migration guard bit cleared.
    pub fn end_migration(self) -> Pte {
        Pte {
            migrating: false,
            ..self
        }
    }

    /// Encode to the radix tree's u64 value. Frame addresses must be
    /// page-aligned so the low 12 bits are free for flags.
    ///
    /// # Panics
    ///
    /// Panics on a non-page-aligned frame address.
    pub fn encode(self) -> u64 {
        let mut bits = match self.frame {
            PhysFrame::Global(GAddr(a)) => {
                assert_eq!(a % PAGE_SIZE as u64, 0, "frame must be page-aligned");
                a
            }
            PhysFrame::Local(node, LAddr(a)) => {
                assert_eq!(a % PAGE_SIZE, 0, "frame must be page-aligned");
                assert!(node.0 < 512, "node id exceeds PTE encoding");
                a as u64 | TIER_LOCAL | ((node.0 as u64) << NODE_SHIFT)
            }
        };
        if self.writable {
            bits |= WRITABLE;
        }
        if self.migrating {
            bits |= MIGRATING;
        }
        if self.page_size == PageSize::Huge {
            bits |= HUGE;
        }
        bits
    }

    /// Decode from the radix tree's u64 value.
    pub fn decode(bits: u64) -> Pte {
        let writable = bits & WRITABLE != 0;
        let migrating = bits & MIGRATING != 0;
        let page_size = if bits & HUGE != 0 {
            PageSize::Huge
        } else {
            PageSize::Base
        };
        let addr = bits & !(PAGE_SIZE as u64 - 1) & !HUGE;
        let frame = if bits & TIER_LOCAL != 0 {
            let node = NodeId(((bits & NODE_MASK) >> NODE_SHIFT) as usize);
            PhysFrame::Local(node, LAddr(addr as usize))
        } else {
            PhysFrame::Global(GAddr(addr))
        };
        Pte {
            frame,
            writable,
            migrating,
            page_size,
        }
    }
}

/// Shared-memory page table for one address space.
#[derive(Debug, Clone)]
pub struct PageTable {
    tree: RadixTree,
    alloc: GlobalAllocator,
    epochs: Arc<EpochManager>,
    retired: RetireList,
}

impl PageTable {
    /// Allocate an empty page table (4 radix levels → 16M pages → 64 GiB
    /// of virtual address space).
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        global: &GlobalMemory,
        alloc: GlobalAllocator,
        epochs: Arc<EpochManager>,
        retired: RetireList,
    ) -> Result<Self, SimError> {
        Ok(PageTable {
            tree: RadixTree::alloc(global, 4)?,
            alloc,
            epochs,
            retired,
        })
    }

    /// Map virtual page `vpn` to `pte`, returning any previous mapping.
    ///
    /// # Errors
    ///
    /// Propagates radix/allocation errors.
    pub fn map(&self, ctx: &NodeCtx, vpn: u64, pte: Pte) -> Result<Option<Pte>, SimError> {
        Ok(self
            .tree
            .insert(
                ctx,
                &self.alloc,
                &self.epochs,
                &self.retired,
                vpn,
                pte.encode(),
            )?
            .map(Pte::decode))
    }

    /// Remove the mapping for `vpn`, returning it if present.
    ///
    /// # Errors
    ///
    /// Propagates radix/allocation errors.
    pub fn unmap(&self, ctx: &NodeCtx, vpn: u64) -> Result<Option<Pte>, SimError> {
        Ok(self
            .tree
            .remove(ctx, &self.alloc, &self.epochs, &self.retired, vpn)?
            .map(Pte::decode))
    }

    /// Walk the table for `vpn` under an RCU read guard (the software
    /// analogue of an MMU walk; per-node caching of walks lives in
    /// [`crate::tlb::Tlb`]).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn walk(
        &self,
        ctx: &NodeCtx,
        guard: &RcuReadGuard,
        vpn: u64,
    ) -> Result<Option<Pte>, SimError> {
        Ok(self.tree.get(ctx, guard, vpn)?.map(Pte::decode))
    }

    /// Reclaim page-table nodes displaced by prior updates.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn reclaim(&self, ctx: &NodeCtx) -> Result<usize, SimError> {
        self.retired.reclaim(ctx, &self.epochs, &self.alloc)
    }

    /// The epoch manager guarding this table's readers.
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, PageTable) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let pt = PageTable::alloc(rack.global(), alloc, epochs, RetireList::new()).unwrap();
        (rack, pt)
    }

    #[test]
    fn pte_roundtrip_global_and_local() {
        let cases = [
            Pte::new(PhysFrame::Global(GAddr(0x3000)), true),
            Pte::new(PhysFrame::Global(GAddr(0)), false),
            Pte::new(PhysFrame::Local(NodeId(3), LAddr(0x7000)), true),
            Pte::new(PhysFrame::Local(NodeId(511), LAddr(0x1000)), false),
        ];
        for pte in cases {
            assert_eq!(Pte::decode(pte.encode()), pte);
            // The migration guard bit survives the same roundtrip for
            // every frame/permission combination.
            let mid_flight = pte.begin_migration();
            assert!(mid_flight.migrating);
            assert_eq!(Pte::decode(mid_flight.encode()), mid_flight);
            assert_eq!(mid_flight.end_migration(), pte);
        }
    }

    #[test]
    fn huge_pte_roundtrip_preserves_size_and_flags() {
        let cases = [
            Pte::new(PhysFrame::Global(GAddr(0x20_0000)), true).huge(),
            Pte::new(PhysFrame::Global(GAddr(0x3000)), false).huge(),
            Pte::new(PhysFrame::Local(NodeId(5), LAddr(0x40_0000)), true).huge(),
        ];
        for pte in cases {
            assert_eq!(pte.page_size, PageSize::Huge);
            assert_eq!(Pte::decode(pte.encode()), pte);
            let mid_flight = pte.begin_migration();
            let back = Pte::decode(mid_flight.encode());
            assert_eq!(back, mid_flight);
            assert_eq!(back.page_size, PageSize::Huge);
            assert_eq!(back.end_migration(), pte);
        }
        // The huge flag never leaks into the decoded frame address.
        let base = Pte::new(PhysFrame::Global(GAddr(0x5000)), true);
        assert_eq!(base.encode() | (1 << 63), base.huge().encode());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn misaligned_frame_panics() {
        Pte::new(PhysFrame::Global(GAddr(0x3001)), false).encode();
    }

    #[test]
    fn map_walk_unmap_visible_rack_wide() {
        let (rack, pt) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let pte = Pte::new(PhysFrame::Global(GAddr(0x5000)), true);
        assert_eq!(pt.map(&n0, 7, pte).unwrap(), None);

        // Node 1 walks the same table without any explicit flushing.
        let h1 = pt.epochs().handle(n1.clone());
        let g = h1.read_lock().unwrap();
        assert_eq!(pt.walk(&n1, &g, 7).unwrap(), Some(pte));
        assert_eq!(pt.walk(&n1, &g, 8).unwrap(), None);
        drop(g);

        assert_eq!(pt.unmap(&n1, 7).unwrap(), Some(pte));
        let g = pt.epochs().handle(n0.clone()).read_lock().unwrap();
        assert_eq!(pt.walk(&n0, &g, 7).unwrap(), None);
    }

    #[test]
    fn remap_returns_previous() {
        let (rack, pt) = setup();
        let n0 = rack.node(0);
        let a = Pte::new(PhysFrame::Global(GAddr(0x1000)), false);
        let b = Pte::new(PhysFrame::Local(NodeId(1), LAddr(0x2000)), true);
        pt.map(&n0, 1, a).unwrap();
        assert_eq!(pt.map(&n0, 1, b).unwrap(), Some(a));
        pt.reclaim(&n0).unwrap();
        let g = pt.epochs().handle(n0.clone()).read_lock().unwrap();
        assert_eq!(pt.walk(&n0, &g, 1).unwrap(), Some(b));
    }

    #[test]
    fn many_mappings_with_reclaim() {
        let (rack, pt) = setup();
        let n0 = rack.node(0);
        for vpn in 0..300u64 {
            let pte = Pte::new(
                PhysFrame::Global(GAddr(vpn * PAGE_SIZE as u64)),
                vpn % 2 == 0,
            );
            pt.map(&n0, vpn, pte).unwrap();
            pt.reclaim(&n0).unwrap();
        }
        let g = pt.epochs().handle(n0.clone()).read_lock().unwrap();
        for vpn in (0..300u64).step_by(37) {
            let pte = pt.walk(&n0, &g, vpn).unwrap().unwrap();
            assert_eq!(pte.frame, PhysFrame::Global(GAddr(vpn * PAGE_SIZE as u64)));
            assert_eq!(pte.writable, vpn % 2 == 0);
        }
    }
}
