//! Node-local VMA and reverse-map structures with bulk synchronization.
//!
//! Paper §3.3 "Local data structures": *"Memory management control
//! structures, such as rmap and VMA, are preserved within local memory of
//! each node, because these structures are not accessed frequently."*
//!
//! [`VmaSet`] is a plain node-local interval map. To keep peers loosely
//! consistent without per-update fabric traffic, a node periodically
//! exports its VMA set as one bulk blob into global memory
//! ([`VmaSet::export_bulk`]); peers import it wholesale
//! ([`VmaSet::import_bulk`]) — one publish + one consume instead of per-
//! mutation coherence.

use crate::addr::{PageSize, VirtAddr};
use flacdk::hw;
use flacdk::wire::{Decoder, Encoder};
use rack_sim::{GAddr, NodeCtx, SimError};
use std::collections::BTreeMap;

/// One virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First address (inclusive).
    pub start: VirtAddr,
    /// One past the last address (exclusive).
    pub end: VirtAddr,
    /// Whether the area is writable.
    pub writable: bool,
    /// Caller tag (e.g. heap/stack/file id).
    pub tag: u64,
    /// Preferred translation granularity for this area. The tiering
    /// daemon only coalesces 4 KiB pages into 2 MiB mappings inside
    /// areas that allow it.
    pub page_size: PageSize,
}

impl Vma {
    /// Whether `va` falls inside this area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.start <= va && va < self.end
    }

    /// Area length in bytes.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the area is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A node-local set of non-overlapping VMAs, keyed by start address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmaSet {
    areas: BTreeMap<u64, Vma>,
}

impl VmaSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `vma`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if it overlaps an existing area or is
    /// malformed (`end <= start`).
    pub fn insert(&mut self, vma: Vma) -> Result<(), SimError> {
        if vma.end.0 <= vma.start.0 {
            return Err(SimError::Protocol(format!("empty or inverted VMA {vma:?}")));
        }
        // Check the neighbour before and after for overlap.
        if let Some((_, prev)) = self.areas.range(..=vma.start.0).next_back() {
            if prev.end.0 > vma.start.0 {
                return Err(SimError::Protocol(format!("VMA {vma:?} overlaps {prev:?}")));
            }
        }
        if let Some((_, next)) = self.areas.range(vma.start.0..).next() {
            if next.start.0 < vma.end.0 {
                return Err(SimError::Protocol(format!("VMA {vma:?} overlaps {next:?}")));
            }
        }
        self.areas.insert(vma.start.0, vma);
        Ok(())
    }

    /// Remove the area starting at `start`.
    pub fn remove(&mut self, start: VirtAddr) -> Option<Vma> {
        self.areas.remove(&start.0)
    }

    /// Find the area containing `va`.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        self.areas
            .range(..=va.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(va))
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// Iterate areas in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.areas.values()
    }

    /// Serialized size of this set in a bulk blob.
    pub fn bulk_size(&self) -> usize {
        8 + self.areas.len() * 27
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.areas.len() as u64);
        for v in self.areas.values() {
            e.put_u64(v.start.0)
                .put_u64(v.end.0)
                .put_u8(u8::from(v.writable))
                .put_u8(u8::from(v.page_size == PageSize::Huge))
                .put_u64(v.tag);
        }
        e.into_vec()
    }

    fn decode(buf: &[u8]) -> Result<Self, SimError> {
        let mut d = Decoder::new(buf);
        let n = d.u64().map_err(|e| SimError::Protocol(e.to_string()))?;
        let mut set = VmaSet::new();
        for _ in 0..n {
            let start = d.u64().map_err(|e| SimError::Protocol(e.to_string()))?;
            let end = d.u64().map_err(|e| SimError::Protocol(e.to_string()))?;
            let writable = d.u8().map_err(|e| SimError::Protocol(e.to_string()))? != 0;
            let huge = d.u8().map_err(|e| SimError::Protocol(e.to_string()))? != 0;
            let tag = d.u64().map_err(|e| SimError::Protocol(e.to_string()))?;
            set.insert(Vma {
                start: VirtAddr(start),
                end: VirtAddr(end),
                writable,
                tag,
                page_size: if huge { PageSize::Huge } else { PageSize::Base },
            })?;
        }
        Ok(set)
    }

    /// Bulk-publish this set into global memory at `blob`
    /// (`[len: u64][payload]`). One write-back covers the whole set.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if the blob region is too small; memory
    /// errors are propagated.
    pub fn export_bulk(&self, ctx: &NodeCtx, blob: GAddr, blob_len: usize) -> Result<(), SimError> {
        let bytes = self.encode();
        if 8 + bytes.len() > blob_len {
            return Err(SimError::Protocol(format!(
                "VMA blob needs {} bytes, region holds {blob_len}",
                8 + bytes.len()
            )));
        }
        ctx.write_u64(blob, bytes.len() as u64)?;
        hw::publish_bytes(ctx, blob.offset(8), &bytes)?;
        ctx.writeback(blob, 8);
        Ok(())
    }

    /// Bulk-import a peer's set from global memory at `blob`.
    ///
    /// # Errors
    ///
    /// Propagates memory and decode errors.
    pub fn import_bulk(ctx: &NodeCtx, blob: GAddr) -> Result<Self, SimError> {
        ctx.invalidate(blob, 8);
        let len = ctx.read_u64(blob)? as usize;
        let mut bytes = vec![0u8; len];
        hw::consume_bytes(ctx, blob.offset(8), &mut bytes)?;
        Self::decode(&bytes)
    }
}

/// Node-local reverse map: physical frame key → set of (asid, vpn)
/// mappings pointing at it. Used for unmapping shared frames.
#[derive(Debug, Clone, Default)]
pub struct RMap {
    map: BTreeMap<u64, Vec<(u64, u64)>>,
}

impl RMap {
    /// An empty reverse map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `(asid, vpn)` maps frame `frame_key`.
    pub fn add(&mut self, frame_key: u64, asid: u64, vpn: u64) {
        let v = self.map.entry(frame_key).or_default();
        if !v.contains(&(asid, vpn)) {
            v.push((asid, vpn));
        }
    }

    /// Remove one mapping record.
    pub fn remove(&mut self, frame_key: u64, asid: u64, vpn: u64) {
        if let Some(v) = self.map.get_mut(&frame_key) {
            v.retain(|m| *m != (asid, vpn));
            if v.is_empty() {
                self.map.remove(&frame_key);
            }
        }
    }

    /// All mappings of `frame_key`.
    pub fn mappers(&self, frame_key: u64) -> &[(u64, u64)] {
        self.map.get(&frame_key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tracked frames.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn vma(start: u64, end: u64, tag: u64) -> Vma {
        Vma {
            start: VirtAddr(start),
            end: VirtAddr(end),
            writable: true,
            tag,
            page_size: PageSize::Base,
        }
    }

    #[test]
    fn insert_find_remove() {
        let mut set = VmaSet::new();
        set.insert(vma(0x1000, 0x3000, 1)).unwrap();
        set.insert(vma(0x5000, 0x6000, 2)).unwrap();
        assert_eq!(set.find(VirtAddr(0x2000)).unwrap().tag, 1);
        assert_eq!(set.find(VirtAddr(0x3000)), None, "end exclusive");
        assert_eq!(set.find(VirtAddr(0x4000)), None, "gap");
        assert!(set.remove(VirtAddr(0x1000)).is_some());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn overlaps_rejected() {
        let mut set = VmaSet::new();
        set.insert(vma(0x1000, 0x3000, 1)).unwrap();
        assert!(set.insert(vma(0x2000, 0x4000, 2)).is_err(), "overlap right");
        assert!(set.insert(vma(0x0000, 0x1001, 2)).is_err(), "overlap left");
        assert!(set.insert(vma(0x1800, 0x2000, 2)).is_err(), "contained");
        assert!(set.insert(vma(0x3000, 0x3000, 2)).is_err(), "empty");
        set.insert(vma(0x3000, 0x4000, 3)).unwrap(); // adjacent is fine
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn bulk_sync_roundtrips_across_nodes() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let mut set = VmaSet::new();
        set.insert(vma(0x1000, 0x2000, 10)).unwrap();
        set.insert(vma(0x8000, 0xa000, 20)).unwrap();
        set.insert(Vma {
            page_size: PageSize::Huge,
            ..vma(0x20_0000, 0x60_0000, 30)
        })
        .unwrap();

        let blob = rack.global().alloc(set.bulk_size() + 64, 64).unwrap();
        // Warm n1's stale cache of the blob region first.
        let _ = VmaSet::import_bulk(&n1, blob);
        set.export_bulk(&n0, blob, set.bulk_size() + 64).unwrap();
        let imported = VmaSet::import_bulk(&n1, blob).unwrap();
        assert_eq!(imported, set);
    }

    #[test]
    fn bulk_export_checks_region_size() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut set = VmaSet::new();
        set.insert(vma(0x1000, 0x2000, 1)).unwrap();
        let blob = rack.global().alloc(16, 64).unwrap();
        assert!(set.export_bulk(&n0, blob, 16).is_err());
    }

    #[test]
    fn rmap_tracks_mappers() {
        let mut rmap = RMap::new();
        rmap.add(0x1000, 1, 5);
        rmap.add(0x1000, 2, 9);
        rmap.add(0x1000, 1, 5); // duplicate ignored
        assert_eq!(rmap.mappers(0x1000).len(), 2);
        rmap.remove(0x1000, 1, 5);
        assert_eq!(rmap.mappers(0x1000), &[(2, 9)]);
        rmap.remove(0x1000, 2, 9);
        assert!(rmap.is_empty());
        assert_eq!(rmap.mappers(0x9999), &[] as &[(u64, u64)]);
    }
}
