//! # flacos-mem — the FlacOS memory system (paper §3.3)
//!
//! Managing physical and virtual memory is the foundation FlacOS builds
//! on to exploit rack-wide shared memory. The paper's partitioning rule:
//!
//! * **Shared heterogeneous page table** — page tables live in *global*
//!   memory ([`page_table`], an RCU copy-on-write radix tree), so an
//!   address space is visible to every node: processes can span nodes
//!   and threads can migrate without page-table shipping. PTEs index
//!   *both* local and global frames ([`addr::PhysFrame`]), unifying the
//!   two into a single-level address space.
//! * **Local control structures** — VMAs and the reverse map stay in
//!   node-local memory ([`vma`]), synchronized in bulk, because they are
//!   touched rarely and would be expensive to share.
//!
//! Supporting machinery: demand paging ([`fault`]), per-node TLBs with a
//! rack-wide shootdown protocol ([`tlb`]), content-based page
//! deduplication ([`dedup`]) that underlies the shared page cache's
//! single-copy property, and sampled page-access telemetry
//! ([`telemetry`]) feeding the `flacos-tier` daemon.

pub mod addr;
pub mod address_space;
pub mod dedup;
pub mod fault;
pub mod page_table;
pub mod telemetry;
pub mod tlb;
pub mod vma;

pub use addr::{
    huge_base, PageSize, PhysFrame, VirtAddr, HUGE_PAGE_SIZE, PAGES_PER_HUGE, PAGE_SIZE,
};
pub use address_space::AddressSpace;
pub use dedup::PageDeduper;
pub use fault::{PageFaultHandler, PagePlacement};
pub use page_table::{PageTable, Pte};
pub use telemetry::{AccessRing, PageAccess};
pub use tlb::{Tlb, TlbStats};
pub use vma::{Vma, VmaSet};
