//! Address types for the unified (single-level) rack address space.

use rack_sim::{GAddr, LAddr, NodeId};
use std::fmt;

/// Page size in bytes (4 KiB, matching the paper's platforms).
pub const PAGE_SIZE: usize = 4096;

/// Huge page size in bytes (2 MiB, the x86/ARM second-level size).
pub const HUGE_PAGE_SIZE: usize = 2 << 20;

/// Number of base pages covered by one huge page.
pub const PAGES_PER_HUGE: u64 = (HUGE_PAGE_SIZE / PAGE_SIZE) as u64;

/// Translation granularity of a mapping. Huge mappings cover
/// [`PAGES_PER_HUGE`] consecutive base pages with one PTE, so remaps
/// and TLB shootdowns touch the whole region in one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KiB base page.
    #[default]
    Base,
    /// 2 MiB huge page.
    Huge,
}

impl PageSize {
    /// Bytes covered by one page of this size.
    pub fn bytes(self) -> usize {
        match self {
            PageSize::Base => PAGE_SIZE,
            PageSize::Huge => HUGE_PAGE_SIZE,
        }
    }

    /// Base pages covered by one page of this size.
    pub fn pages(self) -> u64 {
        match self {
            PageSize::Base => 1,
            PageSize::Huge => PAGES_PER_HUGE,
        }
    }
}

/// The region-head vpn of the 2 MiB-aligned region containing `vpn` —
/// where a huge mapping's single PTE lives.
pub fn huge_base(vpn: u64) -> u64 {
    vpn & !(PAGES_PER_HUGE - 1)
}

/// A virtual address inside a FlacOS address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Virtual page number containing this address.
    pub fn vpn(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// First address of the page containing this address.
    #[must_use]
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE as u64 - 1))
    }

    /// Address `bytes` past this one.
    #[must_use]
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// The base address of virtual page `vpn`.
    pub fn from_vpn(vpn: u64) -> VirtAddr {
        VirtAddr(vpn * PAGE_SIZE as u64)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

/// A physical page frame — the "heterogeneous" in the shared
/// heterogeneous page table: frames may live in the rack's global pool
/// or in one node's local memory, unified into one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysFrame {
    /// A page-aligned frame in global (interconnect-shared) memory.
    Global(GAddr),
    /// A page-aligned frame in `node`'s local memory; only that node can
    /// access it directly (remote access must go through messaging).
    Local(NodeId, LAddr),
}

impl PhysFrame {
    /// Whether this frame is accessible from every node.
    pub fn is_global(self) -> bool {
        matches!(self, PhysFrame::Global(_))
    }

    /// The owning node for local frames.
    pub fn home_node(self) -> Option<NodeId> {
        match self {
            PhysFrame::Global(_) => None,
            PhysFrame::Local(node, _) => Some(node),
        }
    }
}

impl fmt::Display for PhysFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysFrame::Global(a) => write!(f, "frame[{a}]"),
            PhysFrame::Local(n, a) => write!(f, "frame[{n}:l:{:#x}]", a.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset_decompose() {
        let va = VirtAddr(3 * PAGE_SIZE as u64 + 17);
        assert_eq!(va.vpn(), 3);
        assert_eq!(va.page_offset(), 17);
        assert_eq!(va.page_base(), VirtAddr(3 * PAGE_SIZE as u64));
        assert_eq!(VirtAddr::from_vpn(3).vpn(), 3);
        assert_eq!(va.offset(PAGE_SIZE as u64).vpn(), 4);
    }

    #[test]
    fn page_size_dimensions() {
        assert_eq!(PageSize::Base.bytes(), 4096);
        assert_eq!(PageSize::Huge.bytes(), 2 << 20);
        assert_eq!(PageSize::Base.pages(), 1);
        assert_eq!(PageSize::Huge.pages(), 512);
        assert_eq!(PAGES_PER_HUGE, 512);
        assert_eq!(PageSize::default(), PageSize::Base);
    }

    #[test]
    fn huge_base_aligns_down() {
        assert_eq!(huge_base(0), 0);
        assert_eq!(huge_base(511), 0);
        assert_eq!(huge_base(512), 512);
        assert_eq!(huge_base(1000), 512);
        assert_eq!(huge_base(1024), 1024);
    }

    #[test]
    fn frame_kinds() {
        let g = PhysFrame::Global(GAddr(0x1000));
        let l = PhysFrame::Local(NodeId(1), LAddr(0x2000));
        assert!(g.is_global());
        assert!(!l.is_global());
        assert_eq!(g.home_node(), None);
        assert_eq!(l.home_node(), Some(NodeId(1)));
        assert!(g.to_string().contains("0x1000"));
        assert!(l.to_string().contains("node1"));
    }
}
