//! Per-node TLBs and the rack-wide shootdown protocol.
//!
//! Each node caches recent page-table walks in a software TLB. When a
//! mapping changes, the initiator must invalidate stale entries on every
//! node — the paper's §5 notes that current fabrics lack a rack-wide IPI,
//! so the shootdown rides the interconnect message fabric
//! ([`rack_sim::Interconnect`]) as a polled doorbell, exactly the
//! workaround real systems use today.

use crate::page_table::Pte;
use flacdk::wire::{Decoder, Encoder};
use rack_sim::{NodeCtx, NodeId, SimError};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Fabric port used for shootdown requests.
pub const TLB_SHOOTDOWN_PORT: u16 = 9000;
/// Fabric port used for shootdown acknowledgements.
pub const TLB_ACK_PORT: u16 = 9001;

/// TLB behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups served by the TLB.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries removed by invalidations (local or shootdown).
    pub invalidations: u64,
    /// Shootdown requests serviced for peers.
    pub shootdowns_serviced: u64,
    /// Shootdown request/ack rounds this node initiated. A ranged
    /// shootdown over a 2 MiB region is one round, exactly like a
    /// single-page shootdown — the counter the huge-page benches use to
    /// show 512 rounds collapsing to 1.
    pub shootdown_rounds: u64,
}

/// One node's software TLB.
#[derive(Debug)]
pub struct Tlb {
    node: Arc<NodeCtx>,
    entries: HashMap<(u64, u64), Pte>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    stats: TlbStats,
}

impl Tlb {
    /// A TLB for `node` holding up to `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(node: Arc<NodeCtx>, capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            node,
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// The node that owns this TLB.
    pub fn node_id(&self) -> NodeId {
        self.node.id()
    }

    /// Look up `(asid, vpn)`; a hit costs ~1 ns of simulated time.
    pub fn lookup(&mut self, asid: u64, vpn: u64) -> Option<Pte> {
        self.node.charge(1);
        match self.entries.get(&(asid, vpn)) {
            Some(pte) => {
                self.stats.hits += 1;
                Some(*pte)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Install a translation (FIFO eviction at capacity).
    pub fn fill(&mut self, asid: u64, vpn: u64, pte: Pte) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&(asid, vpn)) {
            while let Some(victim) = self.order.pop_front() {
                if self.entries.remove(&victim).is_some() {
                    break;
                }
            }
        }
        if self.entries.insert((asid, vpn), pte).is_none() {
            self.order.push_back((asid, vpn));
        }
    }

    /// Drop one translation from this node only.
    pub fn invalidate_local(&mut self, asid: u64, vpn: u64) {
        if self.entries.remove(&(asid, vpn)).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Drop every translation in `[vpn, vpn + span)` from this node.
    pub fn invalidate_range(&mut self, asid: u64, vpn: u64, span: u64) {
        for v in vpn..vpn.saturating_add(span) {
            self.invalidate_local(asid, v);
        }
    }

    /// Drop all translations of an address space from this node.
    pub fn flush_asid(&mut self, asid: u64) {
        let before = self.entries.len();
        self.entries.retain(|(a, _), _| *a != asid);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Broadcast a shootdown of `(asid, vpn)` to `peers`, invalidating
    /// locally first. Peers must then call [`Tlb::service_shootdowns`];
    /// the initiator completes with [`Tlb::collect_acks`].
    ///
    /// # Errors
    ///
    /// Fabric errors to *live* peers are propagated; dead peers are
    /// skipped (they have no stale TLB to shoot down).
    pub fn begin_shootdown(
        &mut self,
        peers: &[NodeId],
        asid: u64,
        vpn: u64,
    ) -> Result<usize, SimError> {
        self.begin_shootdown_range(peers, asid, vpn, 1)
    }

    /// Ranged variant of [`Tlb::begin_shootdown`]: one request per peer
    /// (and later one ack) covers every vpn in `[vpn, vpn + span)`. A
    /// 2 MiB region costs the same number of fabric rounds as one page.
    ///
    /// # Errors
    ///
    /// Fabric errors to *live* peers are propagated; dead peers are
    /// skipped (they have no stale TLB to shoot down).
    pub fn begin_shootdown_range(
        &mut self,
        peers: &[NodeId],
        asid: u64,
        vpn: u64,
        span: u64,
    ) -> Result<usize, SimError> {
        self.invalidate_range(asid, vpn, span);
        self.stats.shootdown_rounds += 1;
        let mut expected = 0;
        for &peer in peers {
            if peer == self.node.id() {
                continue;
            }
            let mut e = Encoder::new();
            e.put_u64(self.node.id().0 as u64)
                .put_u64(asid)
                .put_u64(vpn)
                .put_u64(span);
            match self.node.send(peer, TLB_SHOOTDOWN_PORT, e.into_vec()) {
                Ok(_) => expected += 1,
                Err(SimError::NodeDown { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(expected)
    }

    /// Service pending shootdown requests from peers, invalidating the
    /// named translations and acking each initiator. Returns the number
    /// serviced.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors (acks to crashed initiators are skipped).
    pub fn service_shootdowns(&mut self) -> Result<usize, SimError> {
        let mut serviced = 0;
        loop {
            let msg = match self.node.try_recv(TLB_SHOOTDOWN_PORT) {
                Ok(m) => m,
                Err(SimError::WouldBlock) => break,
                Err(e) => return Err(e),
            };
            let mut d = Decoder::new(&msg.payload);
            let (Ok(initiator), Ok(asid), Ok(vpn)) = (d.u64(), d.u64(), d.u64()) else {
                continue;
            };
            // Pre-ranged initiators omit the span word; treat as 1 page.
            let span = d.u64().unwrap_or(1);
            self.invalidate_range(asid, vpn, span);
            self.stats.shootdowns_serviced += 1;
            serviced += 1;
            match self
                .node
                .send(NodeId(initiator as usize), TLB_ACK_PORT, vec![1])
            {
                Ok(_) | Err(SimError::NodeDown { .. }) | Err(SimError::LinkDown { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(serviced)
    }

    /// Collect up to `expected` acks; returns how many arrived.
    pub fn collect_acks(&mut self, expected: usize) -> usize {
        let mut got = 0;
        while got < expected {
            match self.node.try_recv(TLB_ACK_PORT) {
                Ok(_) => got += 1,
                Err(_) => break,
            }
        }
        got
    }
}

/// Cooperative full-rack shootdown for single-threaded simulations:
/// initiator broadcasts, every other TLB services, initiator collects.
///
/// # Errors
///
/// Propagates fabric errors.
///
/// # Panics
///
/// Panics if `initiator` is out of range.
pub fn shootdown_stepped(
    tlbs: &mut [Tlb],
    initiator: usize,
    asid: u64,
    vpn: u64,
) -> Result<(), SimError> {
    shootdown_stepped_range(tlbs, initiator, asid, vpn, 1)
}

/// Ranged [`shootdown_stepped`]: one broadcast/service/ack cycle covers
/// `[vpn, vpn + span)` on every node.
///
/// # Errors
///
/// Propagates fabric errors.
///
/// # Panics
///
/// Panics if `initiator` is out of range.
pub fn shootdown_stepped_range(
    tlbs: &mut [Tlb],
    initiator: usize,
    asid: u64,
    vpn: u64,
    span: u64,
) -> Result<(), SimError> {
    let peers: Vec<NodeId> = tlbs.iter().map(|t| t.node_id()).collect();
    let expected = tlbs[initiator].begin_shootdown_range(&peers, asid, vpn, span)?;
    for (i, tlb) in tlbs.iter_mut().enumerate() {
        if i != initiator {
            tlb.service_shootdowns()?;
        }
    }
    let got = tlbs[initiator].collect_acks(expected);
    if got < expected {
        return Err(SimError::Protocol(format!(
            "shootdown acks: {got}/{expected}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysFrame;
    use rack_sim::{GAddr, Rack, RackConfig};

    fn pte(addr: u64) -> Pte {
        Pte::new(PhysFrame::Global(GAddr(addr)), true)
    }

    #[test]
    fn fill_lookup_hit_miss() {
        let rack = Rack::new(RackConfig::small_test());
        let mut t = Tlb::new(rack.node(0), 4);
        assert_eq!(t.lookup(1, 5), None);
        t.fill(1, 5, pte(0x1000));
        assert_eq!(t.lookup(1, 5), Some(pte(0x1000)));
        assert_eq!(t.lookup(2, 5), None, "asid distinguishes");
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let rack = Rack::new(RackConfig::small_test());
        let mut t = Tlb::new(rack.node(0), 2);
        t.fill(1, 1, pte(0x1000));
        t.fill(1, 2, pte(0x2000));
        t.fill(1, 3, pte(0x3000));
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(1, 1), None, "oldest evicted");
        assert!(t.lookup(1, 3).is_some());
    }

    #[test]
    fn flush_asid_clears_only_that_space() {
        let rack = Rack::new(RackConfig::small_test());
        let mut t = Tlb::new(rack.node(0), 8);
        t.fill(1, 1, pte(0x1000));
        t.fill(1, 2, pte(0x2000));
        t.fill(2, 1, pte(0x3000));
        t.flush_asid(1);
        assert!(t.lookup(1, 1).is_none());
        assert!(t.lookup(2, 1).is_some());
    }

    #[test]
    fn rack_wide_shootdown_invalidates_everywhere() {
        let rack = Rack::new(RackConfig::n_node(3));
        let mut tlbs: Vec<Tlb> = (0..3).map(|i| Tlb::new(rack.node(i), 8)).collect();
        for t in &mut tlbs {
            t.fill(1, 7, pte(0x7000));
        }
        shootdown_stepped(&mut tlbs, 0, 1, 7).unwrap();
        for t in &mut tlbs {
            assert_eq!(t.lookup(1, 7), None);
        }
        assert_eq!(tlbs[1].stats().shootdowns_serviced, 1);
    }

    #[test]
    fn ranged_shootdown_is_one_round_per_peer_regardless_of_span() {
        let rack = Rack::new(RackConfig::n_node(4));
        for span in [1u64, 7, 512] {
            let mut tlbs: Vec<Tlb> = (0..4).map(|i| Tlb::new(rack.node(i), 1024)).collect();
            for t in &mut tlbs {
                for v in 0..span {
                    t.fill(1, 100 + v, pte(0x1000 + v * 0x1000));
                }
            }
            let peers: Vec<NodeId> = tlbs.iter().map(|t| t.node_id()).collect();
            let expected = tlbs[0].begin_shootdown_range(&peers, 1, 100, span).unwrap();
            // Exactly one request landed on each peer, whatever the span.
            assert_eq!(expected, 3);
            for (i, t) in tlbs.iter_mut().enumerate().skip(1) {
                assert_eq!(
                    t.service_shootdowns().unwrap(),
                    1,
                    "peer {i} serviced one request for span {span}"
                );
                assert!(t.is_empty(), "whole span invalidated on peer {i}");
            }
            // Exactly one ack came back from each peer.
            assert_eq!(tlbs[0].collect_acks(expected), 3);
            assert!(
                tlbs[0].node.try_recv(TLB_ACK_PORT).is_err(),
                "no extra acks"
            );
            assert_eq!(tlbs[0].stats().shootdown_rounds, 1);
            assert_eq!(tlbs[1].stats().shootdowns_serviced, 1);
        }
    }

    #[test]
    fn ranged_stepped_shootdown_clears_span_everywhere() {
        let rack = Rack::new(RackConfig::n_node(3));
        let mut tlbs: Vec<Tlb> = (0..3).map(|i| Tlb::new(rack.node(i), 1024)).collect();
        for t in &mut tlbs {
            t.fill(1, 511, pte(0x1000)); // just below the span
            for v in 512..1024 {
                t.fill(1, v, pte(v * 0x1000));
            }
        }
        shootdown_stepped_range(&mut tlbs, 0, 1, 512, 512).unwrap();
        for t in &mut tlbs {
            assert!(t.lookup(1, 511).is_some(), "below-span entry survives");
            for v in (512..1024).step_by(97) {
                assert_eq!(t.lookup(1, v), None);
            }
        }
    }

    #[test]
    fn shootdown_skips_dead_peers() {
        let rack = Rack::new(RackConfig::n_node(3));
        let mut tlbs: Vec<Tlb> = (0..3).map(|i| Tlb::new(rack.node(i), 8)).collect();
        rack.faults().crash_node(NodeId(2), 0);
        let peers: Vec<NodeId> = tlbs.iter().map(|t| t.node_id()).collect();
        let expected = tlbs[0].begin_shootdown(&peers, 1, 3).unwrap();
        assert_eq!(expected, 1, "only the live peer is counted");
        tlbs[1].service_shootdowns().unwrap();
        assert_eq!(tlbs[0].collect_acks(expected), 1);
    }

    #[test]
    fn refilling_same_entry_does_not_grow() {
        let rack = Rack::new(RackConfig::small_test());
        let mut t = Tlb::new(rack.node(0), 2);
        t.fill(1, 1, pte(0x1000));
        t.fill(1, 1, pte(0x2000));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1, 1), Some(pte(0x2000)));
        assert!(!t.is_empty());
    }
}
