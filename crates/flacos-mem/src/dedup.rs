//! Content-based page deduplication.
//!
//! Paper §3.4 motivates the shared page cache with cross-node data
//! duplication ("a large number of identical container images need to be
//! stored between nodes"). The deduper interns page contents by hash:
//! identical pages map to a single global frame with a reference count.
//! Hash collisions are handled by verifying full content before sharing.

use crate::addr::PAGE_SIZE;
use crate::fault::FrameAllocator;
use flacdk::wire::fnv1a;
use rack_sim::sync::Mutex;
use rack_sim::{GAddr, NodeCtx, SimError};
use std::collections::HashMap;

/// Dedup effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Pages interned in total.
    pub interned: u64,
    /// Interns that matched an existing frame.
    pub dedup_hits: u64,
    /// Bytes saved by sharing instead of copying.
    pub bytes_saved: u64,
    /// Distinct frames currently live.
    pub unique_frames: u64,
}

#[derive(Debug, Default)]
struct Inner {
    by_hash: HashMap<u64, Vec<GAddr>>,
    refcount: HashMap<GAddr, u64>,
    hash_of: HashMap<GAddr, u64>,
    stats: DedupStats,
}

/// Interns identical page contents into shared frames.
#[derive(Debug)]
pub struct PageDeduper {
    frames: FrameAllocator,
    // coherent-local: content-hash index over frames that themselves
    // live in global memory; every intern/release charges the fabric
    // for the frame bytes, and the index is rebuildable from them.
    inner: Mutex<Inner>,
}

impl PageDeduper {
    /// A deduper drawing frames from `frames`.
    pub fn new(frames: FrameAllocator) -> Self {
        PageDeduper {
            frames,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Intern one page of content. Returns the (possibly shared) frame
    /// holding it, with its reference count incremented.
    ///
    /// # Errors
    ///
    /// Propagates allocation/memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly one page.
    pub fn intern(&self, ctx: &NodeCtx, content: &[u8]) -> Result<GAddr, SimError> {
        self.intern_with_hash(ctx, fnv1a(content), content)
    }

    /// [`PageDeduper::intern`] for callers that already know the
    /// content hash (e.g. a content-addressed chunk store, where the
    /// hash *is* the chunk's name) — skips re-hashing the page.
    ///
    /// # Errors
    ///
    /// Propagates allocation/memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly one page, or (debug builds)
    /// if `hash` is not the content's fnv1a hash.
    pub fn intern_with_hash(
        &self,
        ctx: &NodeCtx,
        hash: u64,
        content: &[u8],
    ) -> Result<GAddr, SimError> {
        assert_eq!(content.len(), PAGE_SIZE, "dedup operates on whole pages");
        debug_assert_eq!(hash, fnv1a(content), "hash must name the content");

        // Candidate frames under this hash: verify content to be
        // collision-safe before sharing.
        let candidates: Vec<GAddr> = {
            let inner = self.inner.lock();
            inner.by_hash.get(&hash).cloned().unwrap_or_default()
        };
        for cand in candidates {
            ctx.invalidate(cand, PAGE_SIZE);
            let mut existing = vec![0u8; PAGE_SIZE];
            ctx.read(cand, &mut existing)?;
            if existing == content {
                let mut inner = self.inner.lock();
                *inner.refcount.entry(cand).or_insert(0) += 1;
                inner.stats.interned += 1;
                inner.stats.dedup_hits += 1;
                inner.stats.bytes_saved += PAGE_SIZE as u64;
                return Ok(cand);
            }
        }

        // New content: allocate and publish a frame.
        let frame = self.frames.alloc(ctx)?;
        ctx.write(frame, content)?;
        ctx.writeback(frame, PAGE_SIZE);
        let mut inner = self.inner.lock();
        inner.by_hash.entry(hash).or_default().push(frame);
        inner.refcount.insert(frame, 1);
        inner.hash_of.insert(frame, hash);
        inner.stats.interned += 1;
        inner.stats.unique_frames += 1;
        Ok(frame)
    }

    /// Release one reference to `frame`; the frame is recycled when the
    /// count reaches zero.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `frame` is not an interned frame.
    pub fn release(&self, ctx: &NodeCtx, frame: GAddr) -> Result<(), SimError> {
        let mut inner = self.inner.lock();
        let count = inner
            .refcount
            .get_mut(&frame)
            .ok_or_else(|| SimError::Protocol(format!("release of unknown frame {frame}")))?;
        *count -= 1;
        if *count == 0 {
            inner.refcount.remove(&frame);
            if let Some(hash) = inner.hash_of.remove(&frame) {
                if let Some(v) = inner.by_hash.get_mut(&hash) {
                    v.retain(|f| *f != frame);
                    if v.is_empty() {
                        inner.by_hash.remove(&hash);
                    }
                }
            }
            inner.stats.unique_frames -= 1;
            drop(inner);
            self.frames.free(ctx, frame);
        }
        Ok(())
    }

    /// Current reference count of `frame` (0 if unknown).
    pub fn refcount(&self, frame: GAddr) -> u64 {
        self.inner.lock().refcount.get(&frame).copied().unwrap_or(0)
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> DedupStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, PageDeduper) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let dedup = PageDeduper::new(FrameAllocator::new(rack.global().clone()));
        (rack, dedup)
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn identical_pages_share_one_frame() {
        let (rack, dedup) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let a = dedup.intern(&n0, &page(1)).unwrap();
        let b = dedup.intern(&n1, &page(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(dedup.refcount(a), 2);
        let s = dedup.stats();
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.bytes_saved, PAGE_SIZE as u64);
        assert_eq!(s.unique_frames, 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let (rack, dedup) = setup();
        let n0 = rack.node(0);
        let a = dedup.intern(&n0, &page(1)).unwrap();
        let b = dedup.intern(&n0, &page(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(dedup.stats().unique_frames, 2);
    }

    #[test]
    fn release_recycles_at_zero() {
        let (rack, dedup) = setup();
        let n0 = rack.node(0);
        let a = dedup.intern(&n0, &page(3)).unwrap();
        dedup.intern(&n0, &page(3)).unwrap();
        dedup.release(&n0, a).unwrap();
        assert_eq!(dedup.refcount(a), 1);
        dedup.release(&n0, a).unwrap();
        assert_eq!(dedup.refcount(a), 0);
        // Frame is recyclable; a fresh distinct page may reuse it.
        let b = dedup.intern(&n0, &page(4)).unwrap();
        assert_eq!(b, a, "freed frame reused");
        assert!(dedup.release(&n0, GAddr(0xdead000)).is_err());
    }

    #[test]
    fn intern_with_hash_shares_frames_with_intern() {
        let (rack, dedup) = setup();
        let n0 = rack.node(0);
        let content = page(7);
        let a = dedup.intern(&n0, &content).unwrap();
        let b = dedup
            .intern_with_hash(&n0, flacdk::wire::fnv1a(&content), &content)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(dedup.refcount(a), 2);
    }

    #[test]
    fn interned_content_is_readable_rack_wide() {
        let (rack, dedup) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let frame = dedup.intern(&n0, &page(9)).unwrap();
        n1.invalidate(frame, PAGE_SIZE);
        let mut buf = vec![0u8; PAGE_SIZE];
        n1.read(frame, &mut buf).unwrap();
        assert_eq!(buf, page(9));
    }
}
