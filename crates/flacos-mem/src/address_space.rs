//! A rack-shared address space over the heterogeneous page table.
//!
//! An [`AddressSpace`] couples an ASID with a [`PageTable`] stored in
//! global memory, and provides byte-granular `read`/`write` that
//! translate through the table — the software model of what the adapted
//! MMUs of §3.3 do in hardware. Frames may live in the global pool
//! (accessible from every node) or in one node's local memory (directly
//! accessible only there; remote access is a protocol error surfaced to
//! the caller, which is exactly the property fault boxes exploit to keep
//! an application's state vertically consolidated).

use crate::addr::{huge_base, PageSize, PhysFrame, VirtAddr, PAGE_SIZE};
use crate::page_table::{PageTable, Pte};
use crate::telemetry::AccessRing;
use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use rack_sim::sync::Mutex;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared address space: ASID + page table + accounting.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: u64,
    table: PageTable,
    mapped_pages: Arc<AtomicU64>,
    // coherent-local: registration slot for the local telemetry ring;
    // the shared state (the page table) is global-memory resident.
    sampler: Arc<Mutex<Option<Arc<AccessRing>>>>,
}

impl AddressSpace {
    /// Allocate an empty address space with identifier `asid`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        asid: u64,
        global: &GlobalMemory,
        alloc: GlobalAllocator,
        epochs: Arc<EpochManager>,
        retired: RetireList,
    ) -> Result<Self, SimError> {
        Ok(AddressSpace {
            asid,
            table: PageTable::alloc(global, alloc, epochs, retired)?,
            mapped_pages: Arc::new(AtomicU64::new(0)),
            sampler: Arc::new(Mutex::new(None)),
        })
    }

    /// Attach a telemetry ring: every successful translation through this
    /// space (from any clone) is offered to the ring's sampler, feeding
    /// the tiering daemon's hotness view. Pass `None` to detach.
    pub fn attach_sampler(&self, ring: Option<Arc<AccessRing>>) {
        *self.sampler.lock() = ring;
    }

    /// This space's ASID.
    pub fn asid(&self) -> u64 {
        self.asid
    }

    /// The shared page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages.load(Ordering::Relaxed)
    }

    /// Map `vpn` to `pte`, maintaining the mapped-page count. Huge
    /// entries must sit at a 512-aligned region-head vpn and account for
    /// all 512 base pages they cover.
    ///
    /// # Errors
    ///
    /// Propagates page-table errors.
    ///
    /// # Panics
    ///
    /// Panics when a huge `pte` is mapped at a non-region-head vpn.
    pub fn map(&self, ctx: &Arc<NodeCtx>, vpn: u64, pte: Pte) -> Result<Option<Pte>, SimError> {
        if pte.page_size == PageSize::Huge {
            assert_eq!(vpn, huge_base(vpn), "huge PTE must map a region head");
        }
        let prev = self.table.map(ctx, vpn, pte)?;
        let before = prev.map_or(0, |p| p.page_size.pages());
        let after = pte.page_size.pages();
        if after > before {
            self.mapped_pages
                .fetch_add(after - before, Ordering::Relaxed);
        } else if before > after {
            self.mapped_pages
                .fetch_sub(before - after, Ordering::Relaxed);
        }
        Ok(prev)
    }

    /// Unmap `vpn`, maintaining the mapped-page count (a huge entry
    /// releases all 512 base pages it covered).
    ///
    /// # Errors
    ///
    /// Propagates page-table errors.
    pub fn unmap(&self, ctx: &Arc<NodeCtx>, vpn: u64) -> Result<Option<Pte>, SimError> {
        let prev = self.table.unmap(ctx, vpn)?;
        if let Some(p) = prev {
            self.mapped_pages
                .fetch_sub(p.page_size.pages(), Ordering::Relaxed);
        }
        Ok(prev)
    }

    /// Translate a virtual address to its frame and mapping, if mapped.
    ///
    /// Base pages resolve directly. If the vpn itself is unmapped, the
    /// walk retries at the 2 MiB region head: a huge PTE there covers
    /// this vpn, and the returned entry is a synthesized per-vpn 4 KiB
    /// view of it (frame advanced by the vpn's offset into the region,
    /// permissions and the migration guard inherited) so byte-granular
    /// readers and the TLB stay page-granular.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn translate(&self, ctx: &Arc<NodeCtx>, va: VirtAddr) -> Result<Option<Pte>, SimError> {
        let guard = self.table.epochs().handle(ctx.clone()).read_lock()?;
        let vpn = va.vpn();
        let mut pte = self.table.walk(ctx, &guard, vpn)?;
        if pte.is_none() && huge_base(vpn) != vpn {
            pte = self
                .table
                .walk(ctx, &guard, huge_base(vpn))?
                .filter(|head| head.page_size == PageSize::Huge)
                .map(|head| Self::huge_view(head, vpn - huge_base(vpn)));
        }
        if pte.is_some() {
            if let Some(ring) = self.sampler.lock().as_ref() {
                ring.record(ctx.id(), self.asid, vpn);
            }
        }
        Ok(pte)
    }

    /// The per-vpn 4 KiB view of huge PTE `head`, `offset` base pages
    /// into its region.
    fn huge_view(head: Pte, offset: u64) -> Pte {
        let byte_off = offset * PAGE_SIZE as u64;
        let frame = match head.frame {
            PhysFrame::Global(a) => PhysFrame::Global(a.offset(byte_off)),
            PhysFrame::Local(n, a) => PhysFrame::Local(n, rack_sim::LAddr(a.0 + byte_off as usize)),
        };
        Pte { frame, ..head }
    }

    /// Read bytes from a frame at a page offset (coherently: global
    /// frames are invalidated before the read).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when reading another node's local frame.
    pub fn read_frame(
        &self,
        ctx: &NodeCtx,
        frame: PhysFrame,
        buf: &mut [u8],
    ) -> Result<(), SimError> {
        match frame {
            PhysFrame::Global(addr) => {
                ctx.invalidate(addr, buf.len());
                ctx.read(addr, buf)
            }
            PhysFrame::Local(node, addr) => {
                if node != ctx.id() {
                    return Err(SimError::Protocol(format!(
                        "node {} cannot directly read {node}'s local frame",
                        ctx.id()
                    )));
                }
                ctx.local_read(addr, buf)
            }
        }
    }

    /// Write bytes into a frame (coherently: global frames are written
    /// back so other nodes observe the update).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when writing another node's local frame.
    pub fn write_frame(&self, ctx: &NodeCtx, frame: PhysFrame, buf: &[u8]) -> Result<(), SimError> {
        match frame {
            PhysFrame::Global(addr) => {
                ctx.write(addr, buf)?;
                ctx.writeback(addr, buf.len());
                Ok(())
            }
            PhysFrame::Local(node, addr) => {
                if node != ctx.id() {
                    return Err(SimError::Protocol(format!(
                        "node {} cannot directly write {node}'s local frame",
                        ctx.id()
                    )));
                }
                ctx.local_write(addr, buf)
            }
        }
    }

    fn for_each_page(
        &self,
        ctx: &Arc<NodeCtx>,
        va: VirtAddr,
        len: usize,
        mut f: impl FnMut(&NodeCtx, PhysFrame, usize, usize, usize) -> Result<(), SimError>,
    ) -> Result<(), SimError> {
        let mut done = 0usize;
        while done < len {
            let cur = va.offset(done as u64);
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(len - done);
            let pte = self.translate(ctx, cur)?.ok_or_else(|| {
                SimError::Protocol(format!("unmapped address {cur} in asid {}", self.asid))
            })?;
            if pte.migrating {
                // Mid-migration: the in-flight copy may be torn under the
                // incoherent-cache model, so never touch either frame —
                // the caller retries once the daemon commits or aborts.
                return Err(SimError::WouldBlock);
            }
            f(ctx, pte.frame, in_page, done, take)?;
            done += take;
        }
        Ok(())
    }

    /// Read `buf.len()` bytes starting at virtual address `va`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on unmapped pages or foreign local frames.
    pub fn read(&self, ctx: &Arc<NodeCtx>, va: VirtAddr, buf: &mut [u8]) -> Result<(), SimError> {
        let mut out = vec![0u8; buf.len()];
        self.for_each_page(ctx, va, buf.len(), |ctx, frame, in_page, done, take| {
            let mut chunk = vec![0u8; take];
            let frame_at = match frame {
                PhysFrame::Global(a) => PhysFrame::Global(a.offset(in_page as u64)),
                PhysFrame::Local(n, a) => PhysFrame::Local(n, rack_sim::LAddr(a.0 + in_page)),
            };
            self.read_frame(ctx, frame_at, &mut chunk)?;
            out[done..done + take].copy_from_slice(&chunk);
            Ok(())
        })?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    /// Write `buf` starting at virtual address `va`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on unmapped or read-only pages, or foreign
    /// local frames.
    pub fn write(&self, ctx: &Arc<NodeCtx>, va: VirtAddr, buf: &[u8]) -> Result<(), SimError> {
        self.check_writable(ctx, va, buf.len())?;
        self.for_each_page(ctx, va, buf.len(), |ctx, frame, in_page, done, take| {
            let frame_at = match frame {
                PhysFrame::Global(a) => PhysFrame::Global(a.offset(in_page as u64)),
                PhysFrame::Local(n, a) => PhysFrame::Local(n, rack_sim::LAddr(a.0 + in_page)),
            };
            self.write_frame(ctx, frame_at, &buf[done..done + take])
        })
    }

    fn check_writable(&self, ctx: &Arc<NodeCtx>, va: VirtAddr, len: usize) -> Result<(), SimError> {
        let mut done = 0usize;
        while done < len {
            let cur = va.offset(done as u64);
            let take = (PAGE_SIZE - cur.page_offset()).min(len - done);
            if let Some(pte) = self.translate(ctx, cur)? {
                if !pte.writable {
                    return Err(SimError::Protocol(format!(
                        "write to read-only page at {cur}"
                    )));
                }
            }
            done += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{GAddr, Rack, RackConfig};

    fn setup() -> (Rack, AddressSpace) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(7, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        (rack, space)
    }

    fn map_global_page(rack: &Rack, space: &AddressSpace, vpn: u64, writable: bool) -> GAddr {
        let frame = rack.global().alloc(PAGE_SIZE, PAGE_SIZE).unwrap();
        space
            .map(
                &rack.node(0),
                vpn,
                Pte::new(PhysFrame::Global(frame), writable),
            )
            .unwrap();
        frame
    }

    #[test]
    fn cross_page_rw_roundtrip() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        map_global_page(&rack, &space, 0, true);
        map_global_page(&rack, &space, 1, true);
        assert_eq!(space.mapped_pages(), 2);

        let data: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        let va = VirtAddr(PAGE_SIZE as u64 - 100); // straddles the page boundary
        space.write(&n0, va, &data).unwrap();
        let mut out = vec![0u8; 200];
        space.read(&n0, va, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn other_node_sees_writes_through_shared_space() {
        let (rack, space) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        map_global_page(&rack, &space, 4, true);
        space
            .write(&n0, VirtAddr::from_vpn(4), b"shared-address-space")
            .unwrap();
        let mut out = vec![0u8; 20];
        space.read(&n1, VirtAddr::from_vpn(4), &mut out).unwrap();
        assert_eq!(&out, b"shared-address-space");
    }

    #[test]
    fn unmapped_access_is_protocol_error() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        let mut buf = [0u8; 4];
        assert!(space.read(&n0, VirtAddr(0), &mut buf).is_err());
        assert!(space.write(&n0, VirtAddr(0), &buf).is_err());
    }

    #[test]
    fn read_only_page_rejects_writes() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        map_global_page(&rack, &space, 2, false);
        let mut buf = [0u8; 4];
        assert!(space.read(&n0, VirtAddr::from_vpn(2), &mut buf).is_ok());
        assert!(space.write(&n0, VirtAddr::from_vpn(2), &buf).is_err());
    }

    #[test]
    fn foreign_local_frame_rejected() {
        let (rack, space) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let local = rack_sim::LAddr(0);
        space
            .map(&n0, 3, Pte::new(PhysFrame::Local(n0.id(), local), true))
            .unwrap();
        let mut buf = [0u8; 4];
        assert!(space.read(&n1, VirtAddr::from_vpn(3), &mut buf).is_err());
    }

    #[test]
    fn unmap_accounts() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        map_global_page(&rack, &space, 9, true);
        assert_eq!(space.mapped_pages(), 1);
        assert!(space.unmap(&n0, 9).unwrap().is_some());
        assert_eq!(space.mapped_pages(), 0);
        assert!(space.unmap(&n0, 9).unwrap().is_none());
        assert_eq!(space.mapped_pages(), 0);
    }

    #[test]
    fn migrating_page_blocks_reads_and_writes() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        map_global_page(&rack, &space, 6, true);
        let pte = space
            .translate(&n0, VirtAddr::from_vpn(6))
            .unwrap()
            .unwrap();
        space.map(&n0, 6, pte.begin_migration()).unwrap();
        let mut buf = [0u8; 8];
        assert!(matches!(
            space.read(&n0, VirtAddr::from_vpn(6), &mut buf),
            Err(SimError::WouldBlock)
        ));
        assert!(matches!(
            space.write(&n0, VirtAddr::from_vpn(6), &buf),
            Err(SimError::WouldBlock)
        ));
        space.map(&n0, 6, pte.end_migration()).unwrap();
        assert!(space.read(&n0, VirtAddr::from_vpn(6), &mut buf).is_ok());
        assert!(space.write(&n0, VirtAddr::from_vpn(6), &buf).is_ok());
    }

    #[test]
    fn attached_sampler_sees_translations() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        map_global_page(&rack, &space, 1, true);
        let ring = AccessRing::new(16, 1);
        space.attach_sampler(Some(ring.clone()));
        let mut buf = [0u8; 4];
        space.read(&n0, VirtAddr::from_vpn(1), &mut buf).unwrap();
        let seen = ring.drain();
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|a| a.vpn == 1 && a.asid == 7));
        space.attach_sampler(None);
        space.read(&n0, VirtAddr::from_vpn(1), &mut buf).unwrap();
        assert!(ring.drain().is_empty(), "detached ring sees nothing");
    }

    #[test]
    fn huge_mapping_covers_whole_region() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        let region = rack
            .global()
            .alloc(crate::addr::HUGE_PAGE_SIZE, PAGE_SIZE)
            .unwrap();
        space
            .map(&n0, 512, Pte::new(PhysFrame::Global(region), true).huge())
            .unwrap();
        assert_eq!(space.mapped_pages(), 512);

        // Head vpn translates to the region base.
        let head = space
            .translate(&n0, VirtAddr::from_vpn(512))
            .unwrap()
            .unwrap();
        assert_eq!(head.frame, PhysFrame::Global(region));
        assert_eq!(head.page_size, PageSize::Huge);

        // Interior vpns synthesize offset 4 KiB views.
        let mid = space
            .translate(&n0, VirtAddr::from_vpn(700))
            .unwrap()
            .unwrap();
        assert_eq!(
            mid.frame,
            PhysFrame::Global(region.offset((700 - 512) * PAGE_SIZE as u64))
        );
        assert!(mid.writable);
        assert_eq!(mid.page_size, PageSize::Huge);

        // Outside the region stays unmapped.
        assert!(space
            .translate(&n0, VirtAddr::from_vpn(1024))
            .unwrap()
            .is_none());
        assert!(space
            .translate(&n0, VirtAddr::from_vpn(511))
            .unwrap()
            .is_none());

        // Byte-granular access works across interior page boundaries.
        let va = VirtAddr::from_vpn(600).offset(PAGE_SIZE as u64 - 5);
        space.write(&n0, va, b"huge-page-span").unwrap();
        let mut out = [0u8; 14];
        space.read(&n0, va, &mut out).unwrap();
        assert_eq!(&out, b"huge-page-span");

        assert!(space.unmap(&n0, 512).unwrap().is_some());
        assert_eq!(space.mapped_pages(), 0);
        assert!(space
            .translate(&n0, VirtAddr::from_vpn(700))
            .unwrap()
            .is_none());
    }

    #[test]
    fn migrating_huge_region_blocks_interior_access() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        let region = rack
            .global()
            .alloc(crate::addr::HUGE_PAGE_SIZE, PAGE_SIZE)
            .unwrap();
        let pte = Pte::new(PhysFrame::Global(region), true).huge();
        space.map(&n0, 0, pte).unwrap();
        space.map(&n0, 0, pte.begin_migration()).unwrap();
        let mut buf = [0u8; 8];
        assert!(matches!(
            space.read(&n0, VirtAddr::from_vpn(300), &mut buf),
            Err(SimError::WouldBlock)
        ));
        space.map(&n0, 0, pte).unwrap();
        assert!(space.read(&n0, VirtAddr::from_vpn(300), &mut buf).is_ok());
        assert_eq!(space.mapped_pages(), 512, "remap keeps the count");
    }

    #[test]
    #[should_panic(expected = "region head")]
    fn unaligned_huge_map_panics() {
        let (rack, space) = setup();
        let region = rack.global().alloc(PAGE_SIZE, PAGE_SIZE).unwrap();
        let _ = space.map(
            &rack.node(0),
            7,
            Pte::new(PhysFrame::Global(region), true).huge(),
        );
    }

    #[test]
    fn translate_reports_mapping() {
        let (rack, space) = setup();
        let n0 = rack.node(0);
        let frame = map_global_page(&rack, &space, 5, true);
        let pte = space
            .translate(&n0, VirtAddr::from_vpn(5).offset(123))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame, PhysFrame::Global(frame));
        assert!(space
            .translate(&n0, VirtAddr::from_vpn(6))
            .unwrap()
            .is_none());
    }
}
