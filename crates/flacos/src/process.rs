//! Processes: applications wrapped in fault boxes.
//!
//! A FlacOS process couples an application's execution with its
//! vertically consolidated state ([`flacos_fault::FaultBox`]) and its
//! redundancy protection. Because every byte the process owns is in
//! global memory behind the box, the process can run on — and migrate
//! between — any node of the rack.

use flacos_fault::fault_box::FaultBox;
use flacos_fault::redundancy::Protection;
use rack_sim::{NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Eligible to run.
    Ready,
    /// Currently executing.
    Running,
    /// Its state was found faulty; awaiting recovery.
    Failed,
    /// Finished.
    Exited,
}

/// A running application and its consolidated state.
#[derive(Debug)]
pub struct Process {
    pid: u64,
    fbox: FaultBox,
    protection: Protection,
    state: ProcessState,
}

impl Process {
    /// Wrap a built fault box and its protection into a process.
    pub fn new(pid: u64, fbox: FaultBox, protection: Protection) -> Self {
        Process {
            pid,
            fbox,
            protection,
            state: ProcessState::Ready,
        }
    }

    /// Process identifier.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ProcessState {
        self.state
    }

    /// Node currently hosting the process.
    pub fn home(&self) -> NodeId {
        self.fbox.home()
    }

    /// The process's fault box.
    pub fn fault_box(&self) -> &FaultBox {
        &self.fbox
    }

    /// Mutable access to the fault box (e.g. to attach comm buffers).
    pub fn fault_box_mut(&mut self) -> &mut FaultBox {
        &mut self.fbox
    }

    /// The redundancy protection guarding this process.
    pub fn protection(&self) -> &Protection {
        &self.protection
    }

    /// Mutable protection access (for custom capture schedules).
    pub fn protection_mut(&mut self) -> &mut Protection {
        &mut self.protection
    }

    /// Execute `work` against the process's address space on `ctx`,
    /// transitioning Ready → Running → Ready.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if the process is not `Ready` or runs on a
    /// node other than its home; `work` errors mark it `Failed`.
    pub fn run<T>(
        &mut self,
        ctx: &Arc<NodeCtx>,
        work: impl FnOnce(&Arc<NodeCtx>, &FaultBox) -> Result<T, SimError>,
    ) -> Result<T, SimError> {
        if self.state != ProcessState::Ready {
            return Err(SimError::Protocol(format!(
                "process {} not runnable in state {:?}",
                self.pid, self.state
            )));
        }
        if ctx.id() != self.fbox.home() {
            return Err(SimError::Protocol(format!(
                "process {} lives on {}, not {}",
                self.pid,
                self.fbox.home(),
                ctx.id()
            )));
        }
        self.state = ProcessState::Running;
        match work(ctx, &self.fbox) {
            Ok(v) => {
                self.state = ProcessState::Ready;
                Ok(v)
            }
            Err(e) => {
                self.state = ProcessState::Failed;
                Err(e)
            }
        }
    }

    /// Capture protection state now (checkpoint / replica refresh),
    /// regardless of the periodic schedule — call this at consistency
    /// points after committing important state.
    ///
    /// # Errors
    ///
    /// Propagates capture errors.
    pub fn protect_now(&mut self, ctx: &Arc<NodeCtx>) -> Result<bool, SimError> {
        self.protection.force_capture(ctx, &self.fbox)?;
        Ok(true)
    }

    /// Run the periodic protection schedule (captures only when the
    /// policy's period has elapsed).
    ///
    /// # Errors
    ///
    /// Propagates capture errors.
    pub fn protect_tick(&mut self, ctx: &Arc<NodeCtx>) -> Result<bool, SimError> {
        self.protection.tick(ctx, &self.fbox)
    }

    /// Restore the process's full state from its protection and return
    /// it to `Ready`.
    ///
    /// # Errors
    ///
    /// Propagates restore errors.
    pub fn recover(&mut self, ctx: &Arc<NodeCtx>) -> Result<usize, SimError> {
        let restored = self.protection.restore_all(ctx, &self.fbox)?;
        self.state = ProcessState::Ready;
        Ok(restored)
    }

    /// Migrate the process to another node (state stays in place; only
    /// ownership moves).
    ///
    /// # Errors
    ///
    /// Propagates migration errors.
    pub fn migrate(&mut self, from: &NodeCtx, to: &NodeCtx) -> Result<(), SimError> {
        self.fbox.migrate(from, to)
    }

    /// Mark the process finished.
    pub fn exit(&mut self) {
        self.state = ProcessState::Exited;
    }
}
