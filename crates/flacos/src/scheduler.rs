//! Rack-wide scheduling over shared load state.
//!
//! Per-node run-queue lengths are shared state consulted on every
//! placement and mutated on every task start/finish — a read/write mix
//! that shifts with the workload (bursty dispatch is write-heavy; steady
//! state is placement-read-heavy). They therefore live behind a
//! [`SyncCell`] with the **adaptive** driver enabled: the backend starts
//! replicated and re-tunes itself from the observed mix (paper §3.2's
//! "match the primitive to the structure", plus GCS/Soul's observation
//! that the best primitive shifts at runtime).

use flacdk::sync::{AdaptiveConfig, SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::{Decoder, Encoder};
use flacos_tier::TierBudget;
use rack_sim::{GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// The shared run-queue lengths, one slot per node.
#[derive(Debug, Default, Clone)]
struct SchedState {
    load: Vec<u64>,
}

const SCHED_STARTED: u8 = 0;
const SCHED_FINISHED: u8 = 1;

impl SyncState for SchedState {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        let (Ok(tag), Ok(node)) = (d.u8(), d.u64()) else {
            return;
        };
        let Some(slot) = self.load.get_mut(node as usize) else {
            return;
        };
        match tag {
            SCHED_STARTED => *slot += 1,
            // Saturating decrement: an extra "finished" is harmless.
            SCHED_FINISHED => *slot = slot.saturating_sub(1),
            _ => {}
        }
    }
}

fn sched_op(tag: u8, node: NodeId) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(tag).put_u64(node.0 as u64);
    e.into_vec()
}

/// Shared run-queue lengths behind the adaptive sync cell.
#[derive(Debug)]
pub struct RackScheduler {
    cell: Arc<SyncCell<SchedState>>,
    nodes: usize,
}

impl RackScheduler {
    /// Allocate scheduler state for `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(global: &GlobalMemory, nodes: usize) -> Result<Arc<Self>, SimError> {
        let cell = SyncCell::alloc(
            global,
            "sched_load",
            SyncCellConfig::new(nodes, SyncPolicy::NodeReplicated)
                .with_log(8192, 48)
                .with_adaptive(AdaptiveConfig::default()),
            SchedState {
                load: vec![0; nodes],
            },
        )?;
        Ok(Arc::new(RackScheduler { cell, nodes }))
    }

    /// Number of nodes under management.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The backend the adaptive driver currently runs the load state on.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.cell.policy()
    }

    /// The sync cell guarding the load state, as a recovery hook.
    pub fn sync_cell(&self) -> Arc<dyn flacdk::sync::SyncRecover> {
        self.cell.clone()
    }

    /// Record one more runnable task on `node`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn task_started(&self, ctx: &NodeCtx, node: NodeId) -> Result<(), SimError> {
        self.cell.update(ctx, &sched_op(SCHED_STARTED, node))?;
        self.cell.gc(ctx)?;
        Ok(())
    }

    /// Record one task leaving `node`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn task_finished(&self, ctx: &NodeCtx, node: NodeId) -> Result<(), SimError> {
        self.cell.update(ctx, &sched_op(SCHED_FINISHED, node))?;
        self.cell.gc(ctx)?;
        Ok(())
    }

    /// Current load of `node`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn load_of(&self, ctx: &NodeCtx, node: NodeId) -> Result<u64, SimError> {
        self.cell
            .read(ctx, |s| s.load.get(node.0).copied().unwrap_or(0))
    }

    /// Pick the least-loaded *live* node (ties break to the lowest id).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when every node is down.
    pub fn place(&self, ctx: &NodeCtx, alive: impl Fn(NodeId) -> bool) -> Result<NodeId, SimError> {
        let best = self.cell.read(ctx, |s| {
            let mut best: Option<(u64, NodeId)> = None;
            for (i, &load) in s.load.iter().enumerate() {
                let id = NodeId(i);
                if !alive(id) {
                    continue;
                }
                if best.map(|(b, _)| load < b).unwrap_or(true) {
                    best = Some((load, id));
                }
            }
            best
        })?;
        best.map(|(_, id)| id)
            .ok_or_else(|| SimError::Protocol("no live node to place on".into()))
    }

    /// Tier-aware placement: among live nodes with at least
    /// `min_free_bytes` of local-DRAM tier headroom (per `budget`), pick
    /// the least loaded (ties break to the lowest id). When every live
    /// node is tier-exhausted, fall back to plain load-based
    /// [`RackScheduler::place`] — a full fast tier is a performance
    /// concern, not a placement failure.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when every node is down.
    pub fn place_tiered(
        &self,
        ctx: &NodeCtx,
        alive: impl Fn(NodeId) -> bool,
        budget: &TierBudget,
        min_free_bytes: u64,
    ) -> Result<NodeId, SimError> {
        let loads = self.cell.read(ctx, |s| s.load.clone())?;
        let mut best: Option<(u64, NodeId)> = None;
        for (i, &load) in loads.iter().enumerate() {
            let id = NodeId(i);
            if !alive(id) {
                continue;
            }
            if budget.free_bytes(ctx, id)? < min_free_bytes {
                continue;
            }
            if best.map(|(b, _)| load < b).unwrap_or(true) {
                best = Some((load, id));
            }
        }
        match best {
            Some((_, id)) => Ok(id),
            None => self.place(ctx, alive),
        }
    }

    /// Imbalance = max load − min load across live nodes.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn imbalance(
        &self,
        ctx: &NodeCtx,
        alive: impl Fn(NodeId) -> bool,
    ) -> Result<u64, SimError> {
        self.cell.read(ctx, |s| {
            let mut min = u64::MAX;
            let mut max = 0u64;
            for (i, &l) in s.load.iter().enumerate() {
                if !alive(NodeId(i)) {
                    continue;
                }
                min = min.min(l);
                max = max.max(l);
            }
            if min == u64::MAX {
                0
            } else {
                max - min
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup(n: usize) -> (Rack, Arc<RackScheduler>) {
        let rack = Rack::new(RackConfig::n_node(n));
        let sched = RackScheduler::alloc(rack.global(), n).unwrap();
        (rack, sched)
    }

    #[test]
    fn placement_follows_load() {
        let (rack, sched) = setup(3);
        let n0 = rack.node(0);
        sched.task_started(&n0, NodeId(0)).unwrap();
        sched.task_started(&n0, NodeId(0)).unwrap();
        sched.task_started(&n0, NodeId(1)).unwrap();
        assert_eq!(sched.place(&n0, |_| true).unwrap(), NodeId(2));
        sched.task_started(&n0, NodeId(2)).unwrap();
        sched.task_started(&n0, NodeId(2)).unwrap();
        assert_eq!(sched.place(&n0, |_| true).unwrap(), NodeId(1));
        assert_eq!(sched.imbalance(&n0, |_| true).unwrap(), 1);
    }

    #[test]
    fn finished_tasks_reduce_load_saturating() {
        let (rack, sched) = setup(2);
        let n0 = rack.node(0);
        sched.task_started(&n0, NodeId(1)).unwrap();
        sched.task_finished(&n0, NodeId(1)).unwrap();
        sched.task_finished(&n0, NodeId(1)).unwrap(); // extra is harmless
        assert_eq!(sched.load_of(&n0, NodeId(1)).unwrap(), 0);
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let (rack, sched) = setup(3);
        let n1 = rack.node(1);
        // Node 0 is empty but dead; placement must avoid it.
        assert_eq!(sched.place(&n1, |id| id != NodeId(0)).unwrap(), NodeId(1));
        assert!(sched.place(&n1, |_| false).is_err(), "nothing alive");
    }

    #[test]
    fn tiered_placement_avoids_exhausted_nodes() {
        let (rack, sched) = setup(3);
        let n0 = rack.node(0);
        let budget = TierBudget::alloc(rack.global(), 3, 8192).unwrap();
        // Node 0 is idle but its fast tier is full; node 1 has headroom.
        sched.task_started(&n0, NodeId(1)).unwrap();
        sched.task_started(&n0, NodeId(2)).unwrap();
        sched.task_started(&n0, NodeId(2)).unwrap();
        assert!(budget.charge(&n0, NodeId(0), 8192).unwrap());
        assert_eq!(
            sched.place_tiered(&n0, |_| true, &budget, 4096).unwrap(),
            NodeId(1)
        );
        // All tiers exhausted → fall back to pure load (node 0 is idle).
        assert!(budget.charge(&n0, NodeId(1), 8192).unwrap());
        assert!(budget.charge(&n0, NodeId(2), 8192).unwrap());
        assert_eq!(
            sched.place_tiered(&n0, |_| true, &budget, 4096).unwrap(),
            NodeId(0)
        );
        // Dead nodes stay excluded even with headroom.
        budget.credit(&n0, NodeId(2), 8192).unwrap();
        assert_eq!(
            sched
                .place_tiered(&n0, |id| id != NodeId(2), &budget, 4096)
                .unwrap(),
            NodeId(0)
        );
    }

    #[test]
    fn decisions_visible_from_any_node() {
        let (rack, sched) = setup(2);
        sched.task_started(&rack.node(0), NodeId(0)).unwrap();
        // Node 1 sees node 0's load without any synchronization work.
        assert_eq!(sched.load_of(&rack.node(1), NodeId(0)).unwrap(), 1);
        assert_eq!(sched.nodes(), 2);
    }
}
