//! Rack-wide interrupts — the software form of the paper's §5 open
//! challenge.
//!
//! §5 names three interrupt capabilities today's memory interconnects
//! lack: cross-node **IPI**, **mwait**-style wake-on-memory-write, and
//! rack-wide **interrupt routing** (`irq_balance` across nodes). Until
//! hardware provides them, FlacOS implements all three over what the
//! fabric *does* offer — messaging and polled global memory — which is
//! exactly the workaround the paper anticipates:
//!
//! * [`RackIpi::send`] / [`RackIpi::poll`] — doorbell IPIs over the
//!   interconnect message fabric.
//! * [`mwait`] — wait for a [`GlobalCell`] to change value, with an
//!   explicit polling cost model (each poll is one fabric read).
//! * [`RackIpi::route_external`] — deliver an external device interrupt
//!   to the least-loaded live node via the shared scheduler state.

use crate::scheduler::RackScheduler;
use flacdk::hw::GlobalCell;
use rack_sim::{NodeCtx, NodeId, SimError};

/// Fabric port reserved for inter-processor interrupts.
pub const IPI_PORT: u16 = 9100;

/// A delivered inter-processor interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipi {
    /// Sending node.
    pub from: NodeId,
    /// Interrupt vector.
    pub vector: u32,
}

/// Rack-wide IPI facility. Stateless; all state is in the fabric queues.
#[derive(Debug, Clone, Copy, Default)]
pub struct RackIpi;

impl RackIpi {
    /// A new facility handle.
    pub fn new() -> Self {
        RackIpi
    }

    /// Send interrupt `vector` to `target`. Returns the simulated
    /// arrival time.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is down or the link is severed.
    pub fn send(&self, ctx: &NodeCtx, target: NodeId, vector: u32) -> Result<u64, SimError> {
        ctx.send(target, IPI_PORT, vector.to_le_bytes().to_vec())
    }

    /// Poll for the next pending IPI on this node.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when none is pending.
    pub fn poll(&self, ctx: &NodeCtx) -> Result<Ipi, SimError> {
        let msg = ctx.try_recv(IPI_PORT)?;
        let vector = msg
            .payload
            .get(..4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
            .ok_or_else(|| SimError::Protocol("malformed IPI".into()))?;
        Ok(Ipi {
            from: msg.from,
            vector,
        })
    }

    /// Pending IPIs on this node.
    pub fn pending(&self, ctx: &NodeCtx) -> usize {
        ctx.pending(IPI_PORT)
    }

    /// Route an external (device) interrupt to the least-loaded live
    /// node — rack-wide `irq_balance`. Returns the chosen node.
    ///
    /// # Errors
    ///
    /// Propagates placement and fabric errors.
    pub fn route_external(
        &self,
        ctx: &NodeCtx,
        scheduler: &RackScheduler,
        alive: impl Fn(NodeId) -> bool,
        vector: u32,
    ) -> Result<NodeId, SimError> {
        let target = scheduler.place(ctx, alive)?;
        if target == ctx.id() {
            // Local delivery: enqueue to ourselves (zero-hop doorbell).
            ctx.send(target, IPI_PORT, vector.to_le_bytes().to_vec())?;
        } else {
            self.send(ctx, target, vector)?;
        }
        Ok(target)
    }
}

/// Wait for `cell` to change away from `old` — the software analogue of
/// `monitor`/`mwait` on global memory. Each poll costs one fabric read
/// plus `poll_interval_ns` of idle time; gives up after `max_polls`.
///
/// Returns the observed new value.
///
/// # Errors
///
/// [`SimError::WouldBlock`] if the value never changed within the poll
/// budget; memory errors are propagated.
pub fn mwait(
    ctx: &NodeCtx,
    cell: &GlobalCell,
    old: u64,
    poll_interval_ns: u64,
    max_polls: u64,
) -> Result<u64, SimError> {
    for _ in 0..max_polls {
        let v = cell.load(ctx)?;
        if v != old {
            return Ok(v);
        }
        ctx.charge(poll_interval_ns);
    }
    Err(SimError::WouldBlock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn ipi_roundtrip_between_nodes() {
        let rack = Rack::new(RackConfig::small_test());
        let ipi = RackIpi::new();
        let (n0, n1) = (rack.node(0), rack.node(1));
        ipi.send(&n0, n1.id(), 0x42).unwrap();
        assert_eq!(ipi.pending(&n1), 1);
        let got = ipi.poll(&n1).unwrap();
        assert_eq!(
            got,
            Ipi {
                from: n0.id(),
                vector: 0x42
            }
        );
        assert!(matches!(ipi.poll(&n1), Err(SimError::WouldBlock)));
    }

    #[test]
    fn ipi_to_dead_node_fails() {
        let rack = Rack::new(RackConfig::small_test());
        let ipi = RackIpi::new();
        rack.faults().crash_node(NodeId(1), 0);
        assert!(matches!(
            ipi.send(&rack.node(0), NodeId(1), 1),
            Err(SimError::NodeDown { .. })
        ));
    }

    #[test]
    fn mwait_wakes_on_remote_store() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let cell = GlobalCell::alloc(rack.global(), 0).unwrap();

        // No change: poll budget exhausts, charging idle time.
        let t0 = n0.clock().now();
        assert!(matches!(
            mwait(&n0, &cell, 0, 100, 5),
            Err(SimError::WouldBlock)
        ));
        assert!(n0.clock().now() - t0 >= 500);

        // Another node stores: waiter observes the new value.
        cell.store(&n1, 7).unwrap();
        assert_eq!(mwait(&n0, &cell, 0, 100, 5).unwrap(), 7);
    }

    #[test]
    fn external_interrupts_balance_across_nodes() {
        let rack = Rack::new(RackConfig::n_node(3));
        let sched = crate::scheduler::RackScheduler::alloc(rack.global(), 3).unwrap();
        let ipi = RackIpi::new();
        let n0 = rack.node(0);
        // Load node 0 and node 1; the IRQ must land on node 2.
        sched.task_started(&n0, NodeId(0)).unwrap();
        sched.task_started(&n0, NodeId(1)).unwrap();
        let target = ipi.route_external(&n0, &sched, |_| true, 9).unwrap();
        assert_eq!(target, NodeId(2));
        assert_eq!(ipi.poll(&rack.node(2)).unwrap().vector, 9);
    }

    #[test]
    fn routing_skips_dead_nodes() {
        let rack = Rack::new(RackConfig::n_node(2));
        let sched = crate::scheduler::RackScheduler::alloc(rack.global(), 2).unwrap();
        let ipi = RackIpi::new();
        rack.faults().crash_node(NodeId(0), 0);
        let n1 = rack.node(1);
        let target = ipi
            .route_external(&n1, &sched, |id| rack.is_alive(id), 3)
            .unwrap();
        assert_eq!(target, NodeId(1), "only live node");
        assert_eq!(ipi.poll(&n1).unwrap().vector, 3);
    }
}
