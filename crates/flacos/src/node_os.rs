//! The per-node OS instance.
//!
//! Each node runs its own [`NodeOs`] (paper §2.1: every node actively
//! executes an independent OS instance), but the instances *coordinate
//! through shared kernel state*: one file system, one scheduler, one
//! RPC context table, one health record — all in global memory. What
//! stays node-local is exactly what the paper prescribes: the metadata
//! replica inside the mount, the TLB, and the socket-table replica.

use crate::process::Process;
use crate::rack::FlacRack;
use flacdk::reliability::checkpoint::CheckpointManager;
use flacos_fault::fault_box::FaultBoxBuilder;
use flacos_fault::redundancy::{Criticality, Protection, RedundancyPolicy};
use flacos_fs::memfs::MemFs;
use flacos_ipc::rpc::RpcRegistry;
use flacos_ipc::socket_meta::SocketRegistry;
use flacos_mem::fault::{PageFaultHandler, PagePlacement};
use flacos_mem::tlb::Tlb;
use flacos_mem::AddressSpace;
use flacos_tier::{TierConfig, TierDaemon, TierTickReport};
use rack_sim::{NodeCtx, NodeId, SimError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default software-TLB capacity per node.
const TLB_ENTRIES: usize = 1024;

/// One node's operating-system instance on a booted [`FlacRack`].
#[derive(Debug)]
pub struct NodeOs {
    rack: FlacRack,
    node: Arc<NodeCtx>,
    fs: MemFs,
    sockets: SocketRegistry,
    tlb: Tlb,
    fault_handler: PageFaultHandler,
    tier: TierDaemon,
    next_pid: AtomicU64,
}

impl NodeOs {
    pub(crate) fn start(rack: FlacRack, node: Arc<NodeCtx>) -> Self {
        let fs = MemFs::mount(rack.fs_shared().clone(), node.clone());
        let sockets = SocketRegistry::new(rack.socket_log().clone(), node.clone());
        let tlb = Tlb::new(node.clone(), TLB_ENTRIES);
        let fault_handler = PageFaultHandler::new(rack.frames().clone(), PagePlacement::Global);
        let tier_config = TierConfig {
            local_budget_bytes: rack.tier_budget().budget_bytes(),
            ..TierConfig::default()
        };
        let tier =
            TierDaemon::new(node.clone(), tier_config).with_budget(rack.tier_budget().clone());
        let next_pid = AtomicU64::new((node.id().0 as u64) << 32 | 1);
        NodeOs {
            rack,
            node,
            fs,
            sockets,
            tlb,
            fault_handler,
            tier,
            next_pid,
        }
    }

    /// The node this instance runs on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    /// The booted rack.
    pub fn rack(&self) -> &FlacRack {
        &self.rack
    }

    /// This node's file-system mount.
    pub fn fs_mut(&mut self) -> &mut MemFs {
        &mut self.fs
    }

    /// This node's socket registry view.
    pub fn sockets_mut(&mut self) -> &mut SocketRegistry {
        &mut self.sockets
    }

    /// This node's software TLB.
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// This node's page-fault handler.
    pub fn fault_handler(&self) -> &PageFaultHandler {
        &self.fault_handler
    }

    /// This node's page-tiering daemon.
    pub fn tier(&self) -> &TierDaemon {
        &self.tier
    }

    /// This node's page-tiering daemon, mutably.
    pub fn tier_mut(&mut self) -> &mut TierDaemon {
        &mut self.tier
    }

    /// The shared RPC context table.
    pub fn rpc(&self) -> &Arc<RpcRegistry> {
        self.rack.rpc()
    }

    /// Publish a liveness heartbeat.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn heartbeat(&self) -> Result<(), SimError> {
        self.rack.monitor().beat(&self.node)
    }

    /// Housekeeping tick: heartbeat plus servicing any pending TLB
    /// shootdown requests from peer nodes. Returns how many shootdowns
    /// were serviced.
    ///
    /// # Errors
    ///
    /// Propagates memory and fabric errors.
    pub fn tick(&mut self) -> Result<usize, SimError> {
        self.heartbeat()?;
        self.tlb.service_shootdowns()
    }

    /// Run one tiering-daemon tick over `space`: drain the telemetry
    /// ring, then demote/promote pages under the rack-shared budget, with
    /// each remap driving a rack-wide TLB shootdown from this node's TLB.
    ///
    /// # Errors
    ///
    /// Propagates memory and fabric errors.
    pub fn tier_tick(&mut self, space: &AddressSpace) -> Result<TierTickReport, SimError> {
        let peers: Vec<NodeId> = (0..self.rack.sim().node_count()).map(NodeId).collect();
        let frames = self.rack.frames().clone();
        let tlb = &mut self.tlb;
        let mut shoot = |asid: u64, vpn: u64, span: u64| -> Result<(), SimError> {
            let expected = tlb.begin_shootdown_range(&peers, asid, vpn, span)?;
            // Peers ack when they next run `tick()`; drain any that
            // already arrived but do not block on stragglers.
            let _ = tlb.collect_acks(expected);
            Ok(())
        };
        self.tier.tick(space, &frames, &mut shoot)
    }

    /// Spawn a process on this node with protection derived from its
    /// criticality, registering it with the rack scheduler.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn spawn(
        &mut self,
        heap_pages: usize,
        criticality: Criticality,
    ) -> Result<Process, SimError> {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        let fbox = FaultBoxBuilder::new(pid).heap_pages(heap_pages).build(
            &self.node,
            self.node.global(),
            self.rack.alloc().clone(),
            self.rack.frames(),
            self.rack.epochs().clone(),
        )?;
        let protection = Protection::new(
            RedundancyPolicy::for_criticality(criticality),
            CheckpointManager::new(self.rack.alloc().clone(), self.rack.epochs().clone()),
        );
        let mut process = Process::new(pid, fbox, protection);
        process.protect_now(&self.node)?;
        self.rack.scheduler().task_started(&self.node, self.id())?;
        Ok(process)
    }

    /// Retire a process: deregister from the scheduler and mark exited.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn reap(&mut self, process: &mut Process) -> Result<(), SimError> {
        self.rack
            .scheduler()
            .task_finished(&self.node, process.home())?;
        process.exit();
        Ok(())
    }

    /// Accept a process migrating in from another node: scheduler
    /// accounting moves with it.
    ///
    /// # Errors
    ///
    /// Propagates migration errors.
    pub fn adopt(&mut self, process: &mut Process, from: &NodeCtx) -> Result<(), SimError> {
        let old_home = process.home();
        process.migrate(from, &self.node)?;
        self.rack.scheduler().task_finished(&self.node, old_home)?;
        self.rack.scheduler().task_started(&self.node, self.id())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessState;
    use rack_sim::RackConfig;

    fn booted() -> FlacRack {
        FlacRack::boot(RackConfig::small_test().with_global_mem(128 << 20)).unwrap()
    }

    #[test]
    fn spawn_run_reap_lifecycle() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut p = os0.spawn(2, Criticality::Low).unwrap();
        assert_eq!(p.state(), ProcessState::Ready);
        assert_eq!(rack.scheduler().load_of(os0.node(), os0.id()).unwrap(), 1);

        let result = p
            .run(os0.node(), |ctx, fbox| {
                fbox.space().write(ctx, fbox.heap_va(0), b"work")?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(result, 42);
        assert_eq!(p.state(), ProcessState::Ready);

        os0.reap(&mut p).unwrap();
        assert_eq!(p.state(), ProcessState::Exited);
        assert_eq!(rack.scheduler().load_of(os0.node(), os0.id()).unwrap(), 0);
    }

    #[test]
    fn process_failure_then_recovery() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut p = os0.spawn(1, Criticality::Medium).unwrap();
        p.run(os0.node(), |ctx, fbox| {
            fbox.space().write(ctx, fbox.heap_va(0), b"good")
        })
        .unwrap();
        p.protect_now(os0.node()).unwrap();

        let err = p.run(os0.node(), |_, _| -> Result<(), SimError> {
            Err(SimError::Protocol("app crashed".into()))
        });
        assert!(err.is_err());
        assert_eq!(p.state(), ProcessState::Failed);

        let restored = p.recover(os0.node()).unwrap();
        assert!(restored > 0);
        assert_eq!(p.state(), ProcessState::Ready);
        p.run(os0.node(), |ctx, fbox| {
            let mut buf = [0u8; 4];
            fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
            assert_eq!(&buf, b"good");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn migration_between_node_os_instances() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut os1 = rack.node_os(1);
        let mut p = os0.spawn(1, Criticality::Low).unwrap();
        p.run(os0.node(), |ctx, fbox| {
            fbox.space().write(ctx, fbox.heap_va(0), b"movable")
        })
        .unwrap();

        os1.adopt(&mut p, os0.node()).unwrap();
        assert_eq!(p.home(), os1.id());
        assert_eq!(rack.scheduler().load_of(os1.node(), os0.id()).unwrap(), 0);
        assert_eq!(rack.scheduler().load_of(os1.node(), os1.id()).unwrap(), 1);

        // Runs on the new home, same state.
        p.run(os1.node(), |ctx, fbox| {
            let mut buf = [0u8; 7];
            fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
            assert_eq!(&buf, b"movable");
            Ok(())
        })
        .unwrap();
        // And refuses to run on the old home.
        assert!(p.run(os0.node(), |_, _| Ok(())).is_err());
    }

    #[test]
    fn heartbeats_flow_to_monitor() {
        let rack = booted();
        let os1 = rack.node_os(1);
        os1.heartbeat().unwrap();
        let health = rack
            .monitor()
            .health_of(&rack.sim().node(0), os1.id())
            .unwrap();
        assert_eq!(health, flacdk::reliability::monitor::NodeHealth::Healthy);
    }

    #[test]
    fn tier_daemon_promotes_sampled_hot_pages() {
        use flacos_mem::addr::VirtAddr;
        use flacos_mem::{PhysFrame, Pte};

        let rack = booted();
        let mut os0 = rack.node_os(0);
        let space = AddressSpace::alloc(
            42,
            rack.sim().global(),
            rack.alloc().clone(),
            rack.epochs().clone(),
            rack.retired().clone(),
        )
        .unwrap();
        let frame = rack.frames().alloc(os0.node()).unwrap();
        space
            .map(os0.node(), 11, Pte::new(PhysFrame::Global(frame), true))
            .unwrap();
        space
            .write(os0.node(), VirtAddr::from_vpn(11), &[9u8; 32])
            .unwrap();

        // Every translation on this space now feeds the daemon's ring.
        space.attach_sampler(Some(os0.tier().ring()));
        let mut buf = [0u8; 32];
        for _ in 0..6 {
            space
                .read(os0.node(), VirtAddr::from_vpn(11), &mut buf)
                .unwrap();
        }

        let report = os0.tier_tick(&space).unwrap();
        assert_eq!(report.promoted, 1);
        assert!(os0.tier().is_local(11));
        space
            .read(os0.node(), VirtAddr::from_vpn(11), &mut buf)
            .unwrap();
        assert_eq!(buf, [9u8; 32]);

        // The promotion charged the rack-shared ledger and its counters
        // surface in the rack metrics report.
        let budget = rack.tier_budget();
        let free = budget.free_bytes(os0.node(), os0.id()).unwrap();
        assert_eq!(free, budget.budget_bytes() - flacos_mem::PAGE_SIZE as u64);
        let report_text = rack.sim().metrics_report().to_string();
        assert!(
            report_text.contains("ctr[tier/promotions]"),
            "tier counters missing from:\n{report_text}"
        );

        // Peer OS instances service the shootdown on their next tick.
        let mut os1 = rack.node_os(1);
        os1.tick().unwrap();
    }

    #[test]
    fn pids_are_node_disjoint() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut os1 = rack.node_os(1);
        let p0 = os0.spawn(1, Criticality::Low).unwrap();
        let p1 = os1.spawn(1, Criticality::Low).unwrap();
        assert_ne!(p0.pid(), p1.pid());
        assert_eq!(p0.pid() >> 32, 0);
        assert_eq!(p1.pid() >> 32, 1);
    }
}
