//! The per-node OS instance.
//!
//! Each node runs its own [`NodeOs`] (paper §2.1: every node actively
//! executes an independent OS instance), but the instances *coordinate
//! through shared kernel state*: one file system, one scheduler, one
//! RPC context table, one health record — all in global memory. What
//! stays node-local is exactly what the paper prescribes: the metadata
//! replica inside the mount, the TLB, and the socket-table replica.

use crate::process::Process;
use crate::rack::FlacRack;
use flacdk::reliability::checkpoint::CheckpointManager;
use flacos_fault::fault_box::FaultBoxBuilder;
use flacos_fault::redundancy::{Criticality, Protection, RedundancyPolicy};
use flacos_fs::memfs::MemFs;
use flacos_ipc::rpc::RpcRegistry;
use flacos_ipc::socket_meta::SocketRegistry;
use flacos_mem::fault::{PageFaultHandler, PagePlacement};
use flacos_mem::tlb::Tlb;
use rack_sim::{NodeCtx, NodeId, SimError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default software-TLB capacity per node.
const TLB_ENTRIES: usize = 1024;

/// One node's operating-system instance on a booted [`FlacRack`].
#[derive(Debug)]
pub struct NodeOs {
    rack: FlacRack,
    node: Arc<NodeCtx>,
    fs: MemFs,
    sockets: SocketRegistry,
    tlb: Tlb,
    fault_handler: PageFaultHandler,
    next_pid: AtomicU64,
}

impl NodeOs {
    pub(crate) fn start(rack: FlacRack, node: Arc<NodeCtx>) -> Self {
        let fs = MemFs::mount(rack.fs_shared().clone(), node.clone());
        let sockets = SocketRegistry::new(rack.socket_log().clone(), node.clone());
        let tlb = Tlb::new(node.clone(), TLB_ENTRIES);
        let fault_handler = PageFaultHandler::new(rack.frames().clone(), PagePlacement::Global);
        let next_pid = AtomicU64::new((node.id().0 as u64) << 32 | 1);
        NodeOs {
            rack,
            node,
            fs,
            sockets,
            tlb,
            fault_handler,
            next_pid,
        }
    }

    /// The node this instance runs on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    /// The booted rack.
    pub fn rack(&self) -> &FlacRack {
        &self.rack
    }

    /// This node's file-system mount.
    pub fn fs_mut(&mut self) -> &mut MemFs {
        &mut self.fs
    }

    /// This node's socket registry view.
    pub fn sockets_mut(&mut self) -> &mut SocketRegistry {
        &mut self.sockets
    }

    /// This node's software TLB.
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// This node's page-fault handler.
    pub fn fault_handler(&self) -> &PageFaultHandler {
        &self.fault_handler
    }

    /// The shared RPC context table.
    pub fn rpc(&self) -> &Arc<RpcRegistry> {
        self.rack.rpc()
    }

    /// Publish a liveness heartbeat.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn heartbeat(&self) -> Result<(), SimError> {
        self.rack.monitor().beat(&self.node)
    }

    /// Spawn a process on this node with protection derived from its
    /// criticality, registering it with the rack scheduler.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn spawn(
        &mut self,
        heap_pages: usize,
        criticality: Criticality,
    ) -> Result<Process, SimError> {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        let fbox = FaultBoxBuilder::new(pid).heap_pages(heap_pages).build(
            &self.node,
            self.node.global(),
            self.rack.alloc().clone(),
            self.rack.frames(),
            self.rack.epochs().clone(),
        )?;
        let protection = Protection::new(
            RedundancyPolicy::for_criticality(criticality),
            CheckpointManager::new(self.rack.alloc().clone(), self.rack.epochs().clone()),
        );
        let mut process = Process::new(pid, fbox, protection);
        process.protect_now(&self.node)?;
        self.rack.scheduler().task_started(&self.node, self.id())?;
        Ok(process)
    }

    /// Retire a process: deregister from the scheduler and mark exited.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn reap(&mut self, process: &mut Process) -> Result<(), SimError> {
        self.rack
            .scheduler()
            .task_finished(&self.node, process.home())?;
        process.exit();
        Ok(())
    }

    /// Accept a process migrating in from another node: scheduler
    /// accounting moves with it.
    ///
    /// # Errors
    ///
    /// Propagates migration errors.
    pub fn adopt(&mut self, process: &mut Process, from: &NodeCtx) -> Result<(), SimError> {
        let old_home = process.home();
        process.migrate(from, &self.node)?;
        self.rack.scheduler().task_finished(&self.node, old_home)?;
        self.rack.scheduler().task_started(&self.node, self.id())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessState;
    use rack_sim::RackConfig;

    fn booted() -> FlacRack {
        FlacRack::boot(RackConfig::small_test().with_global_mem(128 << 20)).unwrap()
    }

    #[test]
    fn spawn_run_reap_lifecycle() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut p = os0.spawn(2, Criticality::Low).unwrap();
        assert_eq!(p.state(), ProcessState::Ready);
        assert_eq!(rack.scheduler().load_of(os0.node(), os0.id()).unwrap(), 1);

        let result = p
            .run(os0.node(), |ctx, fbox| {
                fbox.space().write(ctx, fbox.heap_va(0), b"work")?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(result, 42);
        assert_eq!(p.state(), ProcessState::Ready);

        os0.reap(&mut p).unwrap();
        assert_eq!(p.state(), ProcessState::Exited);
        assert_eq!(rack.scheduler().load_of(os0.node(), os0.id()).unwrap(), 0);
    }

    #[test]
    fn process_failure_then_recovery() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut p = os0.spawn(1, Criticality::Medium).unwrap();
        p.run(os0.node(), |ctx, fbox| {
            fbox.space().write(ctx, fbox.heap_va(0), b"good")
        })
        .unwrap();
        p.protect_now(os0.node()).unwrap();

        let err = p.run(os0.node(), |_, _| -> Result<(), SimError> {
            Err(SimError::Protocol("app crashed".into()))
        });
        assert!(err.is_err());
        assert_eq!(p.state(), ProcessState::Failed);

        let restored = p.recover(os0.node()).unwrap();
        assert!(restored > 0);
        assert_eq!(p.state(), ProcessState::Ready);
        p.run(os0.node(), |ctx, fbox| {
            let mut buf = [0u8; 4];
            fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
            assert_eq!(&buf, b"good");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn migration_between_node_os_instances() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut os1 = rack.node_os(1);
        let mut p = os0.spawn(1, Criticality::Low).unwrap();
        p.run(os0.node(), |ctx, fbox| {
            fbox.space().write(ctx, fbox.heap_va(0), b"movable")
        })
        .unwrap();

        os1.adopt(&mut p, os0.node()).unwrap();
        assert_eq!(p.home(), os1.id());
        assert_eq!(rack.scheduler().load_of(os1.node(), os0.id()).unwrap(), 0);
        assert_eq!(rack.scheduler().load_of(os1.node(), os1.id()).unwrap(), 1);

        // Runs on the new home, same state.
        p.run(os1.node(), |ctx, fbox| {
            let mut buf = [0u8; 7];
            fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
            assert_eq!(&buf, b"movable");
            Ok(())
        })
        .unwrap();
        // And refuses to run on the old home.
        assert!(p.run(os0.node(), |_, _| Ok(())).is_err());
    }

    #[test]
    fn heartbeats_flow_to_monitor() {
        let rack = booted();
        let os1 = rack.node_os(1);
        os1.heartbeat().unwrap();
        let health = rack
            .monitor()
            .health_of(&rack.sim().node(0), os1.id())
            .unwrap();
        assert_eq!(health, flacdk::reliability::monitor::NodeHealth::Healthy);
    }

    #[test]
    fn pids_are_node_disjoint() {
        let rack = booted();
        let mut os0 = rack.node_os(0);
        let mut os1 = rack.node_os(1);
        let p0 = os0.spawn(1, Criticality::Low).unwrap();
        let p1 = os1.spawn(1, Criticality::Low).unwrap();
        assert_ne!(p0.pid(), p1.pid());
        assert_eq!(p0.pid() >> 32, 0);
        assert_eq!(p1.pid() >> 32, 1);
    }
}
