//! Rack bootstrapping: the hardware description table in shared memory.
//!
//! Paper §5 "System Bootstrapping": *"data structures holding hardware
//! description, such as memory topology and bus hierarchy, can be stored
//! in shared memory to advertise available hardware resources to FlacOS
//! via FDT or ACPI."* The [`BootTable`] is that FDT-analogue: the first
//! node to boot publishes the rack's shape at a well-known location;
//! every other node discovers the hardware by reading it — no per-node
//! firmware configuration.

use flacdk::hw;
use rack_sim::{GAddr, NodeCtx, RackConfig, SimError};

/// Magic tag identifying a valid boot table.
const BOOT_MAGIC: u64 = 0xF1AC_05B0_07AB_1E00;
/// Serialized size of the table.
pub const BOOT_TABLE_BYTES: usize = 64;

/// The rack's hardware self-description, as published in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootTable {
    /// Number of nodes in the rack.
    pub nodes: u64,
    /// Cores per node.
    pub cores_per_node: u64,
    /// Global memory pool size in bytes.
    pub global_mem_bytes: u64,
    /// Per-node local memory in bytes.
    pub local_mem_bytes: u64,
    /// Interconnect load latency (identifies the fabric generation).
    pub fabric_read_ns: u64,
}

impl BootTable {
    /// Build the table describing `config`.
    pub fn describe(config: &RackConfig) -> Self {
        BootTable {
            nodes: config.topology.nodes() as u64,
            cores_per_node: config.topology.cores_per_node() as u64,
            global_mem_bytes: config.global_mem_bytes as u64,
            local_mem_bytes: config.local_mem_bytes as u64,
            fabric_read_ns: config.latency.global_read_ns,
        }
    }

    /// Publish the table at `addr` (the booting node's job).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn publish(&self, ctx: &NodeCtx, addr: GAddr) -> Result<(), SimError> {
        let mut bytes = [0u8; BOOT_TABLE_BYTES];
        for (i, v) in [
            BOOT_MAGIC,
            self.nodes,
            self.cores_per_node,
            self.global_mem_bytes,
            self.local_mem_bytes,
            self.fabric_read_ns,
        ]
        .into_iter()
        .enumerate()
        {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        hw::publish_bytes(ctx, addr, &bytes)
    }

    /// Discover the rack by reading the table at `addr` (every other
    /// node's boot path).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if no valid table is present.
    pub fn discover(ctx: &NodeCtx, addr: GAddr) -> Result<Self, SimError> {
        let mut bytes = [0u8; BOOT_TABLE_BYTES];
        hw::consume_bytes(ctx, addr, &mut bytes)?;
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8"));
        if word(0) != BOOT_MAGIC {
            return Err(SimError::Protocol("no boot table at this address".into()));
        }
        Ok(BootTable {
            nodes: word(1),
            cores_per_node: word(2),
            global_mem_bytes: word(3),
            local_mem_bytes: word(4),
            fabric_read_ns: word(5),
        })
    }

    /// Total cores the table advertises.
    pub fn total_cores(&self) -> u64 {
        self.nodes * self.cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::Rack;

    #[test]
    fn publish_then_discover_cross_node() {
        let config = RackConfig::two_node_hccs();
        let rack = Rack::new(config.clone());
        let addr = rack.global().alloc(BOOT_TABLE_BYTES, 64).unwrap();
        let table = BootTable::describe(&config);
        table.publish(&rack.node(0), addr).unwrap();

        let found = BootTable::discover(&rack.node(1), addr).unwrap();
        assert_eq!(found, table);
        assert_eq!(found.total_cores(), 640);
        assert_eq!(found.fabric_read_ns, config.latency.global_read_ns);
    }

    #[test]
    fn missing_table_is_detected() {
        let rack = Rack::new(RackConfig::small_test());
        let addr = rack.global().alloc(BOOT_TABLE_BYTES, 64).unwrap();
        assert!(BootTable::discover(&rack.node(0), addr).is_err());
    }
}
