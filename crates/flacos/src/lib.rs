//! # FlacOS — a coordinated, partially shared OS for rack-scale machines
//!
//! This crate is the paper's primary contribution assembled: it boots a
//! simulated memory-interconnected rack ([`rack_sim`]) and instantiates
//! the FlacOS kernel on it — the strategically *shared* kernel state in
//! global memory (page tables, page cache, IPC buffers, operation logs)
//! coordinated with per-node *local* state (metadata replicas, VMAs,
//! TLBs, socket tables), so the whole rack operates as one machine.
//!
//! ```
//! use flacos::prelude::*;
//!
//! # fn main() -> Result<(), rack_sim::SimError> {
//! // Boot a 2-node, 640-core rack joined by an HCCS-like interconnect.
//! let rack = FlacRack::boot(RackConfig::two_node_hccs())?;
//! let mut os0 = rack.node_os(0);
//! let mut os1 = rack.node_os(1);
//!
//! // One file system, one page cache copy, visible from every node.
//! os0.fs_mut().mkdir("/etc")?;
//! os0.fs_mut().write_file("/etc/motd", b"rack as a computer")?;
//! assert_eq!(os1.fs_mut().read_file("/etc/motd")?, b"rack as a computer");
//! # Ok(())
//! # }
//! ```
//!
//! Layer map (paper section → crate):
//!
//! | Layer | Crate |
//! |---|---|
//! | Rack hardware (non-coherent shared memory, faults) | [`rack_sim`] |
//! | FlacDK: sync, allocation, reliability toolkit (§3.2) | [`flacdk`] |
//! | Memory system: shared page tables, TLB, dedup (§3.3) | [`flacos_mem`] |
//! | File system: shared page cache, journaling (§3.4) | [`flacos_fs`] |
//! | Communication: zero-copy IPC, migration RPC (§3.5) | [`flacos_ipc`] |
//! | Reliability: fault box, adaptive redundancy (§3.6) | [`flacos_fault`] |
//! | This crate: boot, node OS instances, processes, scheduling | — |

pub mod boot;
pub mod ipi;
pub mod node_os;
pub mod process;
pub mod rack;
pub mod scheduler;

pub use boot::BootTable;
pub use ipi::RackIpi;
pub use node_os::NodeOs;
pub use process::{Process, ProcessState};
pub use rack::FlacRack;
pub use scheduler::RackScheduler;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::node_os::NodeOs;
    pub use crate::process::{Process, ProcessState};
    pub use crate::rack::FlacRack;
    pub use crate::scheduler::RackScheduler;
    pub use flacos_fault::{Criticality, RedundancyPolicy};
    pub use rack_sim::{NodeId, RackConfig, SimError};
}
