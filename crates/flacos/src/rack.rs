//! Booting FlacOS onto a simulated rack.
//!
//! [`FlacRack::boot`] assembles the whole system: the hardware
//! ([`rack_sim::Rack`]), the shared kernel structures (allocator, epoch
//! manager, shared file system, RPC context table, rack scheduler,
//! health monitor, socket name log), and the boot table advertising the
//! hardware in global memory. [`FlacRack::node_os`] then instantiates a
//! per-node OS view — the "coordinated" half of coordinated OS sharing.

use crate::boot::{BootTable, BOOT_TABLE_BYTES};
use crate::node_os::NodeOs;
use crate::scheduler::RackScheduler;
use flacdk::alloc::GlobalAllocator;
use flacdk::reliability::monitor::HealthMonitor;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacdk::sync::replicated::ReplicatedLog;
use flacos_fs::block::BlockDevice;
use flacos_fs::memfs::FsShared;
use flacos_ipc::channel::{FlacChannel, FlacEndpoint};
use flacos_ipc::rpc::RpcRegistry;
use flacos_ipc::socket_meta::SocketRegistry;
use flacos_mem::fault::FrameAllocator;
use flacos_tier::TierBudget;
use rack_sim::{GAddr, Rack, RackConfig, SimError};
use std::sync::Arc;

/// Default heartbeat timeout: 50 ms of simulated silence.
const HEARTBEAT_TIMEOUT_NS: u64 = 50_000_000;

/// A booted FlacOS rack. Clone-cheap: clones share the same rack.
#[derive(Debug, Clone)]
pub struct FlacRack {
    sim: Rack,
    alloc: GlobalAllocator,
    frames: FrameAllocator,
    epochs: Arc<EpochManager>,
    retired: RetireList,
    fs: Arc<FsShared>,
    rpc: Arc<RpcRegistry>,
    scheduler: Arc<RackScheduler>,
    monitor: Arc<HealthMonitor>,
    socket_log: Arc<ReplicatedLog>,
    tier_budget: Arc<TierBudget>,
    boot_addr: GAddr,
}

impl FlacRack {
    /// Boot FlacOS on a rack of the given shape.
    ///
    /// # Errors
    ///
    /// Fails when the global pool cannot hold the shared kernel state.
    pub fn boot(config: RackConfig) -> Result<Self, SimError> {
        let sim = Rack::new(config.clone());
        let nodes = sim.node_count();
        let node0 = sim.node(0);

        // Firmware step: node 0 publishes the hardware description.
        let boot_addr = sim.global().alloc(BOOT_TABLE_BYTES, 64)?;
        BootTable::describe(&config).publish(&node0, boot_addr)?;

        let alloc = GlobalAllocator::new(sim.global().clone());
        let frames = FrameAllocator::new(sim.global().clone());
        let epochs = EpochManager::alloc(sim.global(), nodes)?;
        let retired = RetireList::new();
        let fs = FsShared::alloc(
            sim.global(),
            nodes,
            alloc.clone(),
            epochs.clone(),
            retired.clone(),
            Arc::new(BlockDevice::nvme(sim.global(), nodes)?),
        )?;
        let rpc = RpcRegistry::alloc(sim.global(), nodes)?;
        let scheduler = RackScheduler::alloc(sim.global(), nodes)?;
        let monitor = HealthMonitor::alloc(sim.global(), nodes, HEARTBEAT_TIMEOUT_NS)?;
        let socket_log = SocketRegistry::alloc_shared(sim.global(), nodes)?;
        // A quarter of each node's local memory is promotion budget; the
        // rest stays with the bump allocator for kernel structures.
        let tier_budget =
            TierBudget::alloc(sim.global(), nodes, (config.local_mem_bytes / 4) as u64)?;

        Ok(FlacRack {
            sim,
            alloc,
            frames,
            epochs,
            retired,
            fs,
            rpc,
            scheduler,
            monitor,
            socket_log,
            tier_budget,
            boot_addr,
        })
    }

    /// Instantiate the OS view for node `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_os(&self, idx: usize) -> NodeOs {
        NodeOs::start(self.clone(), self.sim.node(idx))
    }

    /// The underlying simulated rack (hardware access, fault injection).
    pub fn sim(&self) -> &Rack {
        &self.sim
    }

    /// The shared object allocator.
    pub fn alloc(&self) -> &GlobalAllocator {
        &self.alloc
    }

    /// The shared page-frame allocator.
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// The rack-wide epoch manager.
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }

    /// The rack-wide retire list.
    pub fn retired(&self) -> &RetireList {
        &self.retired
    }

    /// The shared file system state.
    pub fn fs_shared(&self) -> &Arc<FsShared> {
        &self.fs
    }

    /// The shared RPC code-context table.
    pub fn rpc(&self) -> &Arc<RpcRegistry> {
        &self.rpc
    }

    /// The rack scheduler.
    pub fn scheduler(&self) -> &Arc<RackScheduler> {
        &self.scheduler
    }

    /// The health monitor.
    pub fn monitor(&self) -> &Arc<HealthMonitor> {
        &self.monitor
    }

    /// The shared log backing socket registries.
    pub fn socket_log(&self) -> &Arc<ReplicatedLog> {
        &self.socket_log
    }

    /// The rack-shared per-node local-DRAM tier budget ledger.
    pub fn tier_budget(&self) -> &Arc<TierBudget> {
        &self.tier_budget
    }

    /// The directory of policy-driven sync cells backing this rack's
    /// shared kernel structures, as recovery hooks. `flacos-fault`'s
    /// orchestrator walks this list on a node crash so a delegation
    /// owner's death re-elects a survivor and replays committed ops.
    pub fn sync_recovery(&self) -> Vec<Arc<dyn flacdk::sync::SyncRecover>> {
        vec![
            self.fs.cache().sync_cell(),
            self.rpc.sync_cell(),
            self.scheduler.sync_cell(),
        ]
    }

    /// Read the published hardware description from any node.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn boot_table(&self, node_idx: usize) -> Result<BootTable, SimError> {
        BootTable::discover(&self.sim.node(node_idx), self.boot_addr)
    }

    /// Create a zero-copy IPC channel between two nodes.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn channel(
        &self,
        a_idx: usize,
        b_idx: usize,
    ) -> Result<(FlacEndpoint, FlacEndpoint), SimError> {
        FlacChannel::create(
            self.sim.global(),
            self.alloc.clone(),
            self.sim.node(a_idx),
            self.sim.node(b_idx),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_publishes_discoverable_hardware() {
        let rack = FlacRack::boot(RackConfig::two_node_hccs()).unwrap();
        let table = rack.boot_table(1).unwrap();
        assert_eq!(table.nodes, 2);
        assert_eq!(table.total_cores(), 640);
    }

    #[test]
    fn shared_structures_are_rack_wide() {
        let rack = FlacRack::boot(RackConfig::small_test().with_global_mem(64 << 20)).unwrap();
        // Scheduler state written by node 0 visible on node 1.
        rack.scheduler()
            .task_started(&rack.sim().node(0), rack_sim::NodeId(1))
            .unwrap();
        assert_eq!(
            rack.scheduler()
                .load_of(&rack.sim().node(1), rack_sim::NodeId(1))
                .unwrap(),
            1
        );
    }

    #[test]
    fn channels_connect_nodes() {
        let rack = FlacRack::boot(RackConfig::small_test().with_global_mem(64 << 20)).unwrap();
        let (mut a, mut b) = rack.channel(0, 1).unwrap();
        a.send(b"booted").unwrap();
        assert_eq!(b.try_recv().unwrap(), b"booted");
    }
}
