//! Shared data buffers for zero-copy IPC.
//!
//! A [`ShmBufferPool`] hands out segments of global memory. The sender
//! publishes payload bytes into a segment (write + write-back) exactly
//! once; the descriptor `(addr, len)` — 16 bytes — is what actually
//! travels through the channel ring. The receiver consumes the payload
//! in place (invalidate + read) and releases the segment. No
//! serialization, no intermediate kernel copies.

use flacdk::alloc::GlobalAllocator;
use rack_sim::sync::Mutex;
use rack_sim::{GAddr, NodeCtx, SimError};
use std::sync::Arc;

/// A descriptor naming a published payload in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmDescriptor {
    /// Payload address in global memory.
    pub addr: GAddr,
    /// Payload length in bytes.
    pub len: u32,
}

impl ShmDescriptor {
    /// Encode into the 16-byte wire form carried by rings.
    pub fn encode(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.addr.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Decode from the wire form.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on short input.
    pub fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        if bytes.len() < 12 {
            return Err(SimError::Protocol(format!(
                "short descriptor ({} bytes)",
                bytes.len()
            )));
        }
        Ok(ShmDescriptor {
            addr: GAddr(u64::from_le_bytes(bytes[..8].try_into().expect("8"))),
            len: u32::from_le_bytes(bytes[8..12].try_into().expect("4")),
        })
    }
}

/// A pool of reusable payload segments in global memory.
#[derive(Debug, Clone)]
pub struct ShmBufferPool {
    alloc: GlobalAllocator,
    outstanding: Arc<Mutex<u64>>,
}

impl ShmBufferPool {
    /// A pool drawing segments from `alloc`.
    pub fn new(alloc: GlobalAllocator) -> Self {
        ShmBufferPool {
            alloc,
            outstanding: Arc::new(Mutex::new(0)),
        }
    }

    /// Publish `payload` into a fresh segment, returning its descriptor.
    /// This is the **only** copy the data undergoes end to end.
    ///
    /// # Errors
    ///
    /// Propagates allocation and memory errors.
    pub fn publish(&self, ctx: &NodeCtx, payload: &[u8]) -> Result<ShmDescriptor, SimError> {
        let addr = self.alloc.alloc(ctx, payload.len().max(1))?;
        ctx.write(addr, payload)?;
        ctx.writeback(addr, payload.len());
        *self.outstanding.lock() += 1;
        Ok(ShmDescriptor {
            addr,
            len: payload.len() as u32,
        })
    }

    /// Consume a published payload in place (invalidate + read).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn consume(&self, ctx: &NodeCtx, desc: ShmDescriptor) -> Result<Vec<u8>, SimError> {
        let mut buf = vec![0u8; desc.len as usize];
        ctx.invalidate(desc.addr, desc.len as usize);
        ctx.read(desc.addr, &mut buf)?;
        Ok(buf)
    }

    /// Release a consumed segment back to the pool.
    pub fn release(&self, ctx: &NodeCtx, desc: ShmDescriptor) {
        self.alloc.free(ctx, desc.addr, desc.len.max(1) as usize);
        let mut n = self.outstanding.lock();
        *n = n.saturating_sub(1);
    }

    /// Segments published but not yet released.
    pub fn outstanding(&self) -> u64 {
        *self.outstanding.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, ShmBufferPool) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(16 << 20));
        let pool = ShmBufferPool::new(GlobalAllocator::new(rack.global().clone()));
        (rack, pool)
    }

    #[test]
    fn publish_consume_cross_node() {
        let (rack, pool) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let payload: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let desc = pool.publish(&n0, &payload).unwrap();
        assert_eq!(pool.consume(&n1, desc).unwrap(), payload);
        pool.release(&n1, desc);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn descriptor_wire_roundtrip() {
        let d = ShmDescriptor {
            addr: GAddr(0xabcd00),
            len: 512,
        };
        assert_eq!(ShmDescriptor::decode(&d.encode()).unwrap(), d);
        assert!(ShmDescriptor::decode(&[0u8; 4]).is_err());
    }

    #[test]
    fn segments_recycle_after_release() {
        let (rack, pool) = setup();
        let n0 = rack.node(0);
        let d1 = pool.publish(&n0, &[1u8; 256]).unwrap();
        pool.release(&n0, d1);
        let d2 = pool.publish(&n0, &[2u8; 256]).unwrap();
        assert_eq!(d1.addr, d2.addr, "freed segment reused");
        // Fresh content wins despite reuse (consumer invalidates).
        assert_eq!(pool.consume(&rack.node(1), d2).unwrap(), vec![2u8; 256]);
    }

    #[test]
    fn empty_payload_ok() {
        let (rack, pool) = setup();
        let d = pool.publish(&rack.node(0), b"").unwrap();
        assert_eq!(pool.consume(&rack.node(1), d).unwrap(), Vec::<u8>::new());
    }
}
