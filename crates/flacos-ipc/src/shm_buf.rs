//! Shared data buffers for zero-copy IPC.
//!
//! A [`ShmBufferPool`] hands out segments of global memory. The sender
//! publishes payload bytes into a segment (write + write-back) exactly
//! once; the descriptor `(addr, len)` — 16 bytes — is what actually
//! travels through the channel ring. The receiver consumes the payload
//! in place (invalidate + read) and releases the segment. No
//! serialization, no intermediate kernel copies.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

/// A descriptor naming a published payload in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmDescriptor {
    /// Payload address in global memory.
    pub addr: GAddr,
    /// Payload length in bytes.
    pub len: u32,
}

impl ShmDescriptor {
    /// Encode into the 16-byte wire form carried by rings.
    pub fn encode(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.addr.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Decode from the wire form.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on short input.
    pub fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        if bytes.len() < 12 {
            return Err(SimError::Protocol(format!(
                "short descriptor ({} bytes)",
                bytes.len()
            )));
        }
        Ok(ShmDescriptor {
            addr: GAddr(u64::from_le_bytes(bytes[..8].try_into().expect("8"))),
            len: u32::from_le_bytes(bytes[8..12].try_into().expect("4")),
        })
    }
}

/// Pool accounting: segments published but not yet released. Both sides
/// of a channel mutate it (publish on the sender, release on the
/// receiver), so it is write-heavy and defaults to delegation. Because
/// this is a gauge on the zero-copy **data path**, per-message commits
/// would dominate the message cost; instead each node accumulates a
/// local delta and flushes the net change as one committed op every
/// [`SHM_FLUSH_BATCH`] events (the per-CPU-counter idiom).
#[derive(Debug, Default, Clone)]
struct ShmAccounting {
    outstanding: u64,
}

/// Publish/release events between accounting flushes.
const SHM_FLUSH_BATCH: i64 = 64;

impl SyncState for ShmAccounting {
    fn apply(&mut self, op: &[u8]) {
        if let Ok(raw) = flacdk::wire::Decoder::new(op).u64() {
            let delta = raw as i64;
            self.outstanding = (self.outstanding as i64 + delta).max(0) as u64;
        }
    }
}

/// A pool of reusable payload segments in global memory.
#[derive(Debug, Clone)]
pub struct ShmBufferPool {
    alloc: GlobalAllocator,
    accounting: Arc<SyncCell<ShmAccounting>>,
    /// Events not yet folded into the shared cell (publishes minus
    /// releases since the last flush).
    pending: Arc<std::sync::atomic::AtomicI64>,
    events: Arc<std::sync::atomic::AtomicI64>,
}

impl ShmBufferPool {
    /// A pool drawing segments from `alloc`, shared by `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn new(
        global: &GlobalMemory,
        nodes: usize,
        alloc: GlobalAllocator,
    ) -> Result<Self, SimError> {
        Ok(ShmBufferPool {
            alloc,
            accounting: SyncCell::alloc(
                global,
                "shm_accounting",
                SyncCellConfig::new(nodes, SyncPolicy::NodeReplicated).with_log(4096, 48),
                ShmAccounting::default(),
            )?,
            pending: Arc::new(std::sync::atomic::AtomicI64::new(0)),
            events: Arc::new(std::sync::atomic::AtomicI64::new(0)),
        })
    }

    /// Record one publish (+1) or release (−1), flushing the net delta
    /// into the committed cell every [`SHM_FLUSH_BATCH`] events.
    fn note(&self, ctx: &NodeCtx, delta: i64) -> Result<(), SimError> {
        use std::sync::atomic::Ordering;
        self.pending.fetch_add(delta, Ordering::Relaxed);
        let events = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        if events % SHM_FLUSH_BATCH == 0 {
            self.flush(ctx)?;
        }
        Ok(())
    }

    /// Fold any locally accumulated publish/release delta into the
    /// shared accounting cell as a single committed op.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn flush(&self, ctx: &NodeCtx) -> Result<(), SimError> {
        let delta = self.pending.swap(0, std::sync::atomic::Ordering::Relaxed);
        if delta != 0 {
            self.accounting.update(ctx, &(delta as u64).to_le_bytes())?;
            self.accounting.gc(ctx)?;
        }
        Ok(())
    }

    /// Publish `payload` into a fresh segment, returning its descriptor.
    /// This is the **only** copy the data undergoes end to end.
    ///
    /// # Errors
    ///
    /// Propagates allocation and memory errors.
    pub fn publish(&self, ctx: &NodeCtx, payload: &[u8]) -> Result<ShmDescriptor, SimError> {
        let addr = self.alloc.alloc(ctx, payload.len().max(1))?;
        ctx.write(addr, payload)?;
        ctx.writeback(addr, payload.len());
        self.note(ctx, 1)?;
        Ok(ShmDescriptor {
            addr,
            len: payload.len() as u32,
        })
    }

    /// Consume a published payload in place (invalidate + read).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn consume(&self, ctx: &NodeCtx, desc: ShmDescriptor) -> Result<Vec<u8>, SimError> {
        let mut buf = vec![0u8; desc.len as usize];
        ctx.invalidate(desc.addr, desc.len as usize);
        ctx.read(desc.addr, &mut buf)?;
        Ok(buf)
    }

    /// Release a consumed segment back to the pool.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn release(&self, ctx: &NodeCtx, desc: ShmDescriptor) -> Result<(), SimError> {
        self.alloc.free(ctx, desc.addr, desc.len.max(1) as usize);
        self.note(ctx, -1)
    }

    /// Segments published but not yet released: the committed value plus
    /// any delta not yet flushed.
    pub fn outstanding(&self) -> u64 {
        let committed = self.accounting.peek(|a| a.outstanding) as i64;
        (committed + self.pending.load(std::sync::atomic::Ordering::Relaxed)).max(0) as u64
    }

    /// The sync cell guarding the pool accounting, as a recovery hook.
    pub fn sync_cell(&self) -> Arc<dyn flacdk::sync::SyncRecover> {
        self.accounting.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, ShmBufferPool) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(16 << 20));
        let pool = ShmBufferPool::new(
            rack.global(),
            rack.node_count(),
            GlobalAllocator::new(rack.global().clone()),
        )
        .unwrap();
        (rack, pool)
    }

    #[test]
    fn publish_consume_cross_node() {
        let (rack, pool) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let payload: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let desc = pool.publish(&n0, &payload).unwrap();
        assert_eq!(pool.consume(&n1, desc).unwrap(), payload);
        pool.release(&n1, desc).unwrap();
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn descriptor_wire_roundtrip() {
        let d = ShmDescriptor {
            addr: GAddr(0xabcd00),
            len: 512,
        };
        assert_eq!(ShmDescriptor::decode(&d.encode()).unwrap(), d);
        assert!(ShmDescriptor::decode(&[0u8; 4]).is_err());
    }

    #[test]
    fn segments_recycle_after_release() {
        let (rack, pool) = setup();
        let n0 = rack.node(0);
        let d1 = pool.publish(&n0, &[1u8; 256]).unwrap();
        pool.release(&n0, d1).unwrap();
        let d2 = pool.publish(&n0, &[2u8; 256]).unwrap();
        assert_eq!(d1.addr, d2.addr, "freed segment reused");
        // Fresh content wins despite reuse (consumer invalidates).
        assert_eq!(pool.consume(&rack.node(1), d2).unwrap(), vec![2u8; 256]);
    }

    #[test]
    fn empty_payload_ok() {
        let (rack, pool) = setup();
        let d = pool.publish(&rack.node(0), b"").unwrap();
        assert_eq!(pool.consume(&rack.node(1), d).unwrap(), Vec::<u8>::new());
    }
}
