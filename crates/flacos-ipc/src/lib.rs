//! # flacos-ipc — the FlacOS communication system (paper §3.5)
//!
//! Cross-node communication over shared memory, eliminating the
//! networking/RDMA overhead that disaggregated systems pay:
//!
//! * **Zero-copy IPC** ([`shm_buf`], [`channel`]) — payload bytes are
//!   written once into a shared buffer pool; only a small descriptor
//!   travels through an index ring. The receiver reads the payload in
//!   place from global memory. Streaming buffers need only the
//!   publish/consume cache-invalidation discipline (paper: "shared
//!   buffers can be easily synchronized across nodes via cache
//!   invalidation").
//! * **Migration-based RPC** ([`rpc`]) — service code contexts live in a
//!   rack-shared registry; a client *migrates its thread* into the
//!   service context (address-space switch, no thread switch, no
//!   messaging), paying a context-crossing cost instead of a network
//!   round-trip. Shared contexts also enable fast process migration and
//!   scale-out (§3.5).
//! * **Replicated socket metadata** ([`socket_meta`]) — naming and
//!   destination addressing are kept in per-node replicas synchronized
//!   through the shared op log, so connection establishment is fast and
//!   survives node failures.
//! * **The baseline** ([`netstack`]) — a faithfully costed TCP/IP-over-
//!   Ethernet path (buffer allocation, data copies, per-layer stack
//!   processing, segmentation) used as the comparison point for
//!   Figure 4.

pub mod channel;
pub mod netstack;
pub mod retry;
pub mod rpc;
pub mod shm_buf;
pub mod socket_meta;

pub use channel::{FlacChannel, FlacEndpoint};
pub use netstack::{NetConfig, NetEndpoint, NetPair};
pub use retry::{retry_with_backoff, MsgRpcClient, MsgRpcServer, RetryPolicy};
pub use rpc::{RpcRegistry, RpcService};
pub use shm_buf::ShmBufferPool;
pub use socket_meta::SocketRegistry;
