//! Migration-based RPC over shared code contexts.
//!
//! Paper §3.5: *"FlacOS optimizes RPC through thread migration model,
//! where the client invokes the server code by switching address space
//! without switching the thread. To enhance efficiency and flexibility,
//! FlacOS places the invoked service code context within shared memory
//! for the efficient sharing of RPC services among nodes."*
//!
//! In this simulation the [`RpcRegistry`] is the shared code context
//! table: any node can resolve a service id and execute the service *on
//! its own thread*, paying an address-space-switch cost instead of a
//! thread switch or a network round-trip. Service state must live in
//! global memory (services receive the caller's [`NodeCtx`]), which is
//! what makes the context valid from every node — and what enables fast
//! scale-out and snapshot-based thread creation ([`RpcRegistry::snapshot`]).

use rack_sim::sync::RwLock;
use rack_sim::{NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A service whose code context is shared rack-wide. State it touches
/// must live in global memory (accessed through the caller's `ctx`).
pub trait RpcService: Send + Sync {
    /// Execute one call on the *caller's* thread.
    fn invoke(&self, ctx: &NodeCtx, args: &[u8]) -> Result<Vec<u8>, SimError>;
}

impl<F> RpcService for F
where
    F: Fn(&NodeCtx, &[u8]) -> Result<Vec<u8>, SimError> + Send + Sync,
{
    fn invoke(&self, ctx: &NodeCtx, args: &[u8]) -> Result<Vec<u8>, SimError> {
        self(ctx, args)
    }
}

/// Cost of switching into/out of a service address space (page-table
/// base swap + TLB tax), charged on each side of a call.
pub const AS_SWITCH_NS: u64 = 180;

/// The shared code-context table.
#[derive(Debug, Default)]
pub struct RpcRegistry {
    services: RwLock<HashMap<u64, Arc<dyn RpcService>>>,
    calls: AtomicU64,
}

impl std::fmt::Debug for dyn RpcService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcService")
    }
}

impl RpcRegistry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish a service context under `id` (replaces any previous one).
    pub fn register(&self, id: u64, service: Arc<dyn RpcService>) {
        self.services.write().insert(id, service);
    }

    /// Remove a service context.
    pub fn unregister(&self, id: u64) {
        self.services.write().remove(&id);
    }

    /// Number of registered contexts.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }

    /// Total calls served through this registry.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Migration-based call: switch into the service context on the
    /// caller's thread, run it, switch back. No messaging, no thread
    /// hand-off.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown service ids; service errors
    /// are propagated.
    pub fn call(&self, ctx: &NodeCtx, id: u64, args: &[u8]) -> Result<Vec<u8>, SimError> {
        let service = self
            .services
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| SimError::Protocol(format!("unknown RPC service {id}")))?;
        ctx.charge(AS_SWITCH_NS);
        let result = service.invoke(ctx, args);
        ctx.charge(AS_SWITCH_NS);
        self.calls.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Snapshot a service context for fast replica creation (the §3.5
    /// "thread runtime snapshot"): the shared context is reference-
    /// counted, so a snapshot is O(1) and the clone can be registered
    /// under a new id for scale-out.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown service ids.
    pub fn snapshot(&self, id: u64) -> Result<Arc<dyn RpcService>, SimError> {
        self.services
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| SimError::Protocol(format!("unknown RPC service {id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::hw::GlobalCell;
    use rack_sim::{Rack, RackConfig};

    /// A counter service whose state lives in global memory, making the
    /// context valid from any node.
    struct CounterService {
        cell: GlobalCell,
    }

    impl RpcService for CounterService {
        fn invoke(&self, ctx: &NodeCtx, args: &[u8]) -> Result<Vec<u8>, SimError> {
            let delta =
                u64::from_le_bytes(args.try_into().map_err(|_| {
                    SimError::Protocol("counter service wants 8-byte delta".into())
                })?);
            let prev = self.cell.fetch_add(ctx, delta)?;
            Ok((prev + delta).to_le_bytes().to_vec())
        }
    }

    #[test]
    fn call_from_any_node_shares_state() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::new();
        let cell = GlobalCell::alloc(rack.global(), 0).unwrap();
        reg.register(1, Arc::new(CounterService { cell }));

        let r0 = reg.call(&rack.node(0), 1, &5u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r0.try_into().unwrap()), 5);
        // Same context, invoked from the other node, sees the state.
        let r1 = reg.call(&rack.node(1), 1, &3u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r1.try_into().unwrap()), 8);
        assert_eq!(reg.calls(), 2);
    }

    #[test]
    fn call_charges_as_switch_not_network() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::new();
        reg.register(2, Arc::new(|_: &NodeCtx, _: &[u8]| Ok(vec![1])));
        let n0 = rack.node(0);
        let msgs_before = n0.stats().snapshot().messages_sent;
        let t0 = n0.clock().now();
        reg.call(&n0, 2, b"").unwrap();
        assert_eq!(
            n0.stats().snapshot().messages_sent,
            msgs_before,
            "no messaging"
        );
        assert!(n0.clock().now() - t0 >= 2 * AS_SWITCH_NS);
    }

    #[test]
    fn unknown_service_fails() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::new();
        assert!(reg.call(&rack.node(0), 99, b"").is_err());
        assert!(reg.snapshot(99).is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_scaleout_shares_context() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::new();
        let cell = GlobalCell::alloc(rack.global(), 0).unwrap();
        reg.register(1, Arc::new(CounterService { cell }));
        // Scale out: snapshot and register a second instance id.
        let snap = reg.snapshot(1).unwrap();
        reg.register(2, snap);
        assert_eq!(reg.len(), 2);
        reg.call(&rack.node(0), 1, &1u64.to_le_bytes()).unwrap();
        let via_clone = reg.call(&rack.node(1), 2, &1u64.to_le_bytes()).unwrap();
        assert_eq!(
            u64::from_le_bytes(via_clone.try_into().unwrap()),
            2,
            "same backing state"
        );
    }

    #[test]
    fn unregister_removes_context() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::new();
        reg.register(5, Arc::new(|_: &NodeCtx, _: &[u8]| Ok(vec![])));
        assert_eq!(reg.len(), 1);
        reg.unregister(5);
        assert!(reg.call(&rack.node(0), 5, b"").is_err());
    }
}
