//! Migration-based RPC over shared code contexts.
//!
//! Paper §3.5: *"FlacOS optimizes RPC through thread migration model,
//! where the client invokes the server code by switching address space
//! without switching the thread. To enhance efficiency and flexibility,
//! FlacOS places the invoked service code context within shared memory
//! for the efficient sharing of RPC services among nodes."*
//!
//! In this simulation the [`RpcRegistry`] is the shared code context
//! table: any node can resolve a service id and execute the service *on
//! its own thread*, paying an address-space-switch cost instead of a
//! thread switch or a network round-trip. Service state must live in
//! global memory (services receive the caller's [`NodeCtx`]), which is
//! what makes the context valid from every node — and what enables fast
//! scale-out and snapshot-based thread creation ([`RpcRegistry::snapshot`]).

use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::{Decoder, Encoder};
use rack_sim::sync::Mutex;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A service whose code context is shared rack-wide. State it touches
/// must live in global memory (accessed through the caller's `ctx`).
pub trait RpcService: Send + Sync {
    /// Execute one call on the *caller's* thread.
    fn invoke(&self, ctx: &NodeCtx, args: &[u8]) -> Result<Vec<u8>, SimError>;
}

impl<F> RpcService for F
where
    F: Fn(&NodeCtx, &[u8]) -> Result<Vec<u8>, SimError> + Send + Sync,
{
    fn invoke(&self, ctx: &NodeCtx, args: &[u8]) -> Result<Vec<u8>, SimError> {
        self(ctx, args)
    }
}

/// Cost of switching into/out of a service address space (page-table
/// base swap + TLB tax), charged on each side of a call.
pub const AS_SWITCH_NS: u64 = 180;

/// The shared membership table: which service ids are published. This is
/// the rack-visible part of the registry — resolved on every call, so it
/// is read-mostly and defaults to replication.
#[derive(Debug, Default, Clone)]
struct RpcTable {
    ids: BTreeSet<u64>,
}

const RPC_REGISTER: u8 = 0;
const RPC_UNREGISTER: u8 = 1;

impl SyncState for RpcTable {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        let (Ok(tag), Ok(id)) = (d.u8(), d.u64()) else {
            return;
        };
        match tag {
            RPC_REGISTER => {
                self.ids.insert(id);
            }
            RPC_UNREGISTER => {
                self.ids.remove(&id);
            }
            _ => {}
        }
    }
}

fn rpc_op(tag: u8, id: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(tag).put_u64(id);
    e.into_vec()
}

/// The shared code-context table.
#[derive(Debug)]
pub struct RpcRegistry {
    /// Authoritative membership, resolved through the sync cell so a
    /// registration on one node is visible from every other.
    table: Arc<SyncCell<RpcTable>>,
    // coherent-local: host-side trait objects for the shared code
    // contexts; membership (the shared state) lives in `table` above.
    services: Mutex<HashMap<u64, Arc<dyn RpcService>>>,
    calls: AtomicU64,
}

impl std::fmt::Debug for dyn RpcService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcService")
    }
}

impl RpcRegistry {
    /// An empty registry shared by `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(global: &GlobalMemory, nodes: usize) -> Result<Arc<Self>, SimError> {
        Ok(Arc::new(RpcRegistry {
            table: SyncCell::alloc(
                global,
                "rpc_table",
                SyncCellConfig::new(nodes, SyncPolicy::Replicated),
                RpcTable::default(),
            )?,
            services: Mutex::new(HashMap::new()),
            calls: AtomicU64::new(0),
        }))
    }

    /// Publish a service context under `id` (replaces any previous one).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn register(
        &self,
        ctx: &NodeCtx,
        id: u64,
        service: Arc<dyn RpcService>,
    ) -> Result<(), SimError> {
        self.table.update(ctx, &rpc_op(RPC_REGISTER, id))?;
        self.services.lock().insert(id, service);
        Ok(())
    }

    /// Remove a service context.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn unregister(&self, ctx: &NodeCtx, id: u64) -> Result<(), SimError> {
        self.table.update(ctx, &rpc_op(RPC_UNREGISTER, id))?;
        self.services.lock().remove(&id);
        Ok(())
    }

    /// Number of registered contexts.
    pub fn len(&self) -> usize {
        self.table.peek(|t| t.ids.len())
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.table.peek(|t| t.ids.is_empty())
    }

    /// The sync cell guarding the membership table, as a recovery hook.
    pub fn sync_cell(&self) -> Arc<dyn flacdk::sync::SyncRecover> {
        self.table.clone()
    }

    /// Total calls served through this registry.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Migration-based call: switch into the service context on the
    /// caller's thread, run it, switch back. No messaging, no thread
    /// hand-off.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown service ids; service errors
    /// are propagated.
    pub fn call(&self, ctx: &NodeCtx, id: u64, args: &[u8]) -> Result<Vec<u8>, SimError> {
        // Resolve through the shared table (the charged read); the trait
        // object itself comes from the host-side context store.
        let published = self.table.read(ctx, |t| t.ids.contains(&id))?;
        let service = if published {
            self.services.lock().get(&id).cloned()
        } else {
            None
        }
        .ok_or_else(|| SimError::Protocol(format!("unknown RPC service {id}")))?;
        ctx.charge(AS_SWITCH_NS);
        let result = service.invoke(ctx, args);
        ctx.charge(AS_SWITCH_NS);
        self.calls.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Snapshot a service context for fast replica creation (the §3.5
    /// "thread runtime snapshot"): the shared context is reference-
    /// counted, so a snapshot is O(1) and the clone can be registered
    /// under a new id for scale-out.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown service ids.
    pub fn snapshot(&self, id: u64) -> Result<Arc<dyn RpcService>, SimError> {
        if !self.table.peek(|t| t.ids.contains(&id)) {
            return Err(SimError::Protocol(format!("unknown RPC service {id}")));
        }
        self.services
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| SimError::Protocol(format!("unknown RPC service {id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::hw::GlobalCell;
    use rack_sim::{Rack, RackConfig};

    /// A counter service whose state lives in global memory, making the
    /// context valid from any node.
    struct CounterService {
        cell: GlobalCell,
    }

    impl RpcService for CounterService {
        fn invoke(&self, ctx: &NodeCtx, args: &[u8]) -> Result<Vec<u8>, SimError> {
            let delta =
                u64::from_le_bytes(args.try_into().map_err(|_| {
                    SimError::Protocol("counter service wants 8-byte delta".into())
                })?);
            let prev = self.cell.fetch_add(ctx, delta)?;
            Ok((prev + delta).to_le_bytes().to_vec())
        }
    }

    #[test]
    fn call_from_any_node_shares_state() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::alloc(rack.global(), rack.node_count()).unwrap();
        let cell = GlobalCell::alloc(rack.global(), 0).unwrap();
        reg.register(&rack.node(0), 1, Arc::new(CounterService { cell }))
            .unwrap();

        let r0 = reg.call(&rack.node(0), 1, &5u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r0.try_into().unwrap()), 5);
        // Same context, invoked from the other node, sees the state.
        let r1 = reg.call(&rack.node(1), 1, &3u64.to_le_bytes()).unwrap();
        assert_eq!(u64::from_le_bytes(r1.try_into().unwrap()), 8);
        assert_eq!(reg.calls(), 2);
    }

    #[test]
    fn call_charges_as_switch_not_network() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::alloc(rack.global(), rack.node_count()).unwrap();
        reg.register(
            &rack.node(0),
            2,
            Arc::new(|_: &NodeCtx, _: &[u8]| Ok(vec![1])),
        )
        .unwrap();
        let n0 = rack.node(0);
        let msgs_before = n0.stats().snapshot().messages_sent;
        let t0 = n0.clock().now();
        reg.call(&n0, 2, b"").unwrap();
        assert_eq!(
            n0.stats().snapshot().messages_sent,
            msgs_before,
            "no messaging"
        );
        assert!(n0.clock().now() - t0 >= 2 * AS_SWITCH_NS);
    }

    #[test]
    fn unknown_service_fails() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::alloc(rack.global(), rack.node_count()).unwrap();
        assert!(reg.call(&rack.node(0), 99, b"").is_err());
        assert!(reg.snapshot(99).is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_scaleout_shares_context() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::alloc(rack.global(), rack.node_count()).unwrap();
        let cell = GlobalCell::alloc(rack.global(), 0).unwrap();
        reg.register(&rack.node(0), 1, Arc::new(CounterService { cell }))
            .unwrap();
        // Scale out: snapshot and register a second instance id.
        let snap = reg.snapshot(1).unwrap();
        reg.register(&rack.node(1), 2, snap).unwrap();
        assert_eq!(reg.len(), 2);
        reg.call(&rack.node(0), 1, &1u64.to_le_bytes()).unwrap();
        let via_clone = reg.call(&rack.node(1), 2, &1u64.to_le_bytes()).unwrap();
        assert_eq!(
            u64::from_le_bytes(via_clone.try_into().unwrap()),
            2,
            "same backing state"
        );
    }

    #[test]
    fn unregister_removes_context() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = RpcRegistry::alloc(rack.global(), rack.node_count()).unwrap();
        reg.register(
            &rack.node(0),
            5,
            Arc::new(|_: &NodeCtx, _: &[u8]| Ok(vec![])),
        )
        .unwrap();
        assert_eq!(reg.len(), 1);
        reg.unregister(&rack.node(1), 5).unwrap();
        assert!(reg.call(&rack.node(0), 5, b"").is_err());
    }
}
