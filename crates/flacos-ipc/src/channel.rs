//! Domain-socket-style zero-copy channels between nodes.
//!
//! A [`FlacChannel`] is a bidirectional byte-message pipe built from two
//! SPSC descriptor rings plus a shared payload pool. Small messages are
//! inlined straight into ring slots; larger ones are published once into
//! the pool and travel as 16-byte descriptors — the zero-copy data path
//! of §3.5. The API mirrors connected datagram sockets: `send` /
//! `try_recv` of whole messages, usable from exactly one endpoint per
//! side.

use crate::shm_buf::{ShmBufferPool, ShmDescriptor};
use flacdk::alloc::GlobalAllocator;
use flacdk::ds::ringbuf::{RingConsumer, RingProducer, SpscRing};
use rack_sim::{Counter, GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

/// Messages at or below this size are inlined into ring slots.
pub const INLINE_MAX: usize = 40;
const RING_SLOTS: usize = 256;
const SLOT_SIZE: usize = 64;

/// Per-message protocol cost on each side (simulated ns): channel-state
/// checks, descriptor validation, memory-ordering fences, and the
/// doorbell/notification handshake of a user-level IPC layer. Charged
/// once per message sent and once per message received — an *empty* poll
/// pays only the ring's cursor probe, and a pipelined message carrying
/// many frames pays it once. Calibrated (with the ring and pool access
/// costs) so the unpipelined Figure 4 round trip lands in the paper's
/// measured 1.75–2.4× reduction band.
pub const MSG_PROTO_NS: u64 = 700;

const TAG_INLINE: u8 = 0;
const TAG_DESC: u8 = 1;

/// Per-endpoint traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages that took the zero-copy descriptor path.
    pub zero_copy: u64,
}

/// Factory for connected channel endpoints.
#[derive(Debug)]
pub struct FlacChannel;

impl FlacChannel {
    /// Create a connected pair between nodes `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn create(
        global: &GlobalMemory,
        alloc: GlobalAllocator,
        a: Arc<NodeCtx>,
        b: Arc<NodeCtx>,
    ) -> Result<(FlacEndpoint, FlacEndpoint), SimError> {
        let a_to_b = SpscRing::alloc(global, RING_SLOTS, SLOT_SIZE)?;
        let b_to_a = SpscRing::alloc(global, RING_SLOTS, SLOT_SIZE)?;
        // The pool cell must admit ops from both endpoints' node ids.
        let pool = ShmBufferPool::new(global, a.id().0.max(b.id().0) + 1, alloc)?;
        Ok((
            FlacEndpoint {
                tx: a_to_b.producer(&a)?,
                rx: b_to_a.consumer(&a)?,
                node: a,
                pool: pool.clone(),
                stats: ChannelStats::default(),
                ctr_msgs_sent: None,
                ctr_bytes_sent: None,
                ctr_msgs_recv: None,
            },
            FlacEndpoint {
                tx: b_to_a.producer(&b)?,
                rx: a_to_b.consumer(&b)?,
                node: b,
                pool,
                stats: ChannelStats::default(),
                ctr_msgs_sent: None,
                ctr_bytes_sent: None,
                ctr_msgs_recv: None,
            },
        ))
    }
}

/// One side of a [`FlacChannel`].
#[derive(Debug)]
pub struct FlacEndpoint {
    node: Arc<NodeCtx>,
    // Cursor-cached split-role ring handles: polling an idle channel and
    // draining batched traffic both skip redundant fabric cursor loads.
    tx: RingProducer,
    rx: RingConsumer,
    pool: ShmBufferPool,
    stats: ChannelStats,
    // Held counter handles for the per-message paths; lazily fetched so a
    // channel that never sends/receives registers nothing, matching the
    // old one-shot `registry().add` behaviour in snapshots.
    ctr_msgs_sent: Option<Counter>,
    ctr_bytes_sent: Option<Counter>,
    ctr_msgs_recv: Option<Counter>,
}

impl FlacEndpoint {
    /// The node this endpoint lives on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Send one message.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when the ring is full **or** the shared
    /// payload pool is transiently exhausted — both are backpressure:
    /// the receiver draining messages frees ring slots and pool
    /// segments, so the same send succeeds later. Other memory errors
    /// are propagated.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), SimError> {
        self.node.charge(MSG_PROTO_NS);
        if payload.len() <= INLINE_MAX {
            let mut slot = Vec::with_capacity(1 + payload.len());
            slot.push(TAG_INLINE);
            slot.extend_from_slice(payload);
            self.tx.push(&self.node, &slot)?;
        } else {
            let desc = match self.pool.publish(&self.node, payload) {
                Ok(d) => d,
                // Pool exhaustion under load is backpressure, not a
                // hard failure: outstanding segments are released as
                // the receiver consumes, so the caller should retry.
                Err(SimError::OutOfMemory { .. }) => return Err(SimError::WouldBlock),
                Err(e) => return Err(e),
            };
            let mut slot = Vec::with_capacity(17);
            slot.push(TAG_DESC);
            slot.extend_from_slice(&desc.encode());
            // If the ring is full, release the segment we just published.
            if let Err(e) = self.tx.push(&self.node, &slot) {
                self.pool.release(&self.node, desc)?;
                return Err(e);
            }
            self.stats.zero_copy += 1;
        }
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        let node = &self.node;
        self.ctr_msgs_sent
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "msgs_sent"))
            .incr();
        self.ctr_bytes_sent
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "bytes_sent"))
            .add(payload.len() as u64);
        Ok(())
    }

    /// Receive one message if available.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when no message is queued.
    pub fn try_recv(&mut self) -> Result<Vec<u8>, SimError> {
        let slot = self.rx.pop(&self.node)?;
        // Protocol work is charged only when a message actually arrived;
        // the empty-poll path above costs just the cursor probe.
        self.node.charge(MSG_PROTO_NS);
        let (tag, rest) = slot
            .split_first()
            .ok_or_else(|| SimError::Protocol("empty channel slot".into()))?;
        let payload = match *tag {
            TAG_INLINE => rest.to_vec(),
            TAG_DESC => {
                let desc = ShmDescriptor::decode(rest)?;
                let payload = self.pool.consume(&self.node, desc)?;
                self.pool.release(&self.node, desc)?;
                payload
            }
            t => return Err(SimError::Protocol(format!("unknown channel tag {t}"))),
        };
        self.stats.received += 1;
        let node = &self.node;
        self.ctr_msgs_recv
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "msgs_recv"))
            .incr();
        Ok(payload)
    }

    /// Messages waiting to be received.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn pending(&mut self) -> Result<u64, SimError> {
        self.rx.pending(&self.node)
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn pair() -> (Rack, FlacEndpoint, FlacEndpoint) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (a, b) = FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        (rack, a, b)
    }

    #[test]
    fn bidirectional_messaging() {
        let (_rack, mut a, mut b) = pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.try_recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.try_recv().unwrap(), b"pong");
        assert!(matches!(a.try_recv(), Err(SimError::WouldBlock)));
    }

    #[test]
    fn small_messages_inline_large_go_zero_copy() {
        let (_rack, mut a, mut b) = pair();
        a.send(&[1u8; INLINE_MAX]).unwrap();
        a.send(&[2u8; 4096]).unwrap();
        assert_eq!(a.stats().zero_copy, 1);
        assert_eq!(b.try_recv().unwrap(), vec![1u8; INLINE_MAX]);
        assert_eq!(b.try_recv().unwrap(), vec![2u8; 4096]);
        assert_eq!(b.stats().received, 2);
    }

    #[test]
    fn large_payload_integrity() {
        let (_rack, mut a, mut b) = pair();
        let payload: Vec<u8> = (0..100_000).map(|i| (i * 31 % 256) as u8).collect();
        a.send(&payload).unwrap();
        assert_eq!(b.try_recv().unwrap(), payload);
    }

    #[test]
    fn ring_backpressure_returns_wouldblock() {
        let (_rack, mut a, _b) = pair();
        let mut sent = 0;
        loop {
            match a.send(b"x") {
                Ok(()) => sent += 1,
                Err(SimError::WouldBlock) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(sent, RING_SLOTS as u64);
    }

    #[test]
    fn pool_exhaustion_is_backpressure_not_oom() {
        // Fill the shared payload pool with unconsumed zero-copy
        // messages: the sender must see WouldBlock (retryable), never a
        // hard OutOfMemory, and draining the receiver must unblock it.
        let rack = Rack::new(RackConfig::small_test()); // 1 MiB global pool
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (mut a, mut b) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let payload = vec![3u8; 64 << 10];
        let mut sent = 0u32;
        let err = loop {
            match a.send(&payload) {
                Ok(()) => sent += 1,
                Err(e) => break e,
            }
            assert!(sent < 64, "1 MiB pool cannot hold 64 x 64 KiB");
        };
        assert!(
            matches!(err, SimError::WouldBlock),
            "pool exhaustion must surface as backpressure, got {err}"
        );
        assert!(sent > 0);
        // Drain one message: a segment is released, the sender unblocks.
        assert_eq!(b.try_recv().unwrap(), payload);
        a.send(&payload).unwrap();
    }

    #[test]
    fn zero_copy_segments_do_not_leak() {
        let (_rack, mut a, mut b) = pair();
        for _ in 0..50 {
            a.send(&[7u8; 1024]).unwrap();
            b.try_recv().unwrap();
        }
        // All published segments were released by the receiver.
        assert_eq!(a.stats().zero_copy, 50);
    }

    #[test]
    fn many_roundtrips_stay_consistent() {
        let (_rack, mut a, mut b) = pair();
        for i in 0..200u32 {
            a.send(&i.to_le_bytes()).unwrap();
            let got = b.try_recv().unwrap();
            assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), i);
        }
    }
}
