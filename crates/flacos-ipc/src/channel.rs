//! Domain-socket-style zero-copy channels between nodes.
//!
//! A [`FlacChannel`] is a bidirectional byte-message pipe built from two
//! SPSC descriptor rings plus a shared payload pool. Small messages are
//! inlined straight into ring slots; larger ones are published once into
//! the pool and travel as 16-byte descriptors — the zero-copy data path
//! of §3.5. The API mirrors connected datagram sockets: `send` /
//! `try_recv` of whole messages, usable from exactly one endpoint per
//! side.

use crate::shm_buf::{ShmBufferPool, ShmDescriptor};
use flacdk::alloc::GlobalAllocator;
use flacdk::ds::ringbuf::SpscRing;
use rack_sim::{Counter, GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

/// Messages at or below this size are inlined into ring slots.
pub const INLINE_MAX: usize = 40;
const RING_SLOTS: usize = 256;
const SLOT_SIZE: usize = 64;

const TAG_INLINE: u8 = 0;
const TAG_DESC: u8 = 1;

/// Per-endpoint traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages that took the zero-copy descriptor path.
    pub zero_copy: u64,
}

/// Factory for connected channel endpoints.
#[derive(Debug)]
pub struct FlacChannel;

impl FlacChannel {
    /// Create a connected pair between nodes `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn create(
        global: &GlobalMemory,
        alloc: GlobalAllocator,
        a: Arc<NodeCtx>,
        b: Arc<NodeCtx>,
    ) -> Result<(FlacEndpoint, FlacEndpoint), SimError> {
        let a_to_b = SpscRing::alloc(global, RING_SLOTS, SLOT_SIZE)?;
        let b_to_a = SpscRing::alloc(global, RING_SLOTS, SLOT_SIZE)?;
        // The pool cell must admit ops from both endpoints' node ids.
        let pool = ShmBufferPool::new(global, a.id().0.max(b.id().0) + 1, alloc)?;
        Ok((
            FlacEndpoint {
                node: a,
                tx: a_to_b,
                rx: b_to_a,
                pool: pool.clone(),
                stats: ChannelStats::default(),
                ctr_msgs_sent: None,
                ctr_bytes_sent: None,
                ctr_msgs_recv: None,
            },
            FlacEndpoint {
                node: b,
                tx: b_to_a,
                rx: a_to_b,
                pool,
                stats: ChannelStats::default(),
                ctr_msgs_sent: None,
                ctr_bytes_sent: None,
                ctr_msgs_recv: None,
            },
        ))
    }
}

/// One side of a [`FlacChannel`].
#[derive(Debug)]
pub struct FlacEndpoint {
    node: Arc<NodeCtx>,
    tx: SpscRing,
    rx: SpscRing,
    pool: ShmBufferPool,
    stats: ChannelStats,
    // Held counter handles for the per-message paths; lazily fetched so a
    // channel that never sends/receives registers nothing, matching the
    // old one-shot `registry().add` behaviour in snapshots.
    ctr_msgs_sent: Option<Counter>,
    ctr_bytes_sent: Option<Counter>,
    ctr_msgs_recv: Option<Counter>,
}

impl FlacEndpoint {
    /// The node this endpoint lives on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Send one message.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when the ring is full; memory errors are
    /// propagated.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), SimError> {
        if payload.len() <= INLINE_MAX {
            let mut slot = Vec::with_capacity(1 + payload.len());
            slot.push(TAG_INLINE);
            slot.extend_from_slice(payload);
            self.tx.push(&self.node, &slot)?;
        } else {
            let desc = self.pool.publish(&self.node, payload)?;
            let mut slot = Vec::with_capacity(17);
            slot.push(TAG_DESC);
            slot.extend_from_slice(&desc.encode());
            // If the ring is full, release the segment we just published.
            if let Err(e) = self.tx.push(&self.node, &slot) {
                self.pool.release(&self.node, desc)?;
                return Err(e);
            }
            self.stats.zero_copy += 1;
        }
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        let node = &self.node;
        self.ctr_msgs_sent
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "msgs_sent"))
            .incr();
        self.ctr_bytes_sent
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "bytes_sent"))
            .add(payload.len() as u64);
        Ok(())
    }

    /// Receive one message if available.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when no message is queued.
    pub fn try_recv(&mut self) -> Result<Vec<u8>, SimError> {
        let slot = self.rx.pop(&self.node)?;
        let (tag, rest) = slot
            .split_first()
            .ok_or_else(|| SimError::Protocol("empty channel slot".into()))?;
        let payload = match *tag {
            TAG_INLINE => rest.to_vec(),
            TAG_DESC => {
                let desc = ShmDescriptor::decode(rest)?;
                let payload = self.pool.consume(&self.node, desc)?;
                self.pool.release(&self.node, desc)?;
                payload
            }
            t => return Err(SimError::Protocol(format!("unknown channel tag {t}"))),
        };
        self.stats.received += 1;
        let node = &self.node;
        self.ctr_msgs_recv
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "msgs_recv"))
            .incr();
        Ok(payload)
    }

    /// Messages waiting to be received.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn pending(&self) -> Result<u64, SimError> {
        self.rx.len(&self.node)
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn pair() -> (Rack, FlacEndpoint, FlacEndpoint) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (a, b) = FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        (rack, a, b)
    }

    #[test]
    fn bidirectional_messaging() {
        let (_rack, mut a, mut b) = pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.try_recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.try_recv().unwrap(), b"pong");
        assert!(matches!(a.try_recv(), Err(SimError::WouldBlock)));
    }

    #[test]
    fn small_messages_inline_large_go_zero_copy() {
        let (_rack, mut a, mut b) = pair();
        a.send(&[1u8; INLINE_MAX]).unwrap();
        a.send(&[2u8; 4096]).unwrap();
        assert_eq!(a.stats().zero_copy, 1);
        assert_eq!(b.try_recv().unwrap(), vec![1u8; INLINE_MAX]);
        assert_eq!(b.try_recv().unwrap(), vec![2u8; 4096]);
        assert_eq!(b.stats().received, 2);
    }

    #[test]
    fn large_payload_integrity() {
        let (_rack, mut a, mut b) = pair();
        let payload: Vec<u8> = (0..100_000).map(|i| (i * 31 % 256) as u8).collect();
        a.send(&payload).unwrap();
        assert_eq!(b.try_recv().unwrap(), payload);
    }

    #[test]
    fn ring_backpressure_returns_wouldblock() {
        let (_rack, mut a, _b) = pair();
        let mut sent = 0;
        loop {
            match a.send(b"x") {
                Ok(()) => sent += 1,
                Err(SimError::WouldBlock) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(sent, RING_SLOTS as u64);
    }

    #[test]
    fn zero_copy_segments_do_not_leak() {
        let (_rack, mut a, mut b) = pair();
        for _ in 0..50 {
            a.send(&[7u8; 1024]).unwrap();
            b.try_recv().unwrap();
        }
        // All published segments were released by the receiver.
        assert_eq!(a.stats().zero_copy, 50);
    }

    #[test]
    fn many_roundtrips_stay_consistent() {
        let (_rack, mut a, mut b) = pair();
        for i in 0..200u32 {
            a.send(&i.to_le_bytes()).unwrap();
            let got = b.try_recv().unwrap();
            assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), i);
        }
    }
}
