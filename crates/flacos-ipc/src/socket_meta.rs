//! Replicated socket metadata for naming and destination addressing.
//!
//! Paper §3.5 "Local data structures": *"Socket structures that maintain
//! communication metadata are stored in the local memory. FlacOS employs
//! the replication-based method to synchronize metadata across nodes to
//! achieve fast and reliable connection establishment and destination
//! addressing."*
//!
//! Each node holds a local replica of the name → endpoint table; binds
//! and unbinds go through the shared op log. Lookups are node-local
//! after a sync — connection establishment never round-trips a directory
//! server, and the table survives any single node's failure (every node
//! has a full replica plus the log is in global memory).

use flacdk::ds::hashmap::ReplicatedKv;
use flacdk::sync::replicated::ReplicatedLog;
use flacdk::wire::{fnv1a, Decoder, Encoder};
use rack_sim::{GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Where a named service is reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketAddr {
    /// Node hosting the listener.
    pub node: NodeId,
    /// Channel/listener identifier on that node.
    pub channel: u64,
}

impl SocketAddr {
    fn encode(self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.node.0 as u64).put_u64(self.channel);
        e.into_vec()
    }

    fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        let mut d = Decoder::new(bytes);
        let node = d.u64().map_err(|e| SimError::Protocol(e.to_string()))?;
        let channel = d.u64().map_err(|e| SimError::Protocol(e.to_string()))?;
        Ok(SocketAddr {
            node: NodeId(node as usize),
            channel,
        })
    }
}

/// A node's view of the rack-wide socket name table.
#[derive(Debug)]
pub struct SocketRegistry {
    kv: ReplicatedKv,
}

impl SocketRegistry {
    /// Allocate the shared log backing the registry.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc_shared(
        global: &GlobalMemory,
        nodes: usize,
    ) -> Result<Arc<ReplicatedLog>, SimError> {
        ReplicatedKv::alloc_shared(global, nodes, 1024, 128)
    }

    /// This node's registry view.
    pub fn new(shared: Arc<ReplicatedLog>, node: Arc<NodeCtx>) -> Self {
        SocketRegistry {
            kv: ReplicatedKv::new(shared, node),
        }
    }

    /// Bind `name` to `addr` rack-wide.
    ///
    /// # Errors
    ///
    /// Propagates log errors.
    pub fn bind(&mut self, name: &str, addr: SocketAddr) -> Result<(), SimError> {
        self.kv.put(fnv1a(name.as_bytes()), &addr.encode())
    }

    /// Remove the binding for `name`.
    ///
    /// # Errors
    ///
    /// Propagates log errors.
    pub fn unbind(&mut self, name: &str) -> Result<(), SimError> {
        self.kv.del(fnv1a(name.as_bytes()))
    }

    /// Resolve `name` to its current address (node-local after sync).
    ///
    /// # Errors
    ///
    /// Propagates log errors.
    pub fn lookup(&mut self, name: &str) -> Result<Option<SocketAddr>, SimError> {
        match self.kv.get(fnv1a(name.as_bytes()))? {
            Some(bytes) => Ok(Some(SocketAddr::decode(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Number of live bindings.
    ///
    /// # Errors
    ///
    /// Propagates log errors.
    pub fn len(&mut self) -> Result<usize, SimError> {
        self.kv.len()
    }

    /// Whether no names are bound.
    ///
    /// # Errors
    ///
    /// Propagates log errors.
    pub fn is_empty(&mut self) -> Result<bool, SimError> {
        self.kv.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, SocketRegistry, SocketRegistry) {
        let rack = Rack::new(RackConfig::small_test());
        let shared = SocketRegistry::alloc_shared(rack.global(), rack.node_count()).unwrap();
        let r0 = SocketRegistry::new(shared.clone(), rack.node(0));
        let r1 = SocketRegistry::new(shared, rack.node(1));
        (rack, r0, r1)
    }

    #[test]
    fn bind_on_one_node_resolve_on_another() {
        let (_rack, mut r0, mut r1) = setup();
        let addr = SocketAddr {
            node: NodeId(0),
            channel: 42,
        };
        r0.bind("redis-server", addr).unwrap();
        assert_eq!(r1.lookup("redis-server").unwrap(), Some(addr));
        assert_eq!(r1.lookup("unknown").unwrap(), None);
    }

    #[test]
    fn rebind_moves_the_service() {
        let (_rack, mut r0, mut r1) = setup();
        r0.bind(
            "svc",
            SocketAddr {
                node: NodeId(0),
                channel: 1,
            },
        )
        .unwrap();
        // Service migrates to node 1.
        r1.bind(
            "svc",
            SocketAddr {
                node: NodeId(1),
                channel: 9,
            },
        )
        .unwrap();
        assert_eq!(
            r0.lookup("svc").unwrap(),
            Some(SocketAddr {
                node: NodeId(1),
                channel: 9
            })
        );
        assert_eq!(r0.len().unwrap(), 1);
    }

    #[test]
    fn unbind_removes_everywhere() {
        let (_rack, mut r0, mut r1) = setup();
        r0.bind(
            "tmp",
            SocketAddr {
                node: NodeId(0),
                channel: 1,
            },
        )
        .unwrap();
        r1.unbind("tmp").unwrap();
        assert_eq!(r0.lookup("tmp").unwrap(), None);
        assert!(r0.is_empty().unwrap());
    }

    #[test]
    fn lookups_after_sync_are_local() {
        let (_rack, mut r0, mut r1) = setup();
        r0.bind(
            "a",
            SocketAddr {
                node: NodeId(0),
                channel: 1,
            },
        )
        .unwrap();
        r1.lookup("a").unwrap(); // syncs
        let before = r1.kv.shared().log().tail(&_rack.node(1)).unwrap();
        // Further lookups only check the tail (no entry reads).
        r1.lookup("a").unwrap();
        let after = r1.kv.shared().log().tail(&_rack.node(1)).unwrap();
        assert_eq!(before, after);
    }
}
