//! Retry-with-backoff and timeout handling for cross-node operations.
//!
//! The fault-storm campaigns (rack-sim `storm`) sever links and crash
//! nodes *mid-call*. The migration-based RPC path ([`crate::rpc`]) rides
//! on shared memory and shrugs those off, but the message-fabric path
//! does not: a request or reply in flight across a failed link is simply
//! lost. This module adds the two mechanisms the paper's §3.5 relies on
//! for graceful degradation:
//!
//! * [`RetryPolicy`] / [`retry_with_backoff`] — exponential backoff with
//!   the wait charged to the caller's simulated clock, retrying only the
//!   error classes injected faults produce (link down, node down,
//!   timeout).
//! * [`MsgRpcClient`] / [`MsgRpcServer`] — a message-based RPC with
//!   simulated-time timeouts and server-side duplicate suppression: each
//!   call carries a client-unique id, the server caches the reply per
//!   id, and a retried request re-sends the cached reply **without
//!   re-executing the handler**. That is the "no double-delivery"
//!   invariant the `flac-faultstorm` harness checks.
//!
//! Because the simulator is cooperative (no background threads), the
//! client's call path takes a `pump` closure that gives the caller a
//! chance to run the server (and to inject/repair faults mid-call in
//! tests) between the request send and the reply poll.

use rack_sim::{Counter, NodeCtx, NodeId, SimError};
use std::collections::HashMap;
use std::sync::Arc;

/// Exponential-backoff retry policy; waits are simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_ns: u64,
    /// Backoff multiplier per further retry.
    pub multiplier: u64,
    /// Backoff ceiling.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ns: 10_000,
            multiplier: 2,
            max_backoff_ns: 1_000_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before attempt number `attempt` (1-based retries;
    /// attempt 0 is the initial try and waits nothing).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let mut b = self.base_backoff_ns;
        for _ in 1..attempt {
            b = b.saturating_mul(self.multiplier);
            if b >= self.max_backoff_ns {
                return self.max_backoff_ns;
            }
        }
        b.min(self.max_backoff_ns)
    }

    /// Whether an error is a transient fabric condition worth retrying,
    /// as opposed to a programming error that will never succeed.
    pub fn is_transient(err: &SimError) -> bool {
        matches!(
            err,
            SimError::LinkDown { .. }
                | SimError::NodeDown { .. }
                | SimError::Timeout { .. }
                | SimError::WouldBlock
        )
    }
}

/// Run `op` until it succeeds, a non-transient error occurs, or the
/// policy's attempts are exhausted. Backoff between attempts is charged
/// to `node`'s simulated clock and counted in the `ipc` registry.
///
/// # Errors
///
/// The last transient error when attempts are exhausted, or the first
/// non-transient error.
pub fn retry_with_backoff<T>(
    node: &NodeCtx,
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, SimError>,
) -> Result<T, SimError> {
    let mut last = None;
    // Fetched once on the first retry and bumped thereafter; the retry
    // loop must not re-take the registry lock per attempt.
    let mut ctr_retries: Option<Counter> = None;
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            node.charge(policy.backoff_ns(attempt));
            ctr_retries
                .get_or_insert_with(|| node.stats().registry().counter("ipc", "retries"))
                .incr();
        }
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if RetryPolicy::is_transient(&e) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(SimError::Timeout { waited_ns: 0 }))
}

const CALL_HEADER: usize = 10; // call id (8) + reply port (2)
const REPLY_HEADER: usize = 8; // call id

/// Server side of the message-fabric RPC: executes each distinct call id
/// exactly once and re-sends cached replies for retried requests.
#[derive(Debug)]
pub struct MsgRpcServer {
    node: Arc<NodeCtx>,
    port: u16,
    replies: HashMap<u64, Vec<u8>>,
    executed: u64,
    dup_suppressed: u64,
    replies_lost: u64,
    // Held counter handles for the per-request serve path, lazily fetched
    // so an idle server registers nothing (matching the old one-shot
    // `registry().add` behaviour in snapshots).
    ctr_dups: Option<Counter>,
    ctr_served: Option<Counter>,
    ctr_replies_lost: Option<Counter>,
}

impl MsgRpcServer {
    /// A server draining requests addressed to `port` on `node`.
    pub fn new(node: Arc<NodeCtx>, port: u16) -> Self {
        MsgRpcServer {
            node,
            port,
            replies: HashMap::new(),
            executed: 0,
            dup_suppressed: 0,
            replies_lost: 0,
            ctr_dups: None,
            ctr_served: None,
            ctr_replies_lost: None,
        }
    }

    /// How many distinct calls the handler actually executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// How many retried requests were answered from the reply cache.
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }

    /// How many replies were lost to a down link/node at send time (the
    /// client's timeout+retry path recovers these).
    pub fn replies_lost(&self) -> u64 {
        self.replies_lost
    }

    /// Serve at most one pending request; `Ok(false)` when the queue is
    /// empty. A reply that cannot be sent (link or peer down) is counted
    /// as lost but the call stays cached, so the client's retry gets it.
    ///
    /// # Errors
    ///
    /// Fails when this node is down or a request is malformed.
    pub fn serve_once(
        &mut self,
        handler: &mut dyn FnMut(&[u8]) -> Vec<u8>,
    ) -> Result<bool, SimError> {
        let msg = match self.node.try_recv(self.port) {
            Ok(m) => m,
            Err(SimError::WouldBlock) => return Ok(false),
            Err(e) => return Err(e),
        };
        if msg.payload.len() < CALL_HEADER {
            return Err(SimError::Protocol("rpc request shorter than header".into()));
        }
        let call_id = u64::from_le_bytes(msg.payload[..8].try_into().expect("sized"));
        let reply_port = u16::from_le_bytes(msg.payload[8..10].try_into().expect("sized"));
        let node = &self.node;
        let body = if let Some(cached) = self.replies.get(&call_id) {
            self.dup_suppressed += 1;
            self.ctr_dups
                .get_or_insert_with(|| node.stats().registry().counter("ipc", "rpc_dups"))
                .incr();
            cached.clone()
        } else {
            let out = handler(&msg.payload[CALL_HEADER..]);
            self.executed += 1;
            self.ctr_served
                .get_or_insert_with(|| node.stats().registry().counter("ipc", "rpc_served"))
                .incr();
            self.replies.insert(call_id, out.clone());
            out
        };
        let mut reply = call_id.to_le_bytes().to_vec();
        reply.extend_from_slice(&body);
        match self.node.send(msg.from, reply_port, reply) {
            Ok(_) => Ok(true),
            Err(SimError::LinkDown { .. } | SimError::NodeDown { .. }) => {
                self.replies_lost += 1;
                self.ctr_replies_lost
                    .get_or_insert_with(|| node.stats().registry().counter("ipc", "replies_lost"))
                    .incr();
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Serve every pending request; returns how many were served.
    ///
    /// # Errors
    ///
    /// Propagates [`MsgRpcServer::serve_once`] errors.
    pub fn drain(&mut self, handler: &mut dyn FnMut(&[u8]) -> Vec<u8>) -> Result<usize, SimError> {
        let mut served = 0;
        while self.serve_once(handler)? {
            served += 1;
        }
        Ok(served)
    }
}

/// Client side of the message-fabric RPC: at-most-once execution with
/// simulated-time timeouts and policy-driven retry.
#[derive(Debug)]
pub struct MsgRpcClient {
    node: Arc<NodeCtx>,
    server: NodeId,
    port: u16,
    reply_port: u16,
    next_call_id: u64,
    /// How long (simulated ns) one attempt waits for a reply.
    pub timeout_ns: u64,
    /// Clock charge per empty reply poll.
    pub poll_ns: u64,
    // Held counter handles for the per-call path (lazily fetched; see
    // `MsgRpcServer` for why lazily).
    ctr_calls: Option<Counter>,
    ctr_retries: Option<Counter>,
    ctr_timeouts: Option<Counter>,
}

impl MsgRpcClient {
    /// A client on `node` calling `server`'s RPC port, receiving replies
    /// on `reply_port`. Call ids embed the client node id so ids from
    /// different clients never collide at the server.
    pub fn new(node: Arc<NodeCtx>, server: NodeId, port: u16, reply_port: u16) -> Self {
        let node_tag = (node.id().0 as u64) << 48;
        MsgRpcClient {
            node,
            server,
            port,
            reply_port,
            next_call_id: node_tag,
            timeout_ns: 50_000,
            poll_ns: 1_000,
            ctr_calls: None,
            ctr_retries: None,
            ctr_timeouts: None,
        }
    }

    /// One call with retry: send the request, let `pump` run the server
    /// (and any mid-call fault choreography), then poll for the reply
    /// until `timeout_ns`. Transient failures back off per `policy` and
    /// retry **with the same call id**, so the server's duplicate
    /// suppression guarantees at-most-once execution.
    ///
    /// # Errors
    ///
    /// The last transient error when attempts are exhausted (typically
    /// [`SimError::Timeout`]), or the first non-transient error.
    pub fn call_with_retry(
        &mut self,
        args: &[u8],
        policy: &RetryPolicy,
        pump: &mut dyn FnMut(u32) -> Result<(), SimError>,
    ) -> Result<Vec<u8>, SimError> {
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        let node = self.node.clone();
        self.ctr_calls
            .get_or_insert_with(|| node.stats().registry().counter("ipc", "rpc_calls"))
            .incr();
        let mut last = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                node.charge(policy.backoff_ns(attempt));
                self.ctr_retries
                    .get_or_insert_with(|| node.stats().registry().counter("ipc", "rpc_retries"))
                    .incr();
            }
            match self.attempt(call_id, args, attempt, pump) {
                Ok(v) => return Ok(v),
                Err(e) if RetryPolicy::is_transient(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(SimError::Timeout { waited_ns: 0 }))
    }

    fn attempt(
        &mut self,
        call_id: u64,
        args: &[u8],
        attempt: u32,
        pump: &mut dyn FnMut(u32) -> Result<(), SimError>,
    ) -> Result<Vec<u8>, SimError> {
        let mut req = call_id.to_le_bytes().to_vec();
        req.extend_from_slice(&self.reply_port.to_le_bytes());
        req.extend_from_slice(args);
        self.node.send(self.server, self.port, req)?;
        pump(attempt)?;
        let mut waited = 0u64;
        loop {
            match self.node.try_recv(self.reply_port) {
                Ok(msg) => {
                    if msg.payload.len() < REPLY_HEADER {
                        return Err(SimError::Protocol("rpc reply shorter than header".into()));
                    }
                    let id = u64::from_le_bytes(msg.payload[..8].try_into().expect("sized"));
                    if id != call_id {
                        // A late reply from an earlier call: drop and keep
                        // polling for ours.
                        continue;
                    }
                    return Ok(msg.payload[REPLY_HEADER..].to_vec());
                }
                Err(SimError::WouldBlock) => {
                    if waited >= self.timeout_ns {
                        let node = &self.node;
                        self.ctr_timeouts
                            .get_or_insert_with(|| {
                                node.stats().registry().counter("ipc", "rpc_timeouts")
                            })
                            .incr();
                        return Err(SimError::Timeout { waited_ns: waited });
                    }
                    self.node.charge(self.poll_ns);
                    waited += self.poll_ns;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn rack() -> Rack {
        Rack::new(RackConfig::small_test())
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(0), 0);
        assert_eq!(p.backoff_ns(1), 10_000);
        assert_eq!(p.backoff_ns(2), 20_000);
        assert_eq!(p.backoff_ns(3), 40_000);
        assert_eq!(p.backoff_ns(60), p.max_backoff_ns, "capped, no overflow");
    }

    #[test]
    fn retry_helper_retries_transient_and_charges_backoff() {
        let rack = rack();
        let n0 = rack.node(0);
        let before = n0.clock().now();
        let mut failures = 2;
        let out = retry_with_backoff(&n0, &RetryPolicy::default(), |_| {
            if failures > 0 {
                failures -= 1;
                Err(SimError::LinkDown {
                    from: NodeId(0),
                    to: NodeId(1),
                })
            } else {
                Ok(99)
            }
        })
        .unwrap();
        assert_eq!(out, 99);
        assert_eq!(
            n0.clock().now() - before,
            10_000 + 20_000,
            "backoff charged"
        );
    }

    #[test]
    fn retry_helper_gives_up_on_non_transient() {
        let rack = rack();
        let n0 = rack.node(0);
        let mut calls = 0;
        let err = retry_with_backoff::<()>(&n0, &RetryPolicy::default(), |_| {
            calls += 1;
            Err(SimError::Protocol("bad".into()))
        })
        .unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)));
        assert_eq!(calls, 1, "non-transient errors are not retried");
    }

    #[test]
    fn rpc_round_trip_executes_once() {
        let rack = rack();
        let mut server = MsgRpcServer::new(rack.node(1), 7);
        let mut client = MsgRpcClient::new(rack.node(0), NodeId(1), 7, 8);
        let out = client
            .call_with_retry(b"ping", &RetryPolicy::default(), &mut |_| {
                let mut echo = |req: &[u8]| {
                    let mut r = b"pong:".to_vec();
                    r.extend_from_slice(req);
                    r
                };
                server.serve_once(&mut echo).map(|_| ())
            })
            .unwrap();
        assert_eq!(out, b"pong:ping");
        assert_eq!(server.executed(), 1);
        assert_eq!(server.dup_suppressed(), 0);
    }

    #[test]
    fn lost_reply_times_out_then_retry_is_dup_suppressed() {
        // Forward link fine, reply link severed: the handler runs, the
        // reply is lost, the client times out and retries with the same
        // call id; the server answers from cache without re-executing.
        let rack = rack();
        let faults = rack.faults().clone();
        let mut server = MsgRpcServer::new(rack.node(1), 7);
        let mut client = MsgRpcClient::new(rack.node(0), NodeId(1), 7, 8);
        faults.fail_link(NodeId(1), NodeId(0), 0);
        let mut handler = |_req: &[u8]| b"done".to_vec();
        let out = client
            .call_with_retry(b"work", &RetryPolicy::default(), &mut |attempt| {
                if attempt == 1 {
                    faults.restore_link(NodeId(1), NodeId(0), 0);
                }
                server.serve_once(&mut handler).map(|_| ())
            })
            .unwrap();
        assert_eq!(out, b"done");
        assert_eq!(server.executed(), 1, "handler ran exactly once");
        assert_eq!(server.dup_suppressed(), 1, "retry answered from cache");
        assert_eq!(server.replies_lost(), 1);
    }

    #[test]
    fn attempts_exhausted_surfaces_timeout() {
        let rack = rack();
        let faults = rack.faults().clone();
        let mut server = MsgRpcServer::new(rack.node(1), 7);
        let mut client = MsgRpcClient::new(rack.node(0), NodeId(1), 7, 8);
        faults.fail_link(NodeId(1), NodeId(0), 0); // never restored
        let policy = RetryPolicy {
            max_attempts: 2,
            ..Default::default()
        };
        let mut handler = |_req: &[u8]| Vec::new();
        let err = client
            .call_with_retry(b"x", &policy, &mut |_| {
                server.serve_once(&mut handler).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "got {err:?}");
    }
}
