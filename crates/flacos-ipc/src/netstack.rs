//! The networking baseline: a costed TCP/IP-over-Ethernet path.
//!
//! Figure 4's comparison point. The paper attributes the networking
//! method's overhead to *"software overhead, including buffer
//! allocations, data copies, and stack processing"* — so this model
//! performs those steps for real (allocations and memcpys happen; the
//! payload genuinely transits an skb chain) and charges per-layer
//! latencies calibrated to published kernel-stack breakdowns for a
//! direct-connected 10-25 GbE link.

use rack_sim::{NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Per-layer cost parameters (simulated nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Ethernet MTU (payload bytes per segment).
    pub mtu: usize,
    /// System-call entry/exit on send or receive.
    pub syscall_ns: u64,
    /// skb/socket buffer allocation per segment.
    pub buf_alloc_ns: u64,
    /// TCP layer processing per segment (each direction).
    pub tcp_ns: u64,
    /// IP + netfilter processing per segment (each direction).
    pub ip_ns: u64,
    /// Driver + NIC queue handling per segment (each direction).
    pub driver_ns: u64,
    /// Interrupt + softirq cost per segment at the receiver.
    pub irq_ns: u64,
    /// Copy cost per byte (user<->skb), in picoseconds.
    pub copy_ps_per_byte: u64,
    /// Link propagation + switch latency per packet.
    pub wire_ns: u64,
    /// Serialization rate of the link, in picoseconds per byte
    /// (100 ps/B == 10 GbE).
    pub wire_ps_per_byte: u64,
}

impl NetConfig {
    /// A direct-connected 10 GbE link with a typical kernel stack.
    pub fn ten_gbe() -> Self {
        NetConfig {
            mtu: 1500,
            syscall_ns: 750,
            buf_alloc_ns: 450,
            tcp_ns: 1200,
            ip_ns: 500,
            driver_ns: 600,
            irq_ns: 950,
            copy_ps_per_byte: 80,
            wire_ns: 800,
            wire_ps_per_byte: 100,
        }
    }

    /// Segments needed for `len` payload bytes (at least one).
    pub fn segments(&self, len: usize) -> usize {
        len.div_ceil(self.mtu).max(1)
    }

    fn copy_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.copy_ps_per_byte) / 1000
    }

    fn wire_transfer_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.wire_ps_per_byte) / 1000
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::ten_gbe()
    }
}

/// Traffic counters for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
    /// Segments transmitted.
    pub segments: u64,
    /// Bytes memcpy'd by the stack (both directions).
    pub copied_bytes: u64,
}

/// Fabric port carrying the simulated Ethernet frames.
const ETH_PORT: u16 = 7700;

/// One side of a TCP-like connection between two nodes.
#[derive(Debug)]
pub struct NetEndpoint {
    node: Arc<NodeCtx>,
    peer: NodeId,
    config: NetConfig,
    port_offset: u16,
    rx_partial: Vec<Vec<u8>>, // segments of the message being reassembled
    stats: NetStats,
}

/// A connected pair of [`NetEndpoint`]s.
#[derive(Debug)]
pub struct NetPair;

impl NetPair {
    /// Connect nodes `a` and `b` over the simulated Ethernet.
    /// `conn_id` isolates concurrent connections between the same nodes.
    pub fn connect(
        a: Arc<NodeCtx>,
        b: Arc<NodeCtx>,
        config: NetConfig,
        conn_id: u16,
    ) -> (NetEndpoint, NetEndpoint) {
        let peer_a = b.id();
        let peer_b = a.id();
        (
            NetEndpoint {
                node: a,
                peer: peer_a,
                config: config.clone(),
                port_offset: conn_id,
                rx_partial: Vec::new(),
                stats: NetStats::default(),
            },
            NetEndpoint {
                node: b,
                peer: peer_b,
                config,
                port_offset: conn_id,
                rx_partial: Vec::new(),
                stats: NetStats::default(),
            },
        )
    }
}

impl NetEndpoint {
    /// The node this endpoint lives on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    fn port(&self) -> u16 {
        ETH_PORT + self.port_offset
    }

    /// Send one application message through the full stack.
    ///
    /// # Errors
    ///
    /// Fails if the peer is down or the link is severed.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), SimError> {
        let cfg = &self.config;
        let node = &self.node;
        // Per-message costs: syscall entry/exit and TCP connection work
        // (GSO hands one large buffer to the stack; segmentation happens
        // below the TCP layer).
        node.charge(cfg.syscall_ns + cfg.tcp_ns);
        let segs = cfg.segments(payload.len());
        for (i, chunk) in payload
            .chunks(cfg.mtu.max(1))
            .chain(
                // Ensure at least one (possibly empty) segment for 0-byte sends.
                std::iter::repeat_n(&payload[0..0], usize::from(payload.is_empty())),
            )
            .enumerate()
        {
            // Per-segment: buffer allocation + user->skb copy (real),
            // IP/netfilter, driver queueing, wire serialization.
            node.charge(cfg.buf_alloc_ns);
            let mut skb = Vec::with_capacity(chunk.len() + 8);
            skb.extend_from_slice(&(i as u32).to_le_bytes());
            skb.extend_from_slice(&(segs as u32).to_le_bytes());
            skb.extend_from_slice(chunk);
            node.charge(cfg.copy_ns(chunk.len()));
            self.stats.copied_bytes += chunk.len() as u64;
            node.charge(cfg.ip_ns + cfg.driver_ns);
            // Wire: propagation + serialization, on top of the fabric's
            // own timestamping (the message fabric here stands in for the
            // Ethernet wire; its hop cost approximates the switch).
            node.charge(cfg.wire_ns + cfg.wire_transfer_ns(chunk.len()));
            node.send(self.peer, self.port(), skb)?;
            self.stats.segments += 1;
        }
        self.stats.sent += 1;
        Ok(())
    }

    /// Receive one application message if fully arrived, running the
    /// receive-side stack for each segment.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] until a complete message is available.
    pub fn try_recv(&mut self) -> Result<Vec<u8>, SimError> {
        let cfg = self.config.clone();
        loop {
            // Already have a complete message buffered?
            if let Some(total) = self
                .rx_partial
                .first()
                .map(|s| u32::from_le_bytes(s[4..8].try_into().expect("4")) as usize)
            {
                if self.rx_partial.len() >= total {
                    let node = self.node.clone();
                    // Per-message receive costs: syscall + one interrupt
                    // (NAPI coalesces per-packet interrupts) + TCP work.
                    node.charge(cfg.syscall_ns + cfg.irq_ns + cfg.tcp_ns);
                    let mut msg = Vec::new();
                    let mut segs: Vec<Vec<u8>> = self.rx_partial.drain(..total).collect();
                    segs.sort_by_key(|s| u32::from_le_bytes(s[..4].try_into().expect("4")));
                    for s in segs {
                        // skb -> user copy, for real.
                        node.charge(cfg.copy_ns(s.len() - 8));
                        self.stats.copied_bytes += (s.len() - 8) as u64;
                        msg.extend_from_slice(&s[8..]);
                    }
                    self.stats.received += 1;
                    return Ok(msg);
                }
            }
            // Pull the next segment off the wire: per-segment IP + driver
            // (softirq) processing.
            let frame = self.node.try_recv(self.port())?;
            self.node.charge(cfg.ip_ns + cfg.driver_ns);
            if frame.payload.len() < 8 {
                return Err(SimError::Protocol("runt ethernet frame".into()));
            }
            self.rx_partial.push(frame.payload);
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The cost configuration in use.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn pair(rack: &Rack) -> (NetEndpoint, NetEndpoint) {
        NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0)
    }

    #[test]
    fn roundtrip_small_message() {
        let rack = Rack::new(RackConfig::small_test());
        let (mut a, mut b) = pair(&rack);
        a.send(b"GET key").unwrap();
        assert_eq!(b.try_recv().unwrap(), b"GET key");
        b.send(b"VALUE").unwrap();
        assert_eq!(a.try_recv().unwrap(), b"VALUE");
        assert!(matches!(a.try_recv(), Err(SimError::WouldBlock)));
    }

    #[test]
    fn large_messages_are_segmented_and_reassembled() {
        let rack = Rack::new(RackConfig::small_test());
        let (mut a, mut b) = pair(&rack);
        let payload: Vec<u8> = (0..40_000).map(|i| (i % 253) as u8).collect();
        a.send(&payload).unwrap();
        assert_eq!(a.stats().segments as usize, payload.len().div_ceil(1500));
        assert_eq!(b.try_recv().unwrap(), payload);
    }

    #[test]
    fn stack_costs_scale_with_segments() {
        let rack = Rack::new(RackConfig::small_test());
        let (mut a, _b) = pair(&rack);
        let t0 = a.node().clock().now();
        a.send(&[0u8; 100]).unwrap();
        let small = a.node().clock().now() - t0;
        let t1 = a.node().clock().now();
        a.send(&[0u8; 6000]).unwrap();
        let large = a.node().clock().now() - t1;
        assert!(
            large > 2 * small,
            "4 segments cost well over 2x one segment: {large} vs {small}"
        );
    }

    #[test]
    fn copies_are_counted_both_sides() {
        let rack = Rack::new(RackConfig::small_test());
        let (mut a, mut b) = pair(&rack);
        a.send(&[1u8; 2000]).unwrap();
        b.try_recv().unwrap();
        assert_eq!(a.stats().copied_bytes, 2000);
        assert_eq!(b.stats().copied_bytes, 2000);
    }

    #[test]
    fn empty_message_roundtrips() {
        let rack = Rack::new(RackConfig::small_test());
        let (mut a, mut b) = pair(&rack);
        a.send(b"").unwrap();
        assert_eq!(b.try_recv().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn concurrent_connections_are_isolated() {
        let rack = Rack::new(RackConfig::small_test());
        let (mut a1, mut b1) =
            NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 1);
        let (mut a2, mut b2) =
            NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 2);
        a1.send(b"one").unwrap();
        a2.send(b"two").unwrap();
        assert_eq!(b2.try_recv().unwrap(), b"two");
        assert_eq!(b1.try_recv().unwrap(), b"one");
    }
}
