//! Adversarial RESP corpus + end-to-end pipelining round trips.
//!
//! The parser contract under attack: for ANY byte string, `parse_frame`
//! returns `Ok(Some(_))` (a complete frame), `Ok(None)` (genuinely needs
//! more bytes), or `Err(RespError)` (malformed) — it never panics, never
//! overflows on hostile length prefixes, and `Ok(None)` is reserved for
//! prefixes of well-formed frames so a desynced stream cannot stall a
//! connection forever.

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig, SimError};
use redis_mini::client::RedisClient;
use redis_mini::resp::{MAX_ARGC, MAX_BULK_LEN};
use redis_mini::server::RedisServer;
use redis_mini::transport::Transport;
use redis_mini::{Command, Reply};

/// Hostile and malformed inputs: none may panic, all must be rejected
/// (`Err`) rather than silently accepted or classified as incomplete.
#[test]
fn malformed_inputs_are_rejected_without_panicking() {
    let corpus: Vec<Vec<u8>> = vec![
        // Negative lengths — the original overflow-to-usize bug.
        b"*-1\r\n".to_vec(),
        b"*1\r\n$-1\r\n".to_vec(),
        b"*1\r\n$-9223372036854775808\r\n".to_vec(),
        b"*-9223372036854775808\r\n".to_vec(),
        // Huge lengths — must be rejected, not allocated.
        format!("*1\r\n${}\r\nx", i64::MAX).into_bytes(),
        format!("*{}\r\n", i64::MAX).into_bytes(),
        format!("*1\r\n${}\r\n", (MAX_BULK_LEN as i64) + 1).into_bytes(),
        format!("*{}\r\n", MAX_ARGC + 1).into_bytes(),
        // Zero-arg array, wrong markers, digit garbage.
        b"*0\r\n".to_vec(),
        b"$3\r\nfoo\r\n".to_vec(),
        b"*1\r\n:42\r\n".to_vec(),
        b"*x\r\n".to_vec(),
        b"*1\r\n$x\r\n".to_vec(),
        b"*1\r\n$4x\r\n".to_vec(),
        b"*12345678901234567890123\r\n".to_vec(),
        // Bad frame terminators.
        b"*1\r\n$4\r\nPINGxx".to_vec(),
        b"*1\r\n$4\r\nPING\r*".to_vec(),
        // Unknown command / wrong arity (parse succeeds syntactically,
        // must error semantically — still no panic).
        b"*1\r\n$5\r\nFLUSH\r\n".to_vec(),
        b"*3\r\n$3\r\nGET\r\n$1\r\na\r\n$1\r\nb\r\n".to_vec(),
        // Raw garbage.
        b"garbage request".to_vec(),
        vec![0xFF; 64],
        vec![b'*'; 64],
    ];
    for input in &corpus {
        assert!(
            Command::parse(input).is_err(),
            "hostile input must be rejected: {input:?}"
        );
        // The frame-offset API must agree: anything the strict parser
        // rejects is Err or Incomplete, never a silently parsed frame.
        if let Ok(Some((cmd, consumed))) = Command::parse_frame(input) {
            panic!("hostile input parsed as {cmd:?} ({consumed} bytes): {input:?}");
        }
    }
}

/// Hostile reply streams: same contract on the client-side parser.
#[test]
fn malformed_replies_are_rejected_without_panicking() {
    let corpus: Vec<Vec<u8>> = vec![
        b"$-2\r\n".to_vec(),
        format!("${}\r\n", i64::MAX).into_bytes(),
        format!("${}\r\n", (MAX_BULK_LEN as i64) + 1).into_bytes(),
        b"$x\r\n".to_vec(),
        b"$5\r\nabcdexx".to_vec(),
        b"?what\r\n".to_vec(),
        b":12x\r\n".to_vec(),
        b":\r\n".to_vec(),
        vec![0u8; 16],
    ];
    for input in &corpus {
        assert!(
            Reply::parse(input).is_err(),
            "hostile reply must be rejected: {input:?}"
        );
        if let Ok(Some((reply, consumed))) = Reply::parse_frame(input) {
            panic!("hostile reply parsed as {reply:?} ({consumed} bytes): {input:?}");
        }
    }
    // `$-1` alone is the RESP null bulk — valid, not hostile.
    assert_eq!(Reply::parse(b"$-1\r\n").unwrap(), (Reply::Null, 5));
}

/// Every proper prefix of a valid frame is `Incomplete` (`Ok(None)`),
/// never `Err` and never a short parse — truncation at *every* byte
/// boundary, for commands and replies.
#[test]
fn truncations_at_every_byte_boundary_are_incomplete() {
    let frames: Vec<Vec<u8>> = vec![
        Command::Set {
            key: b"key".to_vec(),
            value: vec![7u8; 100],
        }
        .encode(),
        Command::Get {
            key: b"counter".to_vec(),
        }
        .encode(),
        Command::Ping.encode(),
    ];
    for wire in &frames {
        for cut in 0..wire.len() {
            match Command::parse_frame(&wire[..cut]) {
                Ok(None) => {}
                other => panic!("prefix {cut}/{} of {wire:?}: got {other:?}", wire.len()),
            }
            assert!(Command::parse(&wire[..cut]).is_err(), "strict API at {cut}");
        }
        let (_, consumed) = Command::parse(wire).expect("full frame parses");
        assert_eq!(consumed, wire.len());
    }

    let replies: Vec<Vec<u8>> = vec![
        Reply::Simple("OK".into()).encode(),
        Reply::Error("ERR boom".into()).encode(),
        Reply::Integer(-12345).encode(),
        Reply::Bulk(vec![9u8; 200]).encode(),
        Reply::Null.encode(),
    ];
    for wire in &replies {
        for cut in 0..wire.len() {
            match Reply::parse_frame(&wire[..cut]) {
                Ok(None) => {}
                other => panic!("reply prefix {cut}/{}: got {other:?}", wire.len()),
            }
        }
        let (_, consumed) = Reply::parse(wire).expect("full reply parses");
        assert_eq!(consumed, wire.len());
    }
}

/// Back-to-back frames parse one at a time by consumed offset, and a
/// malformed tail is flagged exactly at the desync point.
#[test]
fn pipelined_buffers_parse_frame_by_frame() {
    let cmds = [
        Command::Set {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        },
        Command::Incr { key: b"n".to_vec() },
        Command::Get { key: b"a".to_vec() },
    ];
    let mut wire = Vec::new();
    for c in &cmds {
        wire.extend_from_slice(&c.encode());
    }
    wire.extend_from_slice(b"trailing garbage");

    let mut pos = 0;
    for expected in &cmds {
        let (cmd, consumed) = Command::parse(&wire[pos..]).expect("frame");
        assert_eq!(&cmd, expected);
        pos += consumed;
    }
    assert!(
        Command::parse_frame(&wire[pos..]).is_err(),
        "trailing garbage after the last frame must be an error, not silence"
    );
}

/// Drive a pipelined batch through the full client/server/event-loop
/// stack over one transport and check every reply.
fn pipeline_roundtrip<T: Transport>(mut server: RedisServer<T>, mut client: RedisClient<T>) {
    let cmds = vec![
        Command::Set {
            key: b"user:1".to_vec(),
            value: b"ada".to_vec(),
        },
        Command::Incr {
            key: b"visits".to_vec(),
        },
        Command::Incr {
            key: b"visits".to_vec(),
        },
        Command::Append {
            key: b"log".to_vec(),
            value: b"hello ".to_vec(),
        },
        Command::Get {
            key: b"user:1".to_vec(),
        },
        Command::Get {
            key: b"missing".to_vec(),
        },
    ];
    client.send_pipelined(&cmds).expect("pipelined send");
    server
        .node()
        .clock()
        .advance_to(client.node().clock().now());
    let served = server.poll().expect("poll");
    assert_eq!(served, cmds.len(), "all frames served in one poll");

    let mut replies = Vec::new();
    loop {
        match client.recv_reply() {
            Ok(r) => replies.push(r),
            Err(SimError::WouldBlock) => break,
            Err(e) => panic!("recv: {e}"),
        }
    }
    assert_eq!(
        replies,
        vec![
            Reply::Simple("OK".into()),
            Reply::Integer(1),
            Reply::Integer(2),
            Reply::Integer(6),
            Reply::Bulk(b"ada".to_vec()),
            Reply::Null,
        ]
    );
    let stats = server.stats();
    assert_eq!(stats.frames, cmds.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(
        stats.reply_batches, 1,
        "pipelined replies go out as one batched message"
    );
}

#[test]
fn pipelining_roundtrip_over_flacos_ipc() {
    let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
    let alloc = GlobalAllocator::new(rack.global().clone());
    let (sep, cep) =
        FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).expect("channel");
    pipeline_roundtrip(
        RedisServer::new(rack.node(0), sep),
        RedisClient::new(rack.node(1), cep),
    );
}

#[test]
fn pipelining_roundtrip_over_tcp() {
    let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
    let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
    pipeline_roundtrip(
        RedisServer::new(rack.node(0), sep),
        RedisClient::new(rack.node(1), cep),
    );
}

/// Regression for the one-command-per-message loss: a server fed three
/// frames in one message must not serve only the first.
#[test]
fn server_does_not_drop_pipelined_frames() {
    let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
    let alloc = GlobalAllocator::new(rack.global().clone());
    let (sep, cep) =
        FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).expect("channel");
    let mut server = RedisServer::new(rack.node(0), sep);
    let mut client = RedisClient::new(rack.node(1), cep);

    let mut wire = Vec::new();
    for i in 0..3u8 {
        wire.extend_from_slice(
            &Command::Set {
                key: vec![b'k', b'0' + i],
                value: vec![i; 4],
            }
            .encode(),
        );
    }
    client.transport_mut().send(&wire).expect("send");
    server
        .node()
        .clock()
        .advance_to(client.node().clock().now());
    let served = server.poll().expect("poll");
    assert_eq!(served, 3, "all three pipelined SETs must execute");
    for _ in 0..3 {
        assert!(matches!(client.recv_reply(), Ok(Reply::Simple(_))));
    }
}
