//! The server's in-memory keyspace.
//!
//! A plain node-local hash map (the Redis server of the paper's
//! experiment is an unmodified single-node process; the *transport* is
//! what varies). Operations charge local-DRAM access costs plus a small
//! per-command processing cost calibrated to Redis's command dispatch.

use crate::resp::{Command, Reply};
use rack_sim::NodeCtx;
use std::collections::HashMap;

/// Per-command processing cost (dispatch, hashing, bookkeeping) in
/// simulated nanoseconds — Redis spends roughly 1 µs of CPU per simple
/// command.
const COMMAND_CPU_NS: u64 = 1_000;

/// Keyspace statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// SET commands executed.
    pub sets: u64,
    /// GET commands executed.
    pub gets: u64,
    /// GETs that found the key.
    pub hits: u64,
}

/// An in-memory key-value keyspace.
#[derive(Debug, Default)]
pub struct KeyspaceStore {
    map: HashMap<Vec<u8>, Vec<u8>>,
    stats: StoreStats,
}

impl KeyspaceStore {
    /// An empty keyspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Execute one command, charging simulated CPU + memory costs.
    pub fn execute(&mut self, ctx: &NodeCtx, cmd: Command) -> Reply {
        ctx.charge(COMMAND_CPU_NS);
        match cmd {
            Command::Set { key, value } => {
                ctx.charge(ctx.latency().local_write_ns);
                self.map.insert(key, value);
                self.stats.sets += 1;
                Reply::Simple("OK".into())
            }
            Command::Get { key } => {
                ctx.charge(ctx.latency().local_read_ns);
                self.stats.gets += 1;
                match self.map.get(&key) {
                    Some(v) => {
                        self.stats.hits += 1;
                        Reply::Bulk(v.clone())
                    }
                    None => Reply::Null,
                }
            }
            Command::Del { key } => {
                ctx.charge(ctx.latency().local_write_ns);
                Reply::Integer(i64::from(self.map.remove(&key).is_some()))
            }
            Command::Incr { key } => {
                ctx.charge(ctx.latency().local_write_ns);
                let cur = match self.map.get(&key) {
                    None => 0,
                    Some(v) => match std::str::from_utf8(v)
                        .ok()
                        .and_then(|s| s.parse::<i64>().ok())
                    {
                        Some(n) => n,
                        None => {
                            return Reply::Error(
                                "ERR value is not an integer or out of range".into(),
                            )
                        }
                    },
                };
                let next = cur + 1;
                self.map.insert(key, next.to_string().into_bytes());
                Reply::Integer(next)
            }
            Command::Exists { key } => {
                ctx.charge(ctx.latency().local_read_ns);
                Reply::Integer(i64::from(self.map.contains_key(&key)))
            }
            Command::Append { key, value } => {
                ctx.charge(ctx.latency().local_write_ns);
                let entry = self.map.entry(key).or_default();
                entry.extend_from_slice(&value);
                Reply::Integer(entry.len() as i64)
            }
            Command::Ping => Reply::Simple("PONG".into()),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the keyspace is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Command counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn set_get_del_semantics() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut s = KeyspaceStore::new();
        assert_eq!(
            s.execute(
                &n0,
                Command::Set {
                    key: b"a".to_vec(),
                    value: b"1".to_vec()
                }
            ),
            Reply::Simple("OK".into())
        );
        assert_eq!(
            s.execute(&n0, Command::Get { key: b"a".to_vec() }),
            Reply::Bulk(b"1".to_vec())
        );
        assert_eq!(
            s.execute(&n0, Command::Get { key: b"b".to_vec() }),
            Reply::Null
        );
        assert_eq!(
            s.execute(&n0, Command::Del { key: b"a".to_vec() }),
            Reply::Integer(1)
        );
        assert_eq!(
            s.execute(&n0, Command::Del { key: b"a".to_vec() }),
            Reply::Integer(0)
        );
        assert_eq!(s.execute(&n0, Command::Ping), Reply::Simple("PONG".into()));
        assert!(s.is_empty());
        let stats = s.stats();
        assert_eq!((stats.sets, stats.gets, stats.hits), (1, 2, 1));
    }

    #[test]
    fn incr_semantics_match_redis() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut s = KeyspaceStore::new();
        assert_eq!(
            s.execute(&n0, Command::Incr { key: b"c".to_vec() }),
            Reply::Integer(1)
        );
        assert_eq!(
            s.execute(&n0, Command::Incr { key: b"c".to_vec() }),
            Reply::Integer(2)
        );
        // Stored as a decimal string, GET-compatible.
        assert_eq!(
            s.execute(&n0, Command::Get { key: b"c".to_vec() }),
            Reply::Bulk(b"2".to_vec())
        );
        // Non-numeric values refuse to increment.
        s.execute(
            &n0,
            Command::Set {
                key: b"s".to_vec(),
                value: b"abc".to_vec(),
            },
        );
        assert!(matches!(
            s.execute(&n0, Command::Incr { key: b"s".to_vec() }),
            Reply::Error(_)
        ));
    }

    #[test]
    fn exists_and_append_semantics() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut s = KeyspaceStore::new();
        assert_eq!(
            s.execute(&n0, Command::Exists { key: b"k".to_vec() }),
            Reply::Integer(0)
        );
        assert_eq!(
            s.execute(
                &n0,
                Command::Append {
                    key: b"k".to_vec(),
                    value: b"ab".to_vec()
                }
            ),
            Reply::Integer(2),
            "append creates missing keys"
        );
        assert_eq!(
            s.execute(
                &n0,
                Command::Append {
                    key: b"k".to_vec(),
                    value: b"cd".to_vec()
                }
            ),
            Reply::Integer(4)
        );
        assert_eq!(
            s.execute(&n0, Command::Exists { key: b"k".to_vec() }),
            Reply::Integer(1)
        );
        assert_eq!(
            s.execute(&n0, Command::Get { key: b"k".to_vec() }),
            Reply::Bulk(b"abcd".to_vec())
        );
    }

    #[test]
    fn commands_charge_simulated_time() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut s = KeyspaceStore::new();
        let t0 = n0.clock().now();
        s.execute(&n0, Command::Ping);
        assert!(n0.clock().now() > t0);
    }
}
