//! The redis-mini server: a multi-connection event loop with RESP
//! pipelining and batched reply writes.
//!
//! Each connection owns a receive buffer that accumulates transport
//! messages; [`RedisServer::poll`] drains every connection, parses *all*
//! complete frames out of the buffer (advancing by the consumed offset —
//! a message carrying N pipelined commands is served N times, and a
//! frame split across two messages is reassembled), executes them, and
//! flushes the concatenated replies back as one batched transport write
//! per connection per poll. Transport backpressure ([`SimError::WouldBlock`]
//! from `send`) parks the unsent reply bytes in a per-connection pending
//! buffer that is retried on the next poll; while pending replies exceed
//! a high-water mark the connection stops executing new frames, so an
//! open-loop overload degrades into queueing instead of unbounded memory.
//!
//! Protocol errors desynchronize a byte stream (the frame boundary is
//! lost), so a malformed frame is answered with a RESP error and the
//! rest of that connection's receive buffer is discarded — the moral
//! equivalent of real Redis closing the connection.

use crate::resp::{Command, Reply};
use crate::store::KeyspaceStore;
use crate::transport::Transport;
use rack_sim::{NodeCtx, SimError};
use std::sync::Arc;

/// Reply bytes are flushed in transport messages of at most this size,
/// so one giant batch cannot demand an equally giant zero-copy segment.
pub const REPLY_CHUNK_BYTES: usize = 64 << 10;

/// When a connection's unsent replies exceed this, the server stops
/// executing its queued frames until the transport drains (backpressure).
pub const TX_HIGH_WATER: usize = 1 << 20;

/// Event-loop counters (per server, across all connections).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Command frames executed.
    pub frames: u64,
    /// Batched reply messages written.
    pub reply_batches: u64,
    /// `WouldBlock` events on reply flush (transport backpressure).
    pub backpressure: u64,
    /// Malformed frames answered with a RESP error (buffer discarded).
    pub protocol_errors: u64,
}

/// One served connection: its transport plus framing state.
#[derive(Debug)]
struct Conn<T: Transport> {
    transport: T,
    /// Received-but-unparsed bytes (tail may be a partial frame).
    rx: Vec<u8>,
    /// Parse offset into `rx` (consumed frames; compacted each poll).
    rx_pos: usize,
    /// Encoded replies not yet accepted by the transport.
    tx_pending: Vec<u8>,
}

impl<T: Transport> Conn<T> {
    fn new(transport: T) -> Self {
        Conn {
            transport,
            rx: Vec::new(),
            rx_pos: 0,
            tx_pending: Vec::new(),
        }
    }
}

/// A single-threaded redis-mini server multiplexing any number of
/// transport connections.
#[derive(Debug)]
pub struct RedisServer<T: Transport> {
    node: Arc<NodeCtx>,
    conns: Vec<Conn<T>>,
    store: KeyspaceStore,
    served: u64,
    stats: ServerStats,
}

impl<T: Transport> RedisServer<T> {
    /// Serve on a single `transport` from `node`.
    pub fn new(node: Arc<NodeCtx>, transport: T) -> Self {
        Self::with_connections(node, vec![transport])
    }

    /// Serve `transports` (one event loop over all of them) from `node`.
    pub fn with_connections(node: Arc<NodeCtx>, transports: Vec<T>) -> Self {
        RedisServer {
            node,
            conns: transports.into_iter().map(Conn::new).collect(),
            store: KeyspaceStore::new(),
            served: 0,
            stats: ServerStats::default(),
        }
    }

    /// Add another connection to the event loop; returns its index.
    pub fn add_connection(&mut self, transport: T) -> usize {
        self.conns.push(Conn::new(transport));
        self.conns.len() - 1
    }

    /// Number of connections multiplexed by this server.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// One event-loop iteration: for every connection, retry pending
    /// reply flushes, drain arrived messages into the receive buffer,
    /// execute every complete frame (pipelining), and write the batched
    /// replies. Returns the number of command frames served this poll.
    ///
    /// # Errors
    ///
    /// Transport failures other than backpressure are propagated;
    /// malformed requests are answered with a RESP error instead of
    /// failing the server.
    pub fn poll(&mut self) -> Result<usize, SimError> {
        let mut served = 0;
        for i in 0..self.conns.len() {
            served += Self::poll_conn(
                &self.node,
                &mut self.store,
                &mut self.stats,
                &mut self.conns[i],
            )?;
        }
        self.served += served as u64;
        Ok(served)
    }

    fn poll_conn(
        node: &Arc<NodeCtx>,
        store: &mut KeyspaceStore,
        stats: &mut ServerStats,
        conn: &mut Conn<T>,
    ) -> Result<usize, SimError> {
        // 1. Retry replies a previous poll could not send.
        Self::flush_replies(stats, conn)?;

        // 2. Drain every arrived message into the receive buffer.
        loop {
            match conn.transport.try_recv() {
                Ok(msg) => conn.rx.extend_from_slice(&msg),
                Err(SimError::WouldBlock) => break,
                Err(e) => return Err(e),
            }
        }

        // 3. Parse-all-complete-frames: answer each frame in the buffer,
        //    not just the first one per message.
        let mut served = 0;
        while conn.tx_pending.len() < TX_HIGH_WATER {
            match Command::parse_frame(&conn.rx[conn.rx_pos..]) {
                Ok(Some((cmd, consumed))) => {
                    conn.rx_pos += consumed;
                    let reply = store.execute(node, cmd);
                    conn.tx_pending.extend_from_slice(&reply.encode());
                    stats.frames += 1;
                    served += 1;
                }
                Ok(None) => break, // partial tail: wait for the next message
                Err(e) => {
                    // Frame boundary lost: answer with an error and drop
                    // the rest of the stream (see module docs).
                    conn.tx_pending
                        .extend_from_slice(&Reply::Error(format!("ERR {e}")).encode());
                    stats.protocol_errors += 1;
                    served += 1;
                    conn.rx.clear();
                    conn.rx_pos = 0;
                    break;
                }
            }
        }
        if conn.rx_pos > 0 {
            conn.rx.drain(..conn.rx_pos);
            conn.rx_pos = 0;
        }

        // 4. Batched reply write (one message per chunk, not per frame).
        Self::flush_replies(stats, conn)?;
        Ok(served)
    }

    /// Push pending reply bytes to the transport in [`REPLY_CHUNK_BYTES`]
    /// messages until drained or the transport pushes back.
    fn flush_replies(stats: &mut ServerStats, conn: &mut Conn<T>) -> Result<(), SimError> {
        while !conn.tx_pending.is_empty() {
            let chunk = conn.tx_pending.len().min(REPLY_CHUNK_BYTES);
            match conn.transport.send(&conn.tx_pending[..chunk]) {
                Ok(()) => {
                    conn.tx_pending.drain(..chunk);
                    stats.reply_batches += 1;
                }
                Err(SimError::WouldBlock) => {
                    stats.backpressure += 1;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Event-loop counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Reply bytes parked behind transport backpressure, all connections.
    pub fn pending_reply_bytes(&self) -> usize {
        self.conns.iter().map(|c| c.tx_pending.len()).sum()
    }

    /// The backing keyspace (inspection).
    pub fn store(&self) -> &KeyspaceStore {
        &self.store
    }

    /// The node running the server.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RedisClient;
    use flacdk::alloc::GlobalAllocator;
    use flacos_ipc::channel::FlacChannel;
    use rack_sim::{Rack, RackConfig};

    fn pair(
        rack: &Rack,
    ) -> (
        flacos_ipc::channel::FlacEndpoint,
        flacos_ipc::channel::FlacEndpoint,
    ) {
        let alloc = GlobalAllocator::new(rack.global().clone());
        FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap()
    }

    #[test]
    fn serves_requests_and_reports_errors() {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let (server_ep, client_ep) = pair(&rack);
        let mut server = RedisServer::new(rack.node(0), server_ep);
        let mut client = RedisClient::new(rack.node(1), client_ep);

        client
            .send_command(&Command::Set {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            })
            .unwrap();
        client.transport_mut().send(b"garbage request").unwrap();
        assert_eq!(server.poll().unwrap(), 2);
        assert_eq!(client.recv_reply().unwrap(), Reply::Simple("OK".into()));
        assert!(matches!(client.recv_reply().unwrap(), Reply::Error(_)));
        assert_eq!(server.served(), 2);
        assert_eq!(server.store().len(), 1);
        assert_eq!(server.stats().protocol_errors, 1);
    }

    #[test]
    fn pipelined_commands_in_one_message_are_all_served() {
        // Regression: the old poll() threw away the consumed offset and
        // silently served only the first command per message.
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let (server_ep, client_ep) = pair(&rack);
        let mut server = RedisServer::new(rack.node(0), server_ep);
        let mut client = RedisClient::new(rack.node(1), client_ep);

        client
            .send_pipelined(&[
                Command::Set {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                Command::Incr { key: b"n".to_vec() },
                Command::Get { key: b"a".to_vec() },
            ])
            .unwrap();
        assert_eq!(server.poll().unwrap(), 3);
        assert_eq!(client.recv_reply().unwrap(), Reply::Simple("OK".into()));
        assert_eq!(client.recv_reply().unwrap(), Reply::Integer(1));
        assert_eq!(client.recv_reply().unwrap(), Reply::Bulk(b"1".to_vec()));
        assert_eq!(server.served(), 3);
        // All three replies travelled in one batched message.
        assert_eq!(server.stats().reply_batches, 1);
    }

    #[test]
    fn frame_split_across_messages_is_reassembled() {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let (server_ep, client_ep) = pair(&rack);
        let mut server = RedisServer::new(rack.node(0), server_ep);
        let mut client = RedisClient::new(rack.node(1), client_ep);

        let wire = Command::Set {
            key: b"split".to_vec(),
            value: vec![7u8; 100],
        }
        .encode();
        let (head, tail) = wire.split_at(wire.len() / 2);
        client.transport_mut().send(head).unwrap();
        assert_eq!(server.poll().unwrap(), 0, "half a frame is not a request");
        client.transport_mut().send(tail).unwrap();
        assert_eq!(server.poll().unwrap(), 1);
        assert_eq!(client.recv_reply().unwrap(), Reply::Simple("OK".into()));
    }

    #[test]
    fn trailing_garbage_after_valid_command_is_rejected() {
        // Regression: trailing bytes after a valid frame used to be
        // silently accepted; now they are answered with a RESP error.
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let (server_ep, client_ep) = pair(&rack);
        let mut server = RedisServer::new(rack.node(0), server_ep);
        let mut client = RedisClient::new(rack.node(1), client_ep);

        let mut wire = Command::Ping.encode();
        wire.extend_from_slice(b"!!!trailing junk");
        client.transport_mut().send(&wire).unwrap();
        assert_eq!(server.poll().unwrap(), 2, "PONG plus one error reply");
        assert_eq!(client.recv_reply().unwrap(), Reply::Simple("PONG".into()));
        assert!(matches!(client.recv_reply().unwrap(), Reply::Error(_)));
    }

    #[test]
    fn multiple_connections_are_multiplexed() {
        let rack = Rack::new(RackConfig::n_node(3).with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (sep1, cep1) =
            FlacChannel::create(rack.global(), alloc.clone(), rack.node(0), rack.node(1)).unwrap();
        let (sep2, cep2) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(2)).unwrap();
        let mut server = RedisServer::with_connections(rack.node(0), vec![sep1, sep2]);
        assert_eq!(server.connection_count(), 2);
        let mut c1 = RedisClient::new(rack.node(1), cep1);
        let mut c2 = RedisClient::new(rack.node(2), cep2);

        c1.send_command(&Command::Set {
            key: b"from1".to_vec(),
            value: b"x".to_vec(),
        })
        .unwrap();
        c2.send_command(&Command::Set {
            key: b"from2".to_vec(),
            value: b"y".to_vec(),
        })
        .unwrap();
        assert_eq!(server.poll().unwrap(), 2);
        assert_eq!(c1.recv_reply().unwrap(), Reply::Simple("OK".into()));
        assert_eq!(c2.recv_reply().unwrap(), Reply::Simple("OK".into()));
        assert_eq!(server.store().len(), 2);
    }
}
