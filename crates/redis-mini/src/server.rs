//! The redis-mini server loop.

use crate::resp::{Command, Reply};
use crate::store::KeyspaceStore;
use crate::transport::Transport;
use rack_sim::{NodeCtx, SimError};
use std::sync::Arc;

/// A single-threaded redis-mini server bound to one transport endpoint.
#[derive(Debug)]
pub struct RedisServer<T: Transport> {
    node: Arc<NodeCtx>,
    transport: T,
    store: KeyspaceStore,
    served: u64,
}

impl<T: Transport> RedisServer<T> {
    /// Serve on `transport` from `node`.
    pub fn new(node: Arc<NodeCtx>, transport: T) -> Self {
        RedisServer {
            node,
            transport,
            store: KeyspaceStore::new(),
            served: 0,
        }
    }

    /// Drain pending requests: parse, execute, reply. Returns the number
    /// of requests served this poll.
    ///
    /// # Errors
    ///
    /// Transport failures are propagated; malformed requests are
    /// answered with a RESP error instead of failing the server.
    pub fn poll(&mut self) -> Result<usize, SimError> {
        let mut served = 0;
        loop {
            let request = match self.transport.try_recv() {
                Ok(r) => r,
                Err(SimError::WouldBlock) => break,
                Err(e) => return Err(e),
            };
            let reply = match Command::parse(&request) {
                Ok((cmd, _)) => self.store.execute(&self.node, cmd),
                Err(e) => Reply::Error(format!("ERR {e}")),
            };
            self.transport.send(&reply.encode())?;
            served += 1;
            self.served += 1;
        }
        Ok(served)
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The backing keyspace (inspection).
    pub fn store(&self) -> &KeyspaceStore {
        &self.store
    }

    /// The node running the server.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RedisClient;
    use flacdk::alloc::GlobalAllocator;
    use flacos_ipc::channel::FlacChannel;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn serves_requests_and_reports_errors() {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (server_ep, client_ep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let mut server = RedisServer::new(rack.node(0), server_ep);
        let mut client = RedisClient::new(rack.node(1), client_ep);

        client
            .send_command(&Command::Set {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            })
            .unwrap();
        client.transport_mut().send(b"garbage request").unwrap();
        assert_eq!(server.poll().unwrap(), 2);
        assert_eq!(client.recv_reply().unwrap(), Reply::Simple("OK".into()));
        assert!(matches!(client.recv_reply().unwrap(), Reply::Error(_)));
        assert_eq!(server.served(), 2);
        assert_eq!(server.store().len(), 1);
    }
}
