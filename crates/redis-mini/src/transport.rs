//! Transport abstraction: the axis Figure 4 varies.
//!
//! The same server and client run over either implementation:
//!
//! * [`flacos_ipc::channel::FlacEndpoint`] — FlacOS zero-copy IPC over
//!   shared memory.
//! * [`flacos_ipc::netstack::NetEndpoint`] — the TCP/IP-over-Ethernet
//!   baseline with its buffer allocations, copies, and stack processing.
//!
//! Messages are *byte containers*, not frame boundaries: RESP frames may
//! be packed many-per-message (pipelining, batched replies) or split
//! across messages. Both server and client therefore accumulate message
//! bytes in per-connection buffers and re-frame with the RESP parsers'
//! `parse_frame` offset contract. Backpressure is uniform: a full
//! transport returns [`SimError::WouldBlock`] from `send`, and callers
//! are expected to retry the same bytes later.

use rack_sim::SimError;

/// A connected, message-oriented, bidirectional transport.
pub trait Transport {
    /// Send one message.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when the transport is temporarily full
    /// (backpressure — the caller retries the same payload later);
    /// other transport-specific failures (dead peer, severed link) are
    /// permanent.
    fn send(&mut self, payload: &[u8]) -> Result<(), SimError>;

    /// Receive one message if available.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when nothing has arrived.
    fn try_recv(&mut self) -> Result<Vec<u8>, SimError>;

    /// Short label for reports ("flacos-ipc", "tcp/ip").
    fn label(&self) -> &'static str;
}

impl Transport for flacos_ipc::channel::FlacEndpoint {
    fn send(&mut self, payload: &[u8]) -> Result<(), SimError> {
        flacos_ipc::channel::FlacEndpoint::send(self, payload)
    }

    fn try_recv(&mut self) -> Result<Vec<u8>, SimError> {
        flacos_ipc::channel::FlacEndpoint::try_recv(self)
    }

    fn label(&self) -> &'static str {
        "flacos-ipc"
    }
}

impl Transport for flacos_ipc::netstack::NetEndpoint {
    fn send(&mut self, payload: &[u8]) -> Result<(), SimError> {
        flacos_ipc::netstack::NetEndpoint::send(self, payload)
    }

    fn try_recv(&mut self) -> Result<Vec<u8>, SimError> {
        flacos_ipc::netstack::NetEndpoint::try_recv(self)
    }

    fn label(&self) -> &'static str {
        "tcp/ip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacos_ipc::channel::FlacChannel;
    use flacos_ipc::netstack::{NetConfig, NetPair};
    use rack_sim::{Rack, RackConfig};

    fn roundtrip<T: Transport>(a: &mut T, b: &mut T) {
        a.send(b"hello").unwrap();
        assert_eq!(b.try_recv().unwrap(), b"hello");
        b.send(b"world").unwrap();
        assert_eq!(a.try_recv().unwrap(), b"world");
    }

    #[test]
    fn both_transports_satisfy_the_contract() {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (mut fa, mut fb) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        roundtrip(&mut fa, &mut fb);
        assert_eq!(Transport::label(&fa), "flacos-ipc");

        let (mut na, mut nb) =
            NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
        roundtrip(&mut na, &mut nb);
        assert_eq!(Transport::label(&na), "tcp/ip");
    }
}
