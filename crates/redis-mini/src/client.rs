//! The redis-mini client, with latency measurement hooks.

use crate::resp::{Command, Reply, RespError};
use crate::server::RedisServer;
use crate::transport::Transport;
use rack_sim::{NodeCtx, SimError};
use std::sync::Arc;

/// A blocking-style client over any [`Transport`].
#[derive(Debug)]
pub struct RedisClient<T: Transport> {
    node: Arc<NodeCtx>,
    transport: T,
}

impl<T: Transport> RedisClient<T> {
    /// A client on `node` over `transport`.
    pub fn new(node: Arc<NodeCtx>, transport: T) -> Self {
        RedisClient { node, transport }
    }

    /// The node running the client.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Raw transport access (tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Encode and send one command.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send_command(&mut self, cmd: &Command) -> Result<(), SimError> {
        self.transport.send(&cmd.encode())
    }

    /// Receive and parse one reply (non-blocking).
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if nothing arrived; parse failures are
    /// protocol errors.
    pub fn recv_reply(&mut self) -> Result<Reply, SimError> {
        let bytes = self.transport.try_recv()?;
        let (reply, _) = Reply::parse(&bytes)
            .map_err(|e: RespError| SimError::Protocol(format!("bad reply from server: {e}")))?;
        Ok(reply)
    }
}

/// One measured request in a cooperative simulation: send the command,
/// step the server, collect the reply. Returns the reply and the
/// client-observed latency in simulated nanoseconds — the quantity
/// Figure 4 plots.
///
/// # Errors
///
/// Propagates transport/server errors; [`SimError::WouldBlock`] if the
/// server produced no reply.
pub fn request_stepped<T: Transport>(
    client: &mut RedisClient<T>,
    server: &mut RedisServer<T>,
    cmd: &Command,
) -> Result<(Reply, u64), SimError> {
    let start = client.node().clock().now();
    client.send_command(cmd)?;
    // The server cannot start before the request is visible to it.
    server
        .node()
        .clock()
        .advance_to(client.node().clock().now());
    server.poll()?;
    let reply = client.recv_reply()?;
    // Symmetrically, the reply is not visible before the server sent it
    // (ring/netstack timestamps enforce most of this; advance_to covers
    // the cooperative scheduling gap).
    client
        .node()
        .clock()
        .advance_to(server.node().clock().now());
    let latency = client.node().clock().now() - start;
    Ok((reply, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacos_ipc::channel::FlacChannel;
    use flacos_ipc::netstack::{NetConfig, NetPair};
    use rack_sim::{Rack, RackConfig};

    fn rack() -> Rack {
        Rack::new(RackConfig::small_test().with_global_mem(32 << 20))
    }

    #[test]
    fn set_get_roundtrip_over_ipc() {
        let rack = rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (sep, cep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);

        let (reply, lat_set) = request_stepped(
            &mut client,
            &mut server,
            &Command::Set {
                key: b"city".to_vec(),
                value: b"boston".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Simple("OK".into()));
        assert!(lat_set > 0);

        let (reply, lat_get) = request_stepped(
            &mut client,
            &mut server,
            &Command::Get {
                key: b"city".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Bulk(b"boston".to_vec()));
        assert!(lat_get > 0);
    }

    #[test]
    fn set_get_roundtrip_over_netstack() {
        let rack = rack();
        let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);
        let (reply, _) = request_stepped(
            &mut client,
            &mut server,
            &Command::Set {
                key: b"k".to_vec(),
                value: vec![9u8; 4096],
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Simple("OK".into()));
        let (reply, _) = request_stepped(
            &mut client,
            &mut server,
            &Command::Get { key: b"k".to_vec() },
        )
        .unwrap();
        assert_eq!(reply, Reply::Bulk(vec![9u8; 4096]));
    }

    #[test]
    fn ipc_beats_netstack_on_latency() {
        // The headline comparison, in miniature: the same SET over both
        // transports; FlacOS IPC must be faster.
        let rack = rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (sep, cep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let mut ipc_server = RedisServer::new(rack.node(0), sep);
        let mut ipc_client = RedisClient::new(rack.node(1), cep);

        let rack2 = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let (nsep, ncep) = NetPair::connect(rack2.node(0), rack2.node(1), NetConfig::ten_gbe(), 0);
        let mut net_server = RedisServer::new(rack2.node(0), nsep);
        let mut net_client = RedisClient::new(rack2.node(1), ncep);

        let cmd = Command::Set {
            key: b"x".to_vec(),
            value: vec![1u8; 64],
        };
        let (_, ipc_lat) = request_stepped(&mut ipc_client, &mut ipc_server, &cmd).unwrap();
        let (_, net_lat) = request_stepped(&mut net_client, &mut net_server, &cmd).unwrap();
        assert!(
            ipc_lat < net_lat,
            "FlacOS IPC ({ipc_lat} ns) must beat TCP/IP ({net_lat} ns)"
        );
    }
}
