//! The redis-mini client, with latency measurement hooks.

use crate::resp::{Command, Reply};
use crate::server::RedisServer;
use crate::transport::Transport;
use rack_sim::{NodeCtx, SimError};
use std::sync::Arc;

/// A blocking-style client over any [`Transport`].
///
/// Replies are consumed from a receive buffer by frame offset, so a
/// server that batches many replies into one transport message (the
/// event loop's normal behaviour), or splits one reply across messages,
/// parses correctly: each [`RedisClient::recv_reply`] call yields
/// exactly the next reply frame.
#[derive(Debug)]
pub struct RedisClient<T: Transport> {
    node: Arc<NodeCtx>,
    transport: T,
    /// Reply bytes received but not yet consumed.
    rx_buf: Vec<u8>,
    /// Consumed-frame offset into `rx_buf`.
    rx_pos: usize,
}

impl<T: Transport> RedisClient<T> {
    /// A client on `node` over `transport`.
    pub fn new(node: Arc<NodeCtx>, transport: T) -> Self {
        RedisClient {
            node,
            transport,
            rx_buf: Vec::new(),
            rx_pos: 0,
        }
    }

    /// The node running the client.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Raw transport access (tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Encode and send one command.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send_command(&mut self, cmd: &Command) -> Result<(), SimError> {
        self.transport.send(&cmd.encode())
    }

    /// Encode `cmds` back-to-back into one transport message — RESP
    /// pipelining. The server answers every frame; collect the replies
    /// with one [`RedisClient::recv_reply`] call per command, in order.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; sends nothing for an empty slice.
    pub fn send_pipelined(&mut self, cmds: &[Command]) -> Result<(), SimError> {
        if cmds.is_empty() {
            return Ok(());
        }
        let mut msg = Vec::new();
        for cmd in cmds {
            msg.extend_from_slice(&cmd.encode());
        }
        self.transport.send(&msg)
    }

    /// Receive and parse the next reply (non-blocking): consume a
    /// buffered frame if one is complete, otherwise pull more transport
    /// messages until a frame completes or the transport would block.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if no complete reply is available (any
    /// partial frame stays buffered); parse failures are protocol errors.
    pub fn recv_reply(&mut self) -> Result<Reply, SimError> {
        loop {
            match Reply::parse_frame(&self.rx_buf[self.rx_pos..]) {
                Ok(Some((reply, consumed))) => {
                    self.rx_pos += consumed;
                    if self.rx_pos == self.rx_buf.len() {
                        self.rx_buf.clear();
                        self.rx_pos = 0;
                    }
                    return Ok(reply);
                }
                Ok(None) => {}
                Err(e) => {
                    // A desynced reply stream cannot be re-framed.
                    self.rx_buf.clear();
                    self.rx_pos = 0;
                    return Err(SimError::Protocol(format!("bad reply from server: {e}")));
                }
            }
            if self.rx_pos > 0 {
                self.rx_buf.drain(..self.rx_pos);
                self.rx_pos = 0;
            }
            let bytes = self.transport.try_recv()?;
            self.rx_buf.extend_from_slice(&bytes);
        }
    }

    /// Reply bytes buffered but not yet consumed (tests/diagnostics).
    pub fn buffered_reply_bytes(&self) -> usize {
        self.rx_buf.len() - self.rx_pos
    }
}

/// One measured request in a cooperative simulation: send the command,
/// step the server, collect the reply. Returns the reply and the
/// client-observed latency in simulated nanoseconds — the quantity
/// Figure 4 plots.
///
/// # Errors
///
/// Propagates transport/server errors; [`SimError::WouldBlock`] if the
/// server produced no reply.
pub fn request_stepped<T: Transport>(
    client: &mut RedisClient<T>,
    server: &mut RedisServer<T>,
    cmd: &Command,
) -> Result<(Reply, u64), SimError> {
    let start = client.node().clock().now();
    client.send_command(cmd)?;
    // The server cannot start before the request is visible to it.
    server
        .node()
        .clock()
        .advance_to(client.node().clock().now());
    server.poll()?;
    let reply = client.recv_reply()?;
    // Symmetrically, the reply is not visible before the server sent it
    // (ring/netstack timestamps enforce most of this; advance_to covers
    // the cooperative scheduling gap).
    client
        .node()
        .clock()
        .advance_to(server.node().clock().now());
    let latency = client.node().clock().now() - start;
    Ok((reply, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacos_ipc::channel::FlacChannel;
    use flacos_ipc::netstack::{NetConfig, NetPair};
    use rack_sim::{Rack, RackConfig};

    fn rack() -> Rack {
        Rack::new(RackConfig::small_test().with_global_mem(32 << 20))
    }

    #[test]
    fn batched_and_split_replies_consumed_by_offset() {
        // Regression: recv_reply used to parse one reply per transport
        // message and silently drop the rest of a batch.
        let rack = rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (mut sep, cep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let mut client = RedisClient::new(rack.node(1), cep);

        // One message carrying three replies...
        let mut batch = Vec::new();
        batch.extend_from_slice(&Reply::Simple("OK".into()).encode());
        batch.extend_from_slice(&Reply::Integer(42).encode());
        batch.extend_from_slice(&Reply::Bulk(b"abc".to_vec()).encode());
        sep.send(&batch).unwrap();
        assert_eq!(client.recv_reply().unwrap(), Reply::Simple("OK".into()));
        assert_eq!(client.recv_reply().unwrap(), Reply::Integer(42));
        assert_eq!(client.recv_reply().unwrap(), Reply::Bulk(b"abc".to_vec()));
        assert!(matches!(client.recv_reply(), Err(SimError::WouldBlock)));

        // ...and one reply split across two messages.
        let wire = Reply::Bulk(vec![9u8; 200]).encode();
        let (head, tail) = wire.split_at(50);
        sep.send(head).unwrap();
        assert!(matches!(client.recv_reply(), Err(SimError::WouldBlock)));
        assert_eq!(client.buffered_reply_bytes(), 50);
        sep.send(tail).unwrap();
        assert_eq!(client.recv_reply().unwrap(), Reply::Bulk(vec![9u8; 200]));
        assert_eq!(client.buffered_reply_bytes(), 0);
    }

    #[test]
    fn set_get_roundtrip_over_ipc() {
        let rack = rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (sep, cep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);

        let (reply, lat_set) = request_stepped(
            &mut client,
            &mut server,
            &Command::Set {
                key: b"city".to_vec(),
                value: b"boston".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Simple("OK".into()));
        assert!(lat_set > 0);

        let (reply, lat_get) = request_stepped(
            &mut client,
            &mut server,
            &Command::Get {
                key: b"city".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Bulk(b"boston".to_vec()));
        assert!(lat_get > 0);
    }

    #[test]
    fn set_get_roundtrip_over_netstack() {
        let rack = rack();
        let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);
        let (reply, _) = request_stepped(
            &mut client,
            &mut server,
            &Command::Set {
                key: b"k".to_vec(),
                value: vec![9u8; 4096],
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Simple("OK".into()));
        let (reply, _) = request_stepped(
            &mut client,
            &mut server,
            &Command::Get { key: b"k".to_vec() },
        )
        .unwrap();
        assert_eq!(reply, Reply::Bulk(vec![9u8; 4096]));
    }

    #[test]
    fn ipc_beats_netstack_on_latency() {
        // The headline comparison, in miniature: the same SET over both
        // transports; FlacOS IPC must be faster.
        let rack = rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let (sep, cep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
        let mut ipc_server = RedisServer::new(rack.node(0), sep);
        let mut ipc_client = RedisClient::new(rack.node(1), cep);

        let rack2 = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let (nsep, ncep) = NetPair::connect(rack2.node(0), rack2.node(1), NetConfig::ten_gbe(), 0);
        let mut net_server = RedisServer::new(rack2.node(0), nsep);
        let mut net_client = RedisClient::new(rack2.node(1), ncep);

        let cmd = Command::Set {
            key: b"x".to_vec(),
            value: vec![1u8; 64],
        };
        let (_, ipc_lat) = request_stepped(&mut ipc_client, &mut ipc_server, &cmd).unwrap();
        let (_, net_lat) = request_stepped(&mut net_client, &mut net_server, &cmd).unwrap();
        assert!(
            ipc_lat < net_lat,
            "FlacOS IPC ({ipc_lat} ns) must beat TCP/IP ({net_lat} ns)"
        );
    }
}
