//! RESP2 (REdis Serialization Protocol) encoding and parsing.
//!
//! Supports the subset the evaluation exercises — command arrays of bulk
//! strings (`SET`, `GET`, `DEL`, `INCR`, `EXISTS`, `APPEND`, `PING`) and the reply types they
//! produce (simple strings, errors, integers, bulk and null-bulk
//! strings) — with the exact wire framing real Redis uses, so the
//! request bytes on the wire match what the paper's testbed shipped.

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `SET key value`
    Set {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// `GET key`
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `DEL key`
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `INCR key` — increment an integer value (missing key counts as 0).
    Incr {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `EXISTS key`
    Exists {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `APPEND key value` — append to the value, returning the new length.
    Append {
        /// Key bytes.
        key: Vec<u8>,
        /// Bytes to append.
        value: Vec<u8>,
    },
    /// `PING`
    Ping,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK\r\n`-style simple string.
    Simple(String),
    /// `-ERR ...` error string.
    Error(String),
    /// `:N` integer.
    Integer(i64),
    /// `$N` bulk string.
    Bulk(Vec<u8>),
    /// `$-1` null bulk (missing key).
    Null,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespError(pub String);

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RESP parse error: {}", self.0)
    }
}

impl std::error::Error for RespError {}

impl Command {
    /// Encode as a RESP array of bulk strings.
    pub fn encode(&self) -> Vec<u8> {
        let parts: Vec<&[u8]> = match self {
            Command::Set { key, value } => vec![b"SET", key, value],
            Command::Get { key } => vec![b"GET", key],
            Command::Del { key } => vec![b"DEL", key],
            Command::Incr { key } => vec![b"INCR", key],
            Command::Exists { key } => vec![b"EXISTS", key],
            Command::Append { key, value } => vec![b"APPEND", key, value],
            Command::Ping => vec![b"PING"],
        };
        let mut out = format!("*{}\r\n", parts.len()).into_bytes();
        for p in parts {
            out.extend_from_slice(format!("${}\r\n", p.len()).as_bytes());
            out.extend_from_slice(p);
            out.extend_from_slice(b"\r\n");
        }
        out
    }

    /// Parse one command from `buf`, returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`RespError`] on malformed or unsupported input.
    pub fn parse(buf: &[u8]) -> Result<(Command, usize), RespError> {
        let (argc, mut pos) = read_prefixed(buf, 0, b'*')?;
        let argc = argc as usize;
        if argc == 0 || argc > 16 {
            return Err(RespError(format!("implausible argc {argc}")));
        }
        let mut args: Vec<Vec<u8>> = Vec::with_capacity(argc);
        for _ in 0..argc {
            let (len, data_start) = read_prefixed(buf, pos, b'$')?;
            let len = len as usize;
            if buf.len() < data_start + len + 2 {
                return Err(RespError("truncated bulk string".into()));
            }
            args.push(buf[data_start..data_start + len].to_vec());
            if &buf[data_start + len..data_start + len + 2] != b"\r\n" {
                return Err(RespError("bulk string missing terminator".into()));
            }
            pos = data_start + len + 2;
        }
        let name = args[0].to_ascii_uppercase();
        let cmd = match (name.as_slice(), args.len()) {
            (b"SET", 3) => Command::Set {
                key: args[1].clone(),
                value: args[2].clone(),
            },
            (b"GET", 2) => Command::Get {
                key: args[1].clone(),
            },
            (b"DEL", 2) => Command::Del {
                key: args[1].clone(),
            },
            (b"INCR", 2) => Command::Incr {
                key: args[1].clone(),
            },
            (b"EXISTS", 2) => Command::Exists {
                key: args[1].clone(),
            },
            (b"APPEND", 3) => Command::Append {
                key: args[1].clone(),
                value: args[2].clone(),
            },
            (b"PING", 1) => Command::Ping,
            _ => {
                return Err(RespError(format!(
                    "unsupported command {:?}/{}",
                    String::from_utf8_lossy(&name),
                    args.len()
                )))
            }
        };
        Ok((cmd, pos))
    }
}

impl Reply {
    /// Encode in RESP wire format.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Reply::Simple(s) => format!("+{s}\r\n").into_bytes(),
            Reply::Error(s) => format!("-{s}\r\n").into_bytes(),
            Reply::Integer(n) => format!(":{n}\r\n").into_bytes(),
            Reply::Bulk(b) => {
                let mut out = format!("${}\r\n", b.len()).into_bytes();
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
                out
            }
            Reply::Null => b"$-1\r\n".to_vec(),
        }
    }

    /// Parse one reply, returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`RespError`] on malformed input.
    pub fn parse(buf: &[u8]) -> Result<(Reply, usize), RespError> {
        let first = *buf.first().ok_or_else(|| RespError("empty reply".into()))?;
        match first {
            b'+' | b'-' => {
                let end = find_crlf(buf, 1)?;
                let s = String::from_utf8_lossy(&buf[1..end]).into_owned();
                let reply = if first == b'+' {
                    Reply::Simple(s)
                } else {
                    Reply::Error(s)
                };
                Ok((reply, end + 2))
            }
            b':' => {
                let end = find_crlf(buf, 1)?;
                let n: i64 = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError("bad integer".into()))?;
                Ok((Reply::Integer(n), end + 2))
            }
            b'$' => {
                let end = find_crlf(buf, 1)?;
                let n: i64 = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError("bad bulk length".into()))?;
                if n < 0 {
                    return Ok((Reply::Null, end + 2));
                }
                let len = n as usize;
                let data_start = end + 2;
                if buf.len() < data_start + len + 2 {
                    return Err(RespError("truncated bulk reply".into()));
                }
                Ok((
                    Reply::Bulk(buf[data_start..data_start + len].to_vec()),
                    data_start + len + 2,
                ))
            }
            c => Err(RespError(format!("unknown reply type byte {c:#x}"))),
        }
    }
}

/// Read `<marker><number>\r\n` at `pos`; returns (number, index past \r\n).
fn read_prefixed(buf: &[u8], pos: usize, marker: u8) -> Result<(i64, usize), RespError> {
    if buf.get(pos) != Some(&marker) {
        return Err(RespError(format!(
            "expected {:?} at offset {pos}",
            marker as char
        )));
    }
    let end = find_crlf(buf, pos + 1)?;
    let n: i64 = std::str::from_utf8(&buf[pos + 1..end])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RespError("bad length prefix".into()))?;
    Ok((n, end + 2))
}

fn find_crlf(buf: &[u8], from: usize) -> Result<usize, RespError> {
    buf[from..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|i| from + i)
        .ok_or_else(|| RespError("missing CRLF".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_wire_format_matches_redis() {
        let cmd = Command::Set {
            key: b"k".to_vec(),
            value: b"v1".to_vec(),
        };
        assert_eq!(cmd.encode(), b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nv1\r\n");
        assert_eq!(
            Command::Get { key: b"k".to_vec() }.encode(),
            b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
        );
        assert_eq!(Command::Ping.encode(), b"*1\r\n$4\r\nPING\r\n");
    }

    #[test]
    fn command_roundtrip_all_variants() {
        let cmds = [
            Command::Set {
                key: b"key".to_vec(),
                value: vec![0u8; 4096],
            },
            Command::Get {
                key: b"key".to_vec(),
            },
            Command::Del {
                key: b"key".to_vec(),
            },
            Command::Incr {
                key: b"counter".to_vec(),
            },
            Command::Exists {
                key: b"key".to_vec(),
            },
            Command::Append {
                key: b"log".to_vec(),
                value: b"entry".to_vec(),
            },
            Command::Ping,
        ];
        for cmd in cmds {
            let wire = cmd.encode();
            let (parsed, consumed) = Command::parse(&wire).unwrap();
            assert_eq!(parsed, cmd);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn lowercase_commands_accepted() {
        let wire = b"*2\r\n$3\r\nget\r\n$1\r\nx\r\n";
        let (cmd, _) = Command::parse(wire).unwrap();
        assert_eq!(cmd, Command::Get { key: b"x".to_vec() });
    }

    #[test]
    fn reply_roundtrip_all_variants() {
        let replies = [
            Reply::Simple("OK".into()),
            Reply::Error("ERR no such key".into()),
            Reply::Integer(-7),
            Reply::Bulk(b"binary\x00data".to_vec()),
            Reply::Null,
        ];
        for r in replies {
            let wire = r.encode();
            let (parsed, consumed) = Reply::parse(&wire).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Command::parse(b"").is_err());
        assert!(Command::parse(b"*1\r\n$4\r\nPI").is_err(), "truncated");
        assert!(
            Command::parse(b"*2\r\n$4\r\nQUUX\r\n$1\r\nx\r\n").is_err(),
            "unsupported"
        );
        assert!(
            Command::parse(b"*1\r\n$4\r\nPINGxx").is_err(),
            "bad terminator"
        );
        assert!(Reply::parse(b"").is_err());
        assert!(Reply::parse(b"?what\r\n").is_err());
        assert!(Reply::parse(b"$5\r\nab").is_err(), "truncated bulk");
    }

    #[test]
    fn binary_safe_values() {
        let value: Vec<u8> = (0..=255).collect();
        let cmd = Command::Set {
            key: b"bin".to_vec(),
            value: value.clone(),
        };
        let (parsed, _) = Command::parse(&cmd.encode()).unwrap();
        let Command::Set { value: got, .. } = parsed else {
            panic!("set")
        };
        assert_eq!(got, value);
    }
}
