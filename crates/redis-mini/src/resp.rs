//! RESP2 (REdis Serialization Protocol) encoding and parsing.
//!
//! Supports the subset the evaluation exercises — command arrays of bulk
//! strings (`SET`, `GET`, `DEL`, `INCR`, `EXISTS`, `APPEND`, `PING`) and the reply types they
//! produce (simple strings, errors, integers, bulk and null-bulk
//! strings) — with the exact wire framing real Redis uses, so the
//! request bytes on the wire match what the paper's testbed shipped.

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `SET key value`
    Set {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// `GET key`
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `DEL key`
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `INCR key` — increment an integer value (missing key counts as 0).
    Incr {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `EXISTS key`
    Exists {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `APPEND key value` — append to the value, returning the new length.
    Append {
        /// Key bytes.
        key: Vec<u8>,
        /// Bytes to append.
        value: Vec<u8>,
    },
    /// `PING`
    Ping,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK\r\n`-style simple string.
    Simple(String),
    /// `-ERR ...` error string.
    Error(String),
    /// `:N` integer.
    Integer(i64),
    /// `$N` bulk string.
    Bulk(Vec<u8>),
    /// `$-1` null bulk (missing key).
    Null,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespError(pub String);

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RESP parse error: {}", self.0)
    }
}

impl std::error::Error for RespError {}

/// Largest bulk-string payload the parser accepts (16 MiB, mirroring
/// real Redis's default `proto-max-bulk-len`). Anything larger — in
/// particular hostile lengths like `i64::MAX` that used to overflow the
/// `data_start + len + 2` bounds check — is a hard protocol error, not a
/// "wait for more bytes" condition.
pub const MAX_BULK_LEN: usize = 16 << 20;

/// Largest command arity accepted (the widest supported command is 3).
pub const MAX_ARGC: i64 = 16;

/// Outcome of scanning a length prefix: either a value or a request for
/// more bytes. Malformed prefixes are `RespError`s, never `Incomplete`.
enum Scan {
    Num(i64, usize),
    Incomplete,
}

/// Could `bytes` still grow into a valid `<number>\r\n` run? Used to
/// distinguish a frame truncated mid-prefix (wait for more data) from
/// garbage that will never parse (fail now). A trailing lone `\r` is
/// allowed — the `\n` may still be in flight.
fn plausible_number_prefix(bytes: &[u8]) -> bool {
    let bytes = bytes.strip_suffix(b"\r").unwrap_or(bytes);
    // An i64 is at most 19 digits plus a sign.
    bytes.len() <= 20
        && bytes
            .iter()
            .enumerate()
            .all(|(i, &c)| c.is_ascii_digit() || (i == 0 && c == b'-'))
}

impl Command {
    /// Encode as a RESP array of bulk strings.
    pub fn encode(&self) -> Vec<u8> {
        let parts: Vec<&[u8]> = match self {
            Command::Set { key, value } => vec![b"SET", key, value],
            Command::Get { key } => vec![b"GET", key],
            Command::Del { key } => vec![b"DEL", key],
            Command::Incr { key } => vec![b"INCR", key],
            Command::Exists { key } => vec![b"EXISTS", key],
            Command::Append { key, value } => vec![b"APPEND", key, value],
            Command::Ping => vec![b"PING"],
        };
        let mut out = format!("*{}\r\n", parts.len()).into_bytes();
        for p in parts {
            out.extend_from_slice(format!("${}\r\n", p.len()).as_bytes());
            out.extend_from_slice(p);
            out.extend_from_slice(b"\r\n");
        }
        out
    }

    /// Parse one command from `buf`, returning it and the bytes consumed.
    ///
    /// Incomplete frames are reported as errors; callers that accumulate
    /// bytes and need to wait for the rest of a frame (the server's
    /// pipelined event loop) should use [`Command::parse_frame`] instead.
    ///
    /// # Errors
    ///
    /// [`RespError`] on malformed, truncated, or unsupported input.
    /// Never panics, for any input.
    pub fn parse(buf: &[u8]) -> Result<(Command, usize), RespError> {
        match Self::parse_frame(buf)? {
            Some(parsed) => Ok(parsed),
            None => Err(RespError("incomplete frame".into())),
        }
    }

    /// Scan one command frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((cmd, consumed)))` for a complete frame,
    /// `Ok(None)` when `buf` holds a valid but incomplete prefix (more
    /// bytes are needed), and `Err` for input that can never become a
    /// valid frame. This is the pipelining contract: a receive buffer is
    /// drained by calling this in a loop, advancing by `consumed`, until
    /// `Ok(None)` leaves the partial tail for the next message.
    ///
    /// # Errors
    ///
    /// [`RespError`] on malformed or unsupported input (negative or
    /// oversized lengths, bad terminators, unknown commands).
    pub fn parse_frame(buf: &[u8]) -> Result<Option<(Command, usize)>, RespError> {
        let (argc, mut pos) = match read_prefixed(buf, 0, b'*')? {
            Scan::Num(n, p) => (n, p),
            Scan::Incomplete => return Ok(None),
        };
        if argc <= 0 || argc > MAX_ARGC {
            return Err(RespError(format!("implausible argc {argc}")));
        }
        let argc = argc as usize;
        let mut args: Vec<Vec<u8>> = Vec::with_capacity(argc);
        for _ in 0..argc {
            let (len, data_start) = match read_prefixed(buf, pos, b'$')? {
                Scan::Num(n, p) => (n, p),
                Scan::Incomplete => return Ok(None),
            };
            if len < 0 {
                return Err(RespError(format!("negative bulk length {len}")));
            }
            if len > MAX_BULK_LEN as i64 {
                return Err(RespError(format!(
                    "bulk length {len} exceeds {MAX_BULK_LEN}"
                )));
            }
            let len = len as usize;
            // Cannot overflow: data_start <= buf.len() and len <= 16 MiB.
            let data_end = data_start + len;
            if buf.len() < data_end + 2 {
                return Ok(None);
            }
            if &buf[data_end..data_end + 2] != b"\r\n" {
                return Err(RespError("bulk string missing terminator".into()));
            }
            args.push(buf[data_start..data_end].to_vec());
            pos = data_end + 2;
        }
        let name = args[0].to_ascii_uppercase();
        let cmd = match (name.as_slice(), args.len()) {
            (b"SET", 3) => Command::Set {
                key: args[1].clone(),
                value: args[2].clone(),
            },
            (b"GET", 2) => Command::Get {
                key: args[1].clone(),
            },
            (b"DEL", 2) => Command::Del {
                key: args[1].clone(),
            },
            (b"INCR", 2) => Command::Incr {
                key: args[1].clone(),
            },
            (b"EXISTS", 2) => Command::Exists {
                key: args[1].clone(),
            },
            (b"APPEND", 3) => Command::Append {
                key: args[1].clone(),
                value: args[2].clone(),
            },
            (b"PING", 1) => Command::Ping,
            _ => {
                return Err(RespError(format!(
                    "unsupported command {:?}/{}",
                    String::from_utf8_lossy(&name),
                    args.len()
                )))
            }
        };
        Ok(Some((cmd, pos)))
    }
}

impl Reply {
    /// Encode in RESP wire format.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Reply::Simple(s) => format!("+{s}\r\n").into_bytes(),
            Reply::Error(s) => format!("-{s}\r\n").into_bytes(),
            Reply::Integer(n) => format!(":{n}\r\n").into_bytes(),
            Reply::Bulk(b) => {
                let mut out = format!("${}\r\n", b.len()).into_bytes();
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
                out
            }
            Reply::Null => b"$-1\r\n".to_vec(),
        }
    }

    /// Parse one reply, returning it and the bytes consumed.
    ///
    /// Incomplete frames are reported as errors; callers that buffer
    /// batched replies should use [`Reply::parse_frame`].
    ///
    /// # Errors
    ///
    /// [`RespError`] on malformed or truncated input. Never panics, for
    /// any input.
    pub fn parse(buf: &[u8]) -> Result<(Reply, usize), RespError> {
        match Self::parse_frame(buf)? {
            Some(parsed) => Ok(parsed),
            None => Err(RespError("incomplete frame".into())),
        }
    }

    /// Scan one reply frame from the front of `buf`: `Ok(Some)` for a
    /// complete frame, `Ok(None)` for a valid-but-incomplete prefix,
    /// `Err` for bytes that can never become a valid reply. The client
    /// consumes batched reply messages by looping on this and advancing
    /// its buffer offset by the consumed count.
    ///
    /// # Errors
    ///
    /// [`RespError`] on malformed input.
    pub fn parse_frame(buf: &[u8]) -> Result<Option<(Reply, usize)>, RespError> {
        let Some(&first) = buf.first() else {
            return Ok(None);
        };
        match first {
            b'+' | b'-' => {
                let Some(end) = find_crlf(buf, 1) else {
                    return Ok(None);
                };
                let s = String::from_utf8_lossy(&buf[1..end]).into_owned();
                let reply = if first == b'+' {
                    Reply::Simple(s)
                } else {
                    Reply::Error(s)
                };
                Ok(Some((reply, end + 2)))
            }
            b':' => {
                let Some(end) = find_crlf(buf, 1) else {
                    return if plausible_number_prefix(&buf[1..]) {
                        Ok(None)
                    } else {
                        Err(RespError("bad integer".into()))
                    };
                };
                let n: i64 = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError("bad integer".into()))?;
                Ok(Some((Reply::Integer(n), end + 2)))
            }
            b'$' => {
                let Some(end) = find_crlf(buf, 1) else {
                    return if plausible_number_prefix(&buf[1..]) {
                        Ok(None)
                    } else {
                        Err(RespError("bad bulk length".into()))
                    };
                };
                let n: i64 = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError("bad bulk length".into()))?;
                if n == -1 {
                    return Ok(Some((Reply::Null, end + 2)));
                }
                if n < 0 {
                    return Err(RespError(format!("negative bulk length {n}")));
                }
                if n > MAX_BULK_LEN as i64 {
                    return Err(RespError(format!("bulk length {n} exceeds {MAX_BULK_LEN}")));
                }
                let len = n as usize;
                let data_start = end + 2;
                // Cannot overflow: data_start <= buf.len(), len <= 16 MiB.
                let data_end = data_start + len;
                if buf.len() < data_end + 2 {
                    return Ok(None);
                }
                if &buf[data_end..data_end + 2] != b"\r\n" {
                    return Err(RespError("bulk reply missing terminator".into()));
                }
                Ok(Some((
                    Reply::Bulk(buf[data_start..data_end].to_vec()),
                    data_end + 2,
                )))
            }
            c => Err(RespError(format!("unknown reply type byte {c:#x}"))),
        }
    }
}

/// Read `<marker><number>\r\n` at `pos`. Distinguishes three cases: a
/// complete prefix (`Scan::Num`), a prefix that may still be completed
/// by more bytes (`Scan::Incomplete` — buffer ends before the marker or
/// mid-number), and garbage that can never parse (`Err`).
fn read_prefixed(buf: &[u8], pos: usize, marker: u8) -> Result<Scan, RespError> {
    match buf.get(pos) {
        None => return Ok(Scan::Incomplete),
        Some(&b) if b != marker => {
            return Err(RespError(format!(
                "expected {:?} at offset {pos}",
                marker as char
            )))
        }
        Some(_) => {}
    }
    let Some(end) = find_crlf(buf, pos + 1) else {
        return if plausible_number_prefix(&buf[pos + 1..]) {
            Ok(Scan::Incomplete)
        } else {
            Err(RespError("bad length prefix".into()))
        };
    };
    let n: i64 = std::str::from_utf8(&buf[pos + 1..end])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RespError("bad length prefix".into()))?;
    Ok(Scan::Num(n, end + 2))
}

fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    if from >= buf.len() {
        return None;
    }
    buf[from..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|i| from + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_wire_format_matches_redis() {
        let cmd = Command::Set {
            key: b"k".to_vec(),
            value: b"v1".to_vec(),
        };
        assert_eq!(cmd.encode(), b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nv1\r\n");
        assert_eq!(
            Command::Get { key: b"k".to_vec() }.encode(),
            b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
        );
        assert_eq!(Command::Ping.encode(), b"*1\r\n$4\r\nPING\r\n");
    }

    #[test]
    fn command_roundtrip_all_variants() {
        let cmds = [
            Command::Set {
                key: b"key".to_vec(),
                value: vec![0u8; 4096],
            },
            Command::Get {
                key: b"key".to_vec(),
            },
            Command::Del {
                key: b"key".to_vec(),
            },
            Command::Incr {
                key: b"counter".to_vec(),
            },
            Command::Exists {
                key: b"key".to_vec(),
            },
            Command::Append {
                key: b"log".to_vec(),
                value: b"entry".to_vec(),
            },
            Command::Ping,
        ];
        for cmd in cmds {
            let wire = cmd.encode();
            let (parsed, consumed) = Command::parse(&wire).unwrap();
            assert_eq!(parsed, cmd);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn lowercase_commands_accepted() {
        let wire = b"*2\r\n$3\r\nget\r\n$1\r\nx\r\n";
        let (cmd, _) = Command::parse(wire).unwrap();
        assert_eq!(cmd, Command::Get { key: b"x".to_vec() });
    }

    #[test]
    fn reply_roundtrip_all_variants() {
        let replies = [
            Reply::Simple("OK".into()),
            Reply::Error("ERR no such key".into()),
            Reply::Integer(-7),
            Reply::Bulk(b"binary\x00data".to_vec()),
            Reply::Null,
        ];
        for r in replies {
            let wire = r.encode();
            let (parsed, consumed) = Reply::parse(&wire).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Command::parse(b"").is_err());
        assert!(Command::parse(b"*1\r\n$4\r\nPI").is_err(), "truncated");
        assert!(
            Command::parse(b"*2\r\n$4\r\nQUUX\r\n$1\r\nx\r\n").is_err(),
            "unsupported"
        );
        assert!(
            Command::parse(b"*1\r\n$4\r\nPINGxx").is_err(),
            "bad terminator"
        );
        assert!(Reply::parse(b"").is_err());
        assert!(Reply::parse(b"?what\r\n").is_err());
        assert!(Reply::parse(b"$5\r\nab").is_err(), "truncated bulk");
    }

    #[test]
    fn binary_safe_values() {
        let value: Vec<u8> = (0..=255).collect();
        let cmd = Command::Set {
            key: b"bin".to_vec(),
            value: value.clone(),
        };
        let (parsed, _) = Command::parse(&cmd.encode()).unwrap();
        let Command::Set { value: got, .. } = parsed else {
            panic!("set")
        };
        assert_eq!(got, value);
    }
}
