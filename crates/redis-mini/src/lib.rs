//! # redis-mini — the paper's application workload
//!
//! A protocol-faithful miniature Redis: RESP2 wire format ([`resp`]),
//! an in-memory keyspace ([`store`]), and a server/client pair
//! ([`server`], [`client`]) that run over *either* transport the paper
//! compares in Figure 4 — FlacOS zero-copy IPC or the TCP/IP network
//! baseline — via the [`transport::Transport`] abstraction.
//!
//! The evaluation drives SET and GET at two request sizes and measures
//! client-observed latency; see `bench/benches/fig4_redis.rs` and
//! `figures -- fig4`. The heavy-traffic serving benchmark
//! (`flac-loadgen`, `BENCH_serve.json`) drives the same server with an
//! open-loop multi-connection load via the [`server`] event loop's RESP
//! pipelining and batched replies.

pub mod client;
pub mod resp;
pub mod server;
pub mod store;
pub mod transport;

pub use client::RedisClient;
pub use resp::{Command, Reply, RespError};
pub use server::{RedisServer, ServerStats};
pub use store::KeyspaceStore;
pub use transport::Transport;
