//! Per-node local-DRAM tier budgets, shared rack-wide.
//!
//! The promotion budget is the contract between the tiering daemon and
//! the schedulers: each node may hold at most `budget_bytes` of promoted
//! pages in local DRAM, and the remaining headroom is published in
//! global memory (one coherent [`GlobalCell`] per node) so *any* node —
//! in particular `RackScheduler` and the serverless density scheduler —
//! can read how much fast-tier room a peer still has before placing work
//! on it.

use flacdk::hw::GlobalCell;
use rack_sim::{GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Rack-shared per-node free-bytes ledger for the local DRAM tier.
#[derive(Debug, Clone)]
pub struct TierBudget {
    free: Vec<GlobalCell>,
    budget_bytes: u64,
}

impl TierBudget {
    /// Allocate the ledger in global memory with every node's free
    /// balance initialized to `budget_bytes`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        global: &GlobalMemory,
        nodes: usize,
        budget_bytes: u64,
    ) -> Result<Arc<Self>, SimError> {
        let mut free = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            free.push(GlobalCell::alloc(global, budget_bytes)?);
        }
        Ok(Arc::new(TierBudget { free, budget_bytes }))
    }

    /// The per-node budget ceiling in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Number of nodes the ledger tracks.
    pub fn nodes(&self) -> usize {
        self.free.len()
    }

    /// Free local-tier bytes on `node` (coherent read through a fabric
    /// atomic — any node may ask about any other node).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors; unknown nodes report zero headroom.
    pub fn free_bytes(&self, ctx: &NodeCtx, node: NodeId) -> Result<u64, SimError> {
        match self.free.get(node.0) {
            Some(cell) => cell.load(ctx),
            None => Ok(0),
        }
    }

    /// Try to reserve `bytes` of local-tier room on `node`. Returns
    /// `Ok(false)` (without reserving) when the headroom is insufficient.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn charge(&self, ctx: &NodeCtx, node: NodeId, bytes: u64) -> Result<bool, SimError> {
        let Some(cell) = self.free.get(node.0) else {
            return Ok(false);
        };
        let mut cur = cell.load(ctx)?;
        loop {
            if cur < bytes {
                return Ok(false);
            }
            let prev = cell.compare_exchange(ctx, cur, cur - bytes)?;
            if prev == cur {
                return Ok(true);
            }
            cur = prev;
        }
    }

    /// Return `bytes` of local-tier room to `node` (after a demotion or
    /// an aborted promotion).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn credit(&self, ctx: &NodeCtx, node: NodeId, bytes: u64) -> Result<(), SimError> {
        if let Some(cell) = self.free.get(node.0) {
            cell.fetch_add(ctx, bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn charge_and_credit_roundtrip() {
        let rack = Rack::new(RackConfig::small_test());
        let b = TierBudget::alloc(rack.global(), 2, 8192).unwrap();
        let n0 = rack.node(0);
        assert_eq!(b.free_bytes(&n0, NodeId(1)).unwrap(), 8192);
        assert!(b.charge(&n0, NodeId(1), 4096).unwrap());
        assert_eq!(b.free_bytes(&n0, NodeId(1)).unwrap(), 4096);
        assert!(b.charge(&n0, NodeId(1), 4096).unwrap());
        assert!(!b.charge(&n0, NodeId(1), 1).unwrap(), "exhausted");
        b.credit(&n0, NodeId(1), 4096).unwrap();
        assert!(b.charge(&n0, NodeId(1), 4096).unwrap());
        // Node 0's ledger was never touched.
        assert_eq!(b.free_bytes(&n0, NodeId(0)).unwrap(), 8192);
    }

    #[test]
    fn unknown_node_has_no_headroom() {
        let rack = Rack::new(RackConfig::small_test());
        let b = TierBudget::alloc(rack.global(), 2, 4096).unwrap();
        let n0 = rack.node(0);
        assert_eq!(b.free_bytes(&n0, NodeId(9)).unwrap(), 0);
        assert!(!b.charge(&n0, NodeId(9), 1).unwrap());
        b.credit(&n0, NodeId(9), 64).unwrap(); // silently ignored
    }

    #[test]
    fn ledger_is_visible_from_every_node() {
        let rack = Rack::new(RackConfig::small_test());
        let b = TierBudget::alloc(rack.global(), 2, 4096).unwrap();
        assert!(b.charge(&rack.node(0), NodeId(0), 1024).unwrap());
        assert_eq!(b.free_bytes(&rack.node(1), NodeId(0)).unwrap(), 3072);
    }
}
