//! # flacos-tier — rack-wide page tiering (paper §2.1 / §3.3)
//!
//! The paper's performance argument rests on the ~5.5× latency gap
//! between node-local DRAM (~90 ns) and interconnect loads (~500 ns).
//! This crate closes the feedback loop that exploits it: **observe**
//! page traffic through sampled translation telemetry
//! (`flacos_mem::telemetry`), **decide** with an exponential-decay
//! hotness tracker under a per-node local-DRAM budget, and **act** with
//! staged migrations that stay correct under incoherent caches (the
//! `Migrating` PTE guard + rack-wide TLB shootdown) and crash-consistent
//! (the old copy stays authoritative until the final remap).
//!
//! * [`TierDaemon`] — the per-node daemon: drain ring → tier split →
//!   demote/promote under the migration cap.
//! * [`Migration`] — the staged begin/copy/commit/abort protocol.
//! * [`TierBudget`] — the rack-shared per-node free-local-DRAM ledger,
//!   also consulted by the schedulers for tier-aware placement.

pub mod budget;
pub mod daemon;
pub mod migrate;

pub use budget::TierBudget;
pub use daemon::{TierConfig, TierDaemon, TierTickReport};
pub use migrate::{LocalFramePool, Migration};
