//! The staged page-migration engine.
//!
//! Migration under incoherent caches is a three-step protocol in which
//! the **old frame stays authoritative until the final remap**:
//!
//! 1. [`Migration::begin`] — publish the mapping with the `Migrating`
//!    guard bit set. Concurrent accessors observe the bit and retry
//!    ([`SimError::WouldBlock`] from `AddressSpace`,
//!    `FaultResolution::Retry` from the fault handler); nobody can read
//!    the half-copied destination.
//! 2. [`Migration::copy`] — copy the page bytes old → new (coherently:
//!    invalidate-before-read, writeback-after-write).
//! 3. [`Migration::commit`] — atomically remap to the new frame with the
//!    guard cleared, then drive a rack-wide TLB shootdown via the
//!    caller's closure so no stale translation survives.
//!
//! [`Migration::abort`] re-publishes the original mapping from *any*
//! live node, which is exactly the crash-consistency story: if the
//! migrating node dies between steps, the old copy is still authoritative
//! and a survivor aborts the half-done migration without data loss.

use flacos_mem::addr::VirtAddr;
use flacos_mem::{
    huge_base, AddressSpace, PageSize, PhysFrame, Pte, HUGE_PAGE_SIZE, PAGES_PER_HUGE, PAGE_SIZE,
};
use rack_sim::{LAddr, NodeCtx, SimError};
use std::sync::Arc;

/// A page-aligned allocator over one node's local (bump) memory with a
/// free list, so demoted pages recycle their local frames.
#[derive(Debug, Default)]
pub struct LocalFramePool {
    free: Vec<LAddr>,
    region_free: Vec<LAddr>,
}

impl LocalFramePool {
    /// An empty pool (frames are carved from `ctx.local_alloc` on
    /// demand).
    pub fn new() -> Self {
        LocalFramePool::default()
    }

    /// Allocate one page-aligned local frame on `ctx`'s node.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when local memory is exhausted.
    pub fn alloc(&mut self, ctx: &NodeCtx) -> Result<LAddr, SimError> {
        if let Some(f) = self.free.pop() {
            return Ok(f);
        }
        // The local bump allocator aligns to 8; over-allocate and round
        // up to a page boundary.
        let raw = ctx.local_alloc(PAGE_SIZE * 2)?;
        Ok(LAddr((raw.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)))
    }

    /// Return a frame for reuse.
    pub fn free(&mut self, frame: LAddr) {
        self.free.push(frame);
    }

    /// Frames currently recycled and ready.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Allocate one contiguous, page-aligned 2 MiB local span — the
    /// destination of a region promotion.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when local memory is exhausted.
    pub fn alloc_region(&mut self, ctx: &NodeCtx) -> Result<LAddr, SimError> {
        if let Some(f) = self.region_free.pop() {
            return Ok(f);
        }
        let raw = ctx.local_alloc(HUGE_PAGE_SIZE + PAGE_SIZE)?;
        Ok(LAddr((raw.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)))
    }

    /// Return a 2 MiB span for reuse as a region.
    pub fn free_region(&mut self, frame: LAddr) {
        self.region_free.push(frame);
    }

    /// Regions currently recycled and ready.
    pub fn free_regions(&self) -> usize {
        self.region_free.len()
    }
}

/// `frame` advanced by `bytes` (staying in the same memory kind).
fn frame_at(frame: PhysFrame, bytes: u64) -> PhysFrame {
    match frame {
        PhysFrame::Global(a) => PhysFrame::Global(a.offset(bytes)),
        PhysFrame::Local(n, a) => PhysFrame::Local(n, LAddr(a.0 + bytes as usize)),
    }
}

/// One in-flight page migration (either direction between tiers).
#[derive(Debug, Clone)]
pub struct Migration {
    asid: u64,
    vpn: u64,
    old: Pte,
    new_frame: PhysFrame,
    copied: bool,
}

impl Migration {
    /// Stage 1: set the `Migrating` guard on `vpn`'s mapping. The old
    /// frame remains authoritative.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the page is unmapped or already
    /// migrating; fabric errors propagate.
    pub fn begin(
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        vpn: u64,
        new_frame: PhysFrame,
    ) -> Result<Self, SimError> {
        let old = space
            .translate(ctx, VirtAddr::from_vpn(vpn))?
            .ok_or_else(|| SimError::Protocol(format!("cannot migrate unmapped vpn {vpn}")))?;
        if old.migrating {
            return Err(SimError::Protocol(format!(
                "vpn {vpn} is already migrating"
            )));
        }
        space.map(ctx, vpn, old.begin_migration())?;
        Ok(Migration {
            asid: space.asid(),
            vpn,
            old,
            new_frame,
            copied: false,
        })
    }

    /// Stage 2: copy the page bytes from the old frame into the new one.
    ///
    /// # Errors
    ///
    /// Fabric/protocol errors propagate (e.g. a foreign local frame).
    pub fn copy(&mut self, ctx: &NodeCtx, space: &AddressSpace) -> Result<(), SimError> {
        let mut page = vec![0u8; PAGE_SIZE];
        space.read_frame(ctx, self.old.frame, &mut page)?;
        space.write_frame(ctx, self.new_frame, &page)?;
        self.copied = true;
        Ok(())
    }

    /// Stage 3: publish the new mapping (guard cleared) and drive the
    /// rack-wide TLB shootdown through `shoot(asid, vpn)`. Returns the
    /// displaced old PTE so the caller can free or release its frame.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when called before [`Migration::copy`];
    /// fabric errors propagate.
    pub fn commit(
        self,
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        shoot: &mut dyn FnMut(u64, u64) -> Result<(), SimError>,
    ) -> Result<Pte, SimError> {
        if !self.copied {
            return Err(SimError::Protocol(format!(
                "commit of vpn {} before copy",
                self.vpn
            )));
        }
        space.map(ctx, self.vpn, Pte::new(self.new_frame, self.old.writable))?;
        shoot(self.asid, self.vpn)?;
        Ok(self.old)
    }

    /// Roll back: re-publish the original mapping with the guard
    /// cleared. Callable from any live node — the crash-recovery path
    /// when the migrating node died mid-flight.
    ///
    /// # Errors
    ///
    /// Fabric errors propagate.
    pub fn abort(&self, ctx: &Arc<NodeCtx>, space: &AddressSpace) -> Result<(), SimError> {
        space.map(ctx, self.vpn, self.old)?;
        Ok(())
    }

    /// The page being migrated.
    pub fn vpn(&self) -> u64 {
        self.vpn
    }

    /// The authoritative pre-migration mapping.
    pub fn old(&self) -> Pte {
        self.old
    }

    /// The destination frame.
    pub fn new_frame(&self) -> PhysFrame {
        self.new_frame
    }
}

/// One in-flight 2 MiB region migration: 512 contiguous base pages move
/// into one contiguous destination span and commit as a single huge PTE
/// with **one** ranged TLB shootdown — where the per-page protocol would
/// pay [`PAGES_PER_HUGE`] request/ack rounds.
///
/// The same staged safety story as [`Migration`] applies region-wide:
/// every base page is guarded with `Migrating` before any byte is
/// copied, the old frames stay authoritative until the final remap, and
/// [`RegionMigration::abort`] re-publishes all 512 original mappings
/// from any live node.
#[derive(Debug, Clone)]
pub struct RegionMigration {
    asid: u64,
    head_vpn: u64,
    /// Pre-migration PTEs, one per base page, in vpn order.
    old: Vec<Pte>,
    /// Base of the contiguous 2 MiB destination span.
    new_frame: PhysFrame,
    writable: bool,
    copied: bool,
}

impl RegionMigration {
    /// Stage 1: guard all 512 base pages of the region at `head_vpn`
    /// with the `Migrating` bit. Requires every page mapped as a base
    /// page, none already migrating, and uniform writability (the single
    /// huge PTE has one permission bit for the whole region).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the region is not eligible (guards
    /// set so far are rolled back); fabric errors propagate.
    ///
    /// # Panics
    ///
    /// Panics when `head_vpn` is not 512-aligned.
    pub fn begin(
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        head_vpn: u64,
        new_frame: PhysFrame,
    ) -> Result<Self, SimError> {
        assert_eq!(
            head_vpn,
            huge_base(head_vpn),
            "region must start at a 2 MiB boundary"
        );
        let mut old = Vec::with_capacity(PAGES_PER_HUGE as usize);
        for vpn in head_vpn..head_vpn + PAGES_PER_HUGE {
            let pte = space
                .translate(ctx, VirtAddr::from_vpn(vpn))?
                .ok_or_else(|| {
                    SimError::Protocol(format!("region at {head_vpn}: vpn {vpn} unmapped"))
                })?;
            if pte.migrating {
                return Err(SimError::Protocol(format!(
                    "region at {head_vpn}: vpn {vpn} already migrating"
                )));
            }
            if pte.page_size != PageSize::Base {
                return Err(SimError::Protocol(format!(
                    "region at {head_vpn} is already huge-mapped"
                )));
            }
            if pte.writable != old.first().map_or(pte.writable, |p: &Pte| p.writable) {
                return Err(SimError::Protocol(format!(
                    "region at {head_vpn}: mixed page permissions"
                )));
            }
            old.push(pte);
        }
        let writable = old[0].writable;
        // All eligible: guard every page. A failure mid-way rolls the
        // already-guarded prefix back so no page is left stuck.
        for (i, pte) in old.iter().enumerate() {
            let vpn = head_vpn + i as u64;
            if let Err(e) = space.map(ctx, vpn, pte.begin_migration()) {
                for (j, prev) in old.iter().enumerate().take(i) {
                    let _ = space.map(ctx, head_vpn + j as u64, *prev);
                }
                return Err(e);
            }
        }
        Ok(RegionMigration {
            asid: space.asid(),
            head_vpn,
            old,
            new_frame,
            writable,
            copied: false,
        })
    }

    /// Stage 2: copy all 2 MiB from the old (possibly scattered) frames
    /// into the contiguous destination span.
    ///
    /// # Errors
    ///
    /// Fabric/protocol errors propagate.
    pub fn copy(&mut self, ctx: &NodeCtx, space: &AddressSpace) -> Result<(), SimError> {
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, pte) in self.old.iter().enumerate() {
            space.read_frame(ctx, pte.frame, &mut page)?;
            space.write_frame(ctx, frame_at(self.new_frame, (i * PAGE_SIZE) as u64), &page)?;
        }
        self.copied = true;
        Ok(())
    }

    /// Stage 3: publish one huge PTE at the region head, retire the 512
    /// base mappings, and drive **one** ranged shootdown via
    /// `shoot_range(asid, head_vpn, 512)`. Returns the displaced base
    /// PTEs so the caller can free their frames.
    ///
    /// The head is remapped to the huge entry *before* the interior base
    /// entries are unmapped: an interior vpn either still resolves
    /// through its guarded base entry (and retries) or falls back to the
    /// committed huge mapping — there is no window where it is unmapped.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] before [`RegionMigration::copy`]; fabric
    /// errors propagate.
    pub fn commit(
        self,
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        shoot_range: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
    ) -> Result<Vec<Pte>, SimError> {
        if !self.copied {
            return Err(SimError::Protocol(format!(
                "commit of region {} before copy",
                self.head_vpn
            )));
        }
        space.map(
            ctx,
            self.head_vpn,
            Pte::new(self.new_frame, self.writable).huge(),
        )?;
        for vpn in self.head_vpn + 1..self.head_vpn + PAGES_PER_HUGE {
            space.unmap(ctx, vpn)?;
        }
        shoot_range(self.asid, self.head_vpn, PAGES_PER_HUGE)?;
        Ok(self.old)
    }

    /// Roll back: re-publish all 512 original base mappings with their
    /// guards cleared. Callable from any live node.
    ///
    /// # Errors
    ///
    /// Fabric errors propagate.
    pub fn abort(&self, ctx: &Arc<NodeCtx>, space: &AddressSpace) -> Result<(), SimError> {
        for (i, pte) in self.old.iter().enumerate() {
            space.map(ctx, self.head_vpn + i as u64, *pte)?;
        }
        Ok(())
    }

    /// The region-head vpn.
    pub fn head_vpn(&self) -> u64 {
        self.head_vpn
    }

    /// The authoritative pre-migration mappings, in vpn order.
    pub fn old(&self) -> &[Pte] {
        &self.old
    }

    /// The destination span base.
    pub fn new_frame(&self) -> PhysFrame {
        self.new_frame
    }
}

/// Split the huge mapping at `head_vpn` back into 512 base PTEs over the
/// same physical bytes (no copy): interior pages are mapped to their
/// offsets within the huge frame with the same permission bit, then the
/// head is downgraded, then **one** ranged shootdown retires stale huge
/// translations. Returns the displaced huge PTE.
///
/// Interior vpns never go unmapped: until each base entry is published,
/// translation falls back to the (still-correct) huge entry over the
/// identical frame bytes.
///
/// # Errors
///
/// [`SimError::Protocol`] when `head_vpn` holds no huge, non-migrating
/// mapping; fabric errors propagate.
///
/// # Panics
///
/// Panics when `head_vpn` is not 512-aligned.
pub fn split_region(
    ctx: &Arc<NodeCtx>,
    space: &AddressSpace,
    head_vpn: u64,
    shoot_range: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
) -> Result<Pte, SimError> {
    assert_eq!(
        head_vpn,
        huge_base(head_vpn),
        "region must start at a 2 MiB boundary"
    );
    let head = space
        .translate(ctx, VirtAddr::from_vpn(head_vpn))?
        .ok_or_else(|| SimError::Protocol(format!("no mapping at region head {head_vpn}")))?;
    if head.page_size != PageSize::Huge {
        return Err(SimError::Protocol(format!(
            "vpn {head_vpn} is not a huge mapping"
        )));
    }
    if head.migrating {
        return Err(SimError::Protocol(format!(
            "region {head_vpn} is mid-migration"
        )));
    }
    for i in 1..PAGES_PER_HUGE {
        space.map(
            ctx,
            head_vpn + i,
            Pte::new(frame_at(head.frame, i * PAGE_SIZE as u64), head.writable),
        )?;
    }
    space.map(ctx, head_vpn, Pte::new(head.frame, head.writable))?;
    shoot_range(space.asid(), head_vpn, PAGES_PER_HUGE)?;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use flacos_mem::fault::FrameAllocator;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, AddressSpace, FrameAllocator) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let frames = FrameAllocator::new(rack.global().clone());
        (rack, space, frames)
    }

    #[test]
    fn full_migration_moves_bytes_and_remaps() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 3, Pte::new(PhysFrame::Global(old), true))
            .unwrap();
        space
            .write(&n0, VirtAddr::from_vpn(3), &[0xAB; 64])
            .unwrap();

        let mut pool = LocalFramePool::new();
        let dst = PhysFrame::Local(n0.id(), pool.alloc(&n0).unwrap());
        let mut m = Migration::begin(&n0, &space, 3, dst).unwrap();
        // Guarded window: accessors bounce.
        let mut buf = [0u8; 8];
        assert!(matches!(
            space.read(&n0, VirtAddr::from_vpn(3), &mut buf),
            Err(SimError::WouldBlock)
        ));
        m.copy(&n0, &space).unwrap();
        let displaced = m.commit(&n0, &space, &mut |_, _| Ok(())).unwrap();
        assert_eq!(displaced.frame, PhysFrame::Global(old));

        let pte = space
            .translate(&n0, VirtAddr::from_vpn(3))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame, dst);
        assert!(!pte.migrating);
        let mut out = [0u8; 64];
        space.read(&n0, VirtAddr::from_vpn(3), &mut out).unwrap();
        assert_eq!(out, [0xAB; 64], "content travelled with the page");
    }

    #[test]
    fn abort_restores_old_mapping() {
        let (rack, space, frames) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 5, Pte::new(PhysFrame::Global(old), true))
            .unwrap();
        space.write(&n0, VirtAddr::from_vpn(5), &[7u8; 32]).unwrap();

        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        let m = Migration::begin(&n0, &space, 5, dst).unwrap();
        // The migrating node "crashes"; a survivor aborts from node 1.
        m.abort(&n1, &space).unwrap();
        let pte = space
            .translate(&n1, VirtAddr::from_vpn(5))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame, PhysFrame::Global(old), "old copy authoritative");
        assert!(!pte.migrating);
        let mut out = [0u8; 32];
        space.read(&n1, VirtAddr::from_vpn(5), &mut out).unwrap();
        assert_eq!(out, [7u8; 32]);
    }

    #[test]
    fn begin_rejects_unmapped_and_double_migration() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        assert!(Migration::begin(&n0, &space, 9, dst).is_err());

        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 9, Pte::new(PhysFrame::Global(old), false))
            .unwrap();
        let _m = Migration::begin(&n0, &space, 9, dst).unwrap();
        assert!(
            Migration::begin(&n0, &space, 9, dst).is_err(),
            "second begin bounces off the guard bit"
        );
    }

    #[test]
    fn commit_requires_copy_first() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 2, Pte::new(PhysFrame::Global(old), true))
            .unwrap();
        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        let m = Migration::begin(&n0, &space, 2, dst).unwrap();
        assert!(m.commit(&n0, &space, &mut |_, _| Ok(())).is_err());
    }

    fn setup_region() -> (Rack, AddressSpace, FrameAllocator) {
        let mut cfg = RackConfig::small_test().with_global_mem(64 << 20);
        cfg.local_mem_bytes = 8 << 20;
        let rack = Rack::new(cfg);
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let frames = FrameAllocator::new(rack.global().clone());
        (rack, space, frames)
    }

    fn map_region(
        rack: &Rack,
        space: &AddressSpace,
        frames: &FrameAllocator,
        head: u64,
        writable: bool,
    ) {
        let n0 = rack.node(0);
        for vpn in head..head + PAGES_PER_HUGE {
            let f = frames.alloc(&n0).unwrap();
            space
                .map(&n0, vpn, Pte::new(PhysFrame::Global(f), writable))
                .unwrap();
        }
    }

    #[test]
    fn region_migration_commits_one_huge_pte_and_one_ranged_shootdown() {
        let (rack, space, frames) = setup_region();
        let n0 = rack.node(0);
        map_region(&rack, &space, &frames, 512, true);
        for vpn in (512..1024).step_by(61) {
            space
                .write(&n0, VirtAddr::from_vpn(vpn), &[vpn as u8; 64])
                .unwrap();
        }

        let mut pool = LocalFramePool::new();
        let base = pool.alloc_region(&n0).unwrap();
        assert_eq!(base.0 % PAGE_SIZE, 0);
        let dst = PhysFrame::Local(n0.id(), base);
        let mut m = RegionMigration::begin(&n0, &space, 512, dst).unwrap();
        // Guarded window covers the whole region.
        let mut buf = [0u8; 8];
        assert!(matches!(
            space.read(&n0, VirtAddr::from_vpn(800), &mut buf),
            Err(SimError::WouldBlock)
        ));
        m.copy(&n0, &space).unwrap();
        let mut shots = Vec::new();
        let displaced = m
            .commit(&n0, &space, &mut |asid, vpn, span| {
                shots.push((asid, vpn, span));
                Ok(())
            })
            .unwrap();
        assert_eq!(shots, vec![(1, 512, 512)], "exactly one ranged shootdown");
        assert_eq!(displaced.len(), 512);
        assert_eq!(space.mapped_pages(), 512, "one huge PTE covers the region");

        let head = space
            .translate(&n0, VirtAddr::from_vpn(512))
            .unwrap()
            .unwrap();
        assert_eq!(head.frame, dst);
        assert_eq!(head.page_size, flacos_mem::PageSize::Huge);
        for vpn in (512..1024).step_by(61) {
            let mut out = [0u8; 64];
            space.read(&n0, VirtAddr::from_vpn(vpn), &mut out).unwrap();
            assert_eq!(out, [vpn as u8; 64], "bytes travelled with the region");
        }
    }

    #[test]
    fn region_migration_abort_restores_all_base_pages() {
        let (rack, space, frames) = setup_region();
        let (n0, n1) = (rack.node(0), rack.node(1));
        map_region(&rack, &space, &frames, 0, true);
        space
            .write(&n0, VirtAddr::from_vpn(77), &[9u8; 32])
            .unwrap();

        let mut pool = LocalFramePool::new();
        let dst = PhysFrame::Local(n0.id(), pool.alloc_region(&n0).unwrap());
        let m = RegionMigration::begin(&n0, &space, 0, dst).unwrap();
        // The migrating node "crashes"; a survivor aborts from node 1.
        m.abort(&n1, &space).unwrap();
        for vpn in (0..512).step_by(101) {
            let pte = space
                .translate(&n1, VirtAddr::from_vpn(vpn))
                .unwrap()
                .unwrap();
            assert!(!pte.migrating);
            assert_eq!(pte.page_size, flacos_mem::PageSize::Base);
        }
        let mut out = [0u8; 32];
        space.read(&n1, VirtAddr::from_vpn(77), &mut out).unwrap();
        assert_eq!(out, [9u8; 32]);
    }

    #[test]
    fn region_begin_rejects_partial_or_mixed_regions() {
        let (rack, space, frames) = setup_region();
        let n0 = rack.node(0);
        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        // Unmapped region.
        assert!(RegionMigration::begin(&n0, &space, 0, dst).is_err());
        // Hole at vpn 100.
        map_region(&rack, &space, &frames, 0, true);
        space.unmap(&n0, 100).unwrap();
        assert!(RegionMigration::begin(&n0, &space, 0, dst).is_err());
        // Mixed permissions.
        let f = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 100, Pte::new(PhysFrame::Global(f), false))
            .unwrap();
        assert!(RegionMigration::begin(&n0, &space, 0, dst).is_err());
        // The failed begins left no page guarded.
        for vpn in (0..512).step_by(37) {
            let pte = space
                .translate(&n0, VirtAddr::from_vpn(vpn))
                .unwrap()
                .unwrap();
            assert!(!pte.migrating, "vpn {vpn} must not be stuck migrating");
        }
    }

    #[test]
    fn split_region_restores_bytes_and_permissions_without_copy() {
        let (rack, space, frames) = setup_region();
        let n0 = rack.node(0);
        // Build a huge local mapping via a region migration.
        map_region(&rack, &space, &frames, 512, true);
        for vpn in (512..1024).step_by(53) {
            space
                .write(&n0, VirtAddr::from_vpn(vpn), &[vpn as u8; 48])
                .unwrap();
        }
        let mut pool = LocalFramePool::new();
        let base = pool.alloc_region(&n0).unwrap();
        let dst = PhysFrame::Local(n0.id(), base);
        let mut m = RegionMigration::begin(&n0, &space, 512, dst).unwrap();
        m.copy(&n0, &space).unwrap();
        m.commit(&n0, &space, &mut |_, _, _| Ok(())).unwrap();

        let mut shots = Vec::new();
        let head = split_region(&n0, &space, 512, &mut |asid, vpn, span| {
            shots.push((asid, vpn, span));
            Ok(())
        })
        .unwrap();
        assert_eq!(shots, vec![(1, 512, 512)], "split is one ranged shootdown");
        assert_eq!(head.frame, dst);
        assert_eq!(space.mapped_pages(), 512, "512 base PTEs again");
        for vpn in (512..1024).step_by(53) {
            let pte = space
                .translate(&n0, VirtAddr::from_vpn(vpn))
                .unwrap()
                .unwrap();
            assert_eq!(pte.page_size, flacos_mem::PageSize::Base);
            assert!(pte.writable, "permission bit preserved");
            assert_eq!(
                pte.frame,
                PhysFrame::Local(n0.id(), LAddr(base.0 + (vpn - 512) as usize * PAGE_SIZE))
            );
            let mut out = [0u8; 48];
            space.read(&n0, VirtAddr::from_vpn(vpn), &mut out).unwrap();
            assert_eq!(out, [vpn as u8; 48], "no copy, same bytes");
        }
        // Split of a non-huge mapping is rejected.
        assert!(split_region(&n0, &space, 512, &mut |_, _, _| Ok(())).is_err());
    }

    #[test]
    fn local_frame_pool_recycles_aligned_frames() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut pool = LocalFramePool::new();
        let f = pool.alloc(&n0).unwrap();
        assert_eq!(f.0 % PAGE_SIZE, 0);
        pool.free(f);
        assert_eq!(pool.free_frames(), 1);
        assert_eq!(pool.alloc(&n0).unwrap(), f);
    }
}
