//! The staged page-migration engine.
//!
//! Migration under incoherent caches is a three-step protocol in which
//! the **old frame stays authoritative until the final remap**:
//!
//! 1. [`Migration::begin`] — publish the mapping with the `Migrating`
//!    guard bit set. Concurrent accessors observe the bit and retry
//!    ([`SimError::WouldBlock`] from `AddressSpace`,
//!    `FaultResolution::Retry` from the fault handler); nobody can read
//!    the half-copied destination.
//! 2. [`Migration::copy`] — copy the page bytes old → new (coherently:
//!    invalidate-before-read, writeback-after-write).
//! 3. [`Migration::commit`] — atomically remap to the new frame with the
//!    guard cleared, then drive a rack-wide TLB shootdown via the
//!    caller's closure so no stale translation survives.
//!
//! [`Migration::abort`] re-publishes the original mapping from *any*
//! live node, which is exactly the crash-consistency story: if the
//! migrating node dies between steps, the old copy is still authoritative
//! and a survivor aborts the half-done migration without data loss.

use flacos_mem::addr::VirtAddr;
use flacos_mem::{AddressSpace, PhysFrame, Pte, PAGE_SIZE};
use rack_sim::{LAddr, NodeCtx, SimError};
use std::sync::Arc;

/// A page-aligned allocator over one node's local (bump) memory with a
/// free list, so demoted pages recycle their local frames.
#[derive(Debug, Default)]
pub struct LocalFramePool {
    free: Vec<LAddr>,
}

impl LocalFramePool {
    /// An empty pool (frames are carved from `ctx.local_alloc` on
    /// demand).
    pub fn new() -> Self {
        LocalFramePool::default()
    }

    /// Allocate one page-aligned local frame on `ctx`'s node.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when local memory is exhausted.
    pub fn alloc(&mut self, ctx: &NodeCtx) -> Result<LAddr, SimError> {
        if let Some(f) = self.free.pop() {
            return Ok(f);
        }
        // The local bump allocator aligns to 8; over-allocate and round
        // up to a page boundary.
        let raw = ctx.local_alloc(PAGE_SIZE * 2)?;
        Ok(LAddr((raw.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)))
    }

    /// Return a frame for reuse.
    pub fn free(&mut self, frame: LAddr) {
        self.free.push(frame);
    }

    /// Frames currently recycled and ready.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }
}

/// One in-flight page migration (either direction between tiers).
#[derive(Debug, Clone)]
pub struct Migration {
    asid: u64,
    vpn: u64,
    old: Pte,
    new_frame: PhysFrame,
    copied: bool,
}

impl Migration {
    /// Stage 1: set the `Migrating` guard on `vpn`'s mapping. The old
    /// frame remains authoritative.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the page is unmapped or already
    /// migrating; fabric errors propagate.
    pub fn begin(
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        vpn: u64,
        new_frame: PhysFrame,
    ) -> Result<Self, SimError> {
        let old = space
            .translate(ctx, VirtAddr::from_vpn(vpn))?
            .ok_or_else(|| SimError::Protocol(format!("cannot migrate unmapped vpn {vpn}")))?;
        if old.migrating {
            return Err(SimError::Protocol(format!(
                "vpn {vpn} is already migrating"
            )));
        }
        space.map(ctx, vpn, old.begin_migration())?;
        Ok(Migration {
            asid: space.asid(),
            vpn,
            old,
            new_frame,
            copied: false,
        })
    }

    /// Stage 2: copy the page bytes from the old frame into the new one.
    ///
    /// # Errors
    ///
    /// Fabric/protocol errors propagate (e.g. a foreign local frame).
    pub fn copy(&mut self, ctx: &NodeCtx, space: &AddressSpace) -> Result<(), SimError> {
        let mut page = vec![0u8; PAGE_SIZE];
        space.read_frame(ctx, self.old.frame, &mut page)?;
        space.write_frame(ctx, self.new_frame, &page)?;
        self.copied = true;
        Ok(())
    }

    /// Stage 3: publish the new mapping (guard cleared) and drive the
    /// rack-wide TLB shootdown through `shoot(asid, vpn)`. Returns the
    /// displaced old PTE so the caller can free or release its frame.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when called before [`Migration::copy`];
    /// fabric errors propagate.
    pub fn commit(
        self,
        ctx: &Arc<NodeCtx>,
        space: &AddressSpace,
        shoot: &mut dyn FnMut(u64, u64) -> Result<(), SimError>,
    ) -> Result<Pte, SimError> {
        if !self.copied {
            return Err(SimError::Protocol(format!(
                "commit of vpn {} before copy",
                self.vpn
            )));
        }
        space.map(ctx, self.vpn, Pte::new(self.new_frame, self.old.writable))?;
        shoot(self.asid, self.vpn)?;
        Ok(self.old)
    }

    /// Roll back: re-publish the original mapping with the guard
    /// cleared. Callable from any live node — the crash-recovery path
    /// when the migrating node died mid-flight.
    ///
    /// # Errors
    ///
    /// Fabric errors propagate.
    pub fn abort(&self, ctx: &Arc<NodeCtx>, space: &AddressSpace) -> Result<(), SimError> {
        space.map(ctx, self.vpn, self.old)?;
        Ok(())
    }

    /// The page being migrated.
    pub fn vpn(&self) -> u64 {
        self.vpn
    }

    /// The authoritative pre-migration mapping.
    pub fn old(&self) -> Pte {
        self.old
    }

    /// The destination frame.
    pub fn new_frame(&self) -> PhysFrame {
        self.new_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use flacos_mem::fault::FrameAllocator;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, AddressSpace, FrameAllocator) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let frames = FrameAllocator::new(rack.global().clone());
        (rack, space, frames)
    }

    #[test]
    fn full_migration_moves_bytes_and_remaps() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 3, Pte::new(PhysFrame::Global(old), true))
            .unwrap();
        space
            .write(&n0, VirtAddr::from_vpn(3), &[0xAB; 64])
            .unwrap();

        let mut pool = LocalFramePool::new();
        let dst = PhysFrame::Local(n0.id(), pool.alloc(&n0).unwrap());
        let mut m = Migration::begin(&n0, &space, 3, dst).unwrap();
        // Guarded window: accessors bounce.
        let mut buf = [0u8; 8];
        assert!(matches!(
            space.read(&n0, VirtAddr::from_vpn(3), &mut buf),
            Err(SimError::WouldBlock)
        ));
        m.copy(&n0, &space).unwrap();
        let displaced = m.commit(&n0, &space, &mut |_, _| Ok(())).unwrap();
        assert_eq!(displaced.frame, PhysFrame::Global(old));

        let pte = space
            .translate(&n0, VirtAddr::from_vpn(3))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame, dst);
        assert!(!pte.migrating);
        let mut out = [0u8; 64];
        space.read(&n0, VirtAddr::from_vpn(3), &mut out).unwrap();
        assert_eq!(out, [0xAB; 64], "content travelled with the page");
    }

    #[test]
    fn abort_restores_old_mapping() {
        let (rack, space, frames) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 5, Pte::new(PhysFrame::Global(old), true))
            .unwrap();
        space.write(&n0, VirtAddr::from_vpn(5), &[7u8; 32]).unwrap();

        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        let m = Migration::begin(&n0, &space, 5, dst).unwrap();
        // The migrating node "crashes"; a survivor aborts from node 1.
        m.abort(&n1, &space).unwrap();
        let pte = space
            .translate(&n1, VirtAddr::from_vpn(5))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame, PhysFrame::Global(old), "old copy authoritative");
        assert!(!pte.migrating);
        let mut out = [0u8; 32];
        space.read(&n1, VirtAddr::from_vpn(5), &mut out).unwrap();
        assert_eq!(out, [7u8; 32]);
    }

    #[test]
    fn begin_rejects_unmapped_and_double_migration() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        assert!(Migration::begin(&n0, &space, 9, dst).is_err());

        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 9, Pte::new(PhysFrame::Global(old), false))
            .unwrap();
        let _m = Migration::begin(&n0, &space, 9, dst).unwrap();
        assert!(
            Migration::begin(&n0, &space, 9, dst).is_err(),
            "second begin bounces off the guard bit"
        );
    }

    #[test]
    fn commit_requires_copy_first() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let old = frames.alloc(&n0).unwrap();
        space
            .map(&n0, 2, Pte::new(PhysFrame::Global(old), true))
            .unwrap();
        let dst = PhysFrame::Global(frames.alloc(&n0).unwrap());
        let m = Migration::begin(&n0, &space, 2, dst).unwrap();
        assert!(m.commit(&n0, &space, &mut |_, _| Ok(())).is_err());
    }

    #[test]
    fn local_frame_pool_recycles_aligned_frames() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mut pool = LocalFramePool::new();
        let f = pool.alloc(&n0).unwrap();
        assert_eq!(f.0 % PAGE_SIZE, 0);
        pool.free(f);
        assert_eq!(pool.free_frames(), 1);
        assert_eq!(pool.alloc(&n0).unwrap(), f);
    }
}
