//! The tiering daemon: observation → policy → safe mutation.
//!
//! On each sim-time tick the daemon (1) drains its sampled access ring
//! into the exponential-decay hotness tracker (reused from
//! `flacdk::alloc::hotness`), (2) splits pages into the hottest set that
//! fits the node's local-DRAM budget versus everything else, and (3)
//! executes the delta as staged migrations ([`crate::Migration`]): cold
//! local pages demote back to the global pool first (freeing budget),
//! then hot global pages promote into local DRAM — each with the
//! `Migrating` guard, a coherent copy, and a rack-wide TLB shootdown.
//!
//! Dedup interaction: a page whose global frame is rack-shared
//! (refcount ≥ 2) is *vetoed* when at least
//! [`TierConfig::dedup_hot_node_threshold`] nodes are hot on it (one
//! node's fast tier must not steal a page everyone reads); otherwise the
//! promotion breaks sharing copy-on-promote style — the local copy is
//! private and the shared frame's refcount drops by one.

use crate::budget::TierBudget;
use crate::migrate::{split_region, LocalFramePool, Migration, RegionMigration};
use flacdk::alloc::hotness::HotnessTracker;
use flacos_mem::addr::VirtAddr;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::telemetry::AccessRing;
use flacos_mem::{
    huge_base, AddressSpace, PageDeduper, PageSize, PhysFrame, HUGE_PAGE_SIZE, PAGES_PER_HUGE,
    PAGE_SIZE,
};
use rack_sim::metrics::Counter;
use rack_sim::{GAddr, NodeCtx, NodeId, SimError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Tiering policy knobs.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Local-DRAM bytes this node may fill with promoted pages.
    pub local_budget_bytes: u64,
    /// Hotness half-life (in recorded accesses) for the decay tracker.
    pub half_life_accesses: u64,
    /// Migration cap per tick (promotion + demotion combined).
    pub max_migrations_per_tick: usize,
    /// Minimum normalized hotness score a page needs to be promoted.
    pub min_promote_score: f64,
    /// Veto promotion of a rack-shared deduped page when at least this
    /// many nodes have touched it.
    pub dedup_hot_node_threshold: usize,
    /// Coalesce a 2 MiB region into one huge local mapping when at
    /// least this many of its 512 base pages are in the desired hot set
    /// (one region migration, one ranged shootdown — instead of 512
    /// page migrations with 512 shootdowns). `0` disables region
    /// coalescing, which is the default.
    pub huge_region_min_hot_pages: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            local_budget_bytes: 16 * PAGE_SIZE as u64,
            half_life_accesses: 4096,
            max_migrations_per_tick: 8,
            min_promote_score: 0.0,
            dedup_hot_node_threshold: 2,
            huge_region_min_hot_pages: 0,
        }
    }
}

/// What one tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierTickReport {
    /// Pages promoted global → local this tick.
    pub promoted: u64,
    /// Pages demoted local → global this tick.
    pub demoted: u64,
    /// Promotions vetoed by the dedup multi-node-hot rule.
    pub vetoed: u64,
    /// Page bytes copied between tiers this tick.
    pub bytes_migrated: u64,
    /// Rack-wide TLB shootdowns issued this tick. A region promotion or
    /// split counts once: its 512 pages share one ranged round.
    pub shootdowns: u64,
    /// 2 MiB regions coalesced into huge local mappings this tick.
    pub region_promotions: u64,
    /// Huge local mappings split back into 512 base pages this tick.
    pub region_splits: u64,
}

struct TierCounters {
    promotions: Counter,
    demotions: Counter,
    vetoed_dedup: Counter,
    shootdowns: Counter,
    bytes_migrated: Counter,
    region_promotions: Counter,
    region_splits: Counter,
}

impl TierCounters {
    fn new(ctx: &NodeCtx) -> Self {
        let stats = ctx.stats();
        TierCounters {
            promotions: stats.counter("tier", "promotions"),
            demotions: stats.counter("tier", "demotions"),
            vetoed_dedup: stats.counter("tier", "vetoed_dedup"),
            shootdowns: stats.counter("tier", "shootdowns"),
            bytes_migrated: stats.counter("tier", "bytes_migrated"),
            region_promotions: stats.counter("tier", "region_promotions"),
            region_splits: stats.counter("tier", "region_splits"),
        }
    }
}

/// Per-node page tiering daemon.
pub struct TierDaemon {
    node: Arc<NodeCtx>,
    config: TierConfig,
    ring: Arc<AccessRing>,
    tracker: HotnessTracker,
    /// vpn → (node → touch count), for dominant-node and veto decisions.
    node_touches: BTreeMap<u64, BTreeMap<usize, u64>>,
    pool: LocalFramePool,
    /// Pages this daemon promoted: vpn → local frame.
    local_pages: BTreeMap<u64, rack_sim::LAddr>,
    /// 2 MiB regions this daemon coalesced: head vpn → local span base.
    huge_regions: BTreeMap<u64, rack_sim::LAddr>,
    budget: Option<Arc<TierBudget>>,
    dedup: Option<Arc<PageDeduper>>,
    counters: TierCounters,
}

impl std::fmt::Debug for TierDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierDaemon")
            .field("node", &self.node.id())
            .field("config", &self.config)
            .field("local_pages", &self.local_pages.len())
            .finish_non_exhaustive()
    }
}

impl TierDaemon {
    /// A daemon for `node` with a fresh unsampled ring (period 1, 4096
    /// entries). Attach [`TierDaemon::ring`] to an address space via
    /// `AddressSpace::attach_sampler` or feed it directly with
    /// [`TierDaemon::note_access`].
    pub fn new(node: Arc<NodeCtx>, config: TierConfig) -> Self {
        let counters = TierCounters::new(&node);
        TierDaemon {
            tracker: HotnessTracker::new(config.half_life_accesses),
            ring: AccessRing::new(4096, 1),
            node,
            config,
            node_touches: BTreeMap::new(),
            pool: LocalFramePool::new(),
            local_pages: BTreeMap::new(),
            huge_regions: BTreeMap::new(),
            budget: None,
            dedup: None,
            counters,
        }
    }

    /// Enforce promotions against the rack-shared per-node budget ledger
    /// (in addition to the daemon's own `local_budget_bytes`).
    pub fn with_budget(mut self, budget: Arc<TierBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Consult `dedup` refcounts for the copy-on-promote / veto rule.
    pub fn with_dedup(mut self, dedup: Arc<PageDeduper>) -> Self {
        self.dedup = Some(dedup);
        self
    }

    /// The daemon's access ring, for wiring into `attach_sampler`.
    pub fn ring(&self) -> Arc<AccessRing> {
        self.ring.clone()
    }

    /// The policy in effect.
    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// Pages currently promoted into this node's local DRAM.
    pub fn local_page_count(&self) -> usize {
        self.local_pages.len()
    }

    /// Whether `vpn` is currently held in the local tier by this daemon
    /// (as a 4 KiB page or inside a coalesced 2 MiB region).
    pub fn is_local(&self, vpn: u64) -> bool {
        self.local_pages.contains_key(&vpn) || self.huge_regions.contains_key(&huge_base(vpn))
    }

    /// Regions currently coalesced into huge local mappings.
    pub fn huge_region_count(&self) -> usize {
        self.huge_regions.len()
    }

    /// Record one page access directly (bypassing the sampler gate is
    /// the caller's choice of `sample_period` on its own ring).
    pub fn note_access(&self, node: NodeId, asid: u64, vpn: u64) {
        self.ring.record(node, asid, vpn);
    }

    /// Normalized hotness score of `vpn` as the daemon currently sees it.
    pub fn score(&self, vpn: u64) -> f64 {
        self.tracker.score(vpn)
    }

    fn ingest(&mut self) {
        for access in self.ring.drain() {
            self.tracker.register(access.vpn, PAGE_SIZE);
            self.tracker.touch(access.vpn);
            *self
                .node_touches
                .entry(access.vpn)
                .or_default()
                .entry(access.node.0)
                .or_insert(0) += 1;
        }
    }

    /// The node with the most touches on `vpn` (ties → lowest node id).
    fn dominant_node(&self, vpn: u64) -> Option<NodeId> {
        let touches = self.node_touches.get(&vpn)?;
        touches
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&node, _)| NodeId(node))
    }

    fn hot_node_count(&self, vpn: u64) -> usize {
        self.node_touches.get(&vpn).map_or(0, BTreeMap::len)
    }

    /// Dispose of a displaced global frame: rack-shared deduped frames
    /// drop one reference; private frames return to the allocator.
    fn dispose_global_frame(&self, frames: &FrameAllocator, g: GAddr) -> Result<(), SimError> {
        if let Some(dedup) = &self.dedup {
            if dedup.refcount(g) > 0 {
                return dedup.release(&self.node, g);
            }
        }
        frames.free(&self.node, g);
        Ok(())
    }

    /// One sim-time tick: ingest telemetry, recompute the desired hot
    /// set, then demote and promote under the migration cap. `shoot` is
    /// invoked as `shoot(asid, vpn, span)` after each remap to drive the
    /// rack-wide TLB shootdown — span is 1 for page migrations and
    /// [`PAGES_PER_HUGE`] for the single ranged round of a region
    /// promotion or split.
    ///
    /// # Errors
    ///
    /// Fabric errors propagate; pages that merely cannot migrate right
    /// now (unmapped, foreign frame, budget exhausted) are skipped.
    pub fn tick(
        &mut self,
        space: &AddressSpace,
        frames: &FrameAllocator,
        shoot: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
    ) -> Result<TierTickReport, SimError> {
        self.ingest();
        let mut report = TierTickReport::default();
        let (hot, _cold) = self
            .tracker
            .tier_split(self.config.local_budget_bytes as usize);
        let desired: BTreeSet<u64> = hot.iter().copied().collect();
        let mut migrations_left = self.config.max_migrations_per_tick;

        // Hot-page population of each 2 MiB region, for coalesce and
        // split decisions.
        let mut region_hot: BTreeMap<u64, usize> = BTreeMap::new();
        if self.config.huge_region_min_hot_pages > 0 {
            for &vpn in &desired {
                *region_hot.entry(huge_base(vpn)).or_insert(0) += 1;
            }
        }

        // --- Split cooled regions first: a huge mapping whose hot
        // population fell below the threshold returns to 512 base pages
        // (one ranged shootdown, no copy); the regular demote path then
        // drains the cold ones page by page.
        let to_split: Vec<u64> = self
            .huge_regions
            .keys()
            .copied()
            .filter(|head| {
                region_hot.get(head).copied().unwrap_or(0) < self.config.huge_region_min_hot_pages
            })
            .collect();
        for head in to_split {
            if migrations_left == 0 {
                break;
            }
            if self.split_huge(space, head, shoot)? {
                migrations_left -= 1;
                report.region_splits += 1;
                report.shootdowns += 1;
            }
        }

        // --- Demote: cold local pages free budget for promotions.
        let to_demote: Vec<u64> = self
            .local_pages
            .keys()
            .copied()
            .filter(|vpn| !desired.contains(vpn))
            .collect();
        for vpn in to_demote {
            if migrations_left == 0 {
                break;
            }
            if self.demote(space, frames, vpn, shoot)? {
                migrations_left -= 1;
                report.demoted += 1;
                report.shootdowns += 1;
                report.bytes_migrated += PAGE_SIZE as u64;
            }
        }

        // --- Coalesce hot regions: 512 pages, one migration, one
        // ranged shootdown.
        for (&head, &hot_pages) in &region_hot {
            if migrations_left == 0 {
                break;
            }
            if hot_pages < self.config.huge_region_min_hot_pages
                || self.huge_regions.contains_key(&head)
            {
                continue;
            }
            match self.promote_region(space, frames, head, shoot)? {
                PromoteOutcome::Promoted => {
                    migrations_left -= 1;
                    report.region_promotions += 1;
                    report.shootdowns += 1;
                    report.bytes_migrated += HUGE_PAGE_SIZE as u64;
                }
                PromoteOutcome::Vetoed => report.vetoed += 1,
                PromoteOutcome::Skipped => {}
            }
        }

        // --- Promote hottest-first into the freed/available budget.
        for vpn in hot {
            if migrations_left == 0 {
                break;
            }
            if self.is_local(vpn) {
                continue;
            }
            if self.tracker.score(vpn) < self.config.min_promote_score {
                continue;
            }
            // Promote only pages this node dominates: a page another
            // node is hotter on belongs in *its* local tier (or in the
            // shared pool), not ours.
            if self.dominant_node(vpn) != Some(self.node.id()) {
                continue;
            }
            match self.promote(space, frames, vpn, shoot)? {
                PromoteOutcome::Promoted => {
                    migrations_left -= 1;
                    report.promoted += 1;
                    report.shootdowns += 1;
                    report.bytes_migrated += PAGE_SIZE as u64;
                }
                PromoteOutcome::Vetoed => report.vetoed += 1,
                PromoteOutcome::Skipped => {}
            }
        }

        self.counters.promotions.add(report.promoted);
        self.counters.demotions.add(report.demoted);
        self.counters.vetoed_dedup.add(report.vetoed);
        self.counters.shootdowns.add(report.shootdowns);
        self.counters.bytes_migrated.add(report.bytes_migrated);
        self.counters
            .region_promotions
            .add(report.region_promotions);
        self.counters.region_splits.add(report.region_splits);
        Ok(report)
    }

    /// Coalesce the 2 MiB region at `head` into one huge local mapping:
    /// every base page must be global-framed, non-migrating, uniformly
    /// writable and not individually promoted here already.
    fn promote_region(
        &mut self,
        space: &AddressSpace,
        frames: &FrameAllocator,
        head: u64,
        shoot: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
    ) -> Result<PromoteOutcome, SimError> {
        let mut old_globals = Vec::with_capacity(PAGES_PER_HUGE as usize);
        for vpn in head..head + PAGES_PER_HUGE {
            if self.local_pages.contains_key(&vpn) {
                // A page of this region already sits in our 4 KiB local
                // tier; let it cool and demote before coalescing.
                return Ok(PromoteOutcome::Skipped);
            }
            let Some(pte) = space.translate(&self.node, VirtAddr::from_vpn(vpn))? else {
                return Ok(PromoteOutcome::Skipped);
            };
            if pte.migrating || pte.page_size != PageSize::Base {
                return Ok(PromoteOutcome::Skipped);
            }
            let PhysFrame::Global(g) = pte.frame else {
                return Ok(PromoteOutcome::Skipped);
            };
            // Dedup rule applies region-wide: one rack-shared
            // multi-node-hot page keeps the whole region in the pool.
            if let Some(dedup) = &self.dedup {
                if dedup.refcount(g) >= 2
                    && self.hot_node_count(vpn) >= self.config.dedup_hot_node_threshold
                {
                    return Ok(PromoteOutcome::Vetoed);
                }
            }
            old_globals.push(g);
        }
        if let Some(budget) = &self.budget {
            if !budget.charge(&self.node, self.node.id(), HUGE_PAGE_SIZE as u64)? {
                return Ok(PromoteOutcome::Skipped);
            }
        }
        let release_budget = |daemon: &TierDaemon| -> Result<(), SimError> {
            if let Some(budget) = &daemon.budget {
                budget.credit(&daemon.node, daemon.node.id(), HUGE_PAGE_SIZE as u64)?;
            }
            Ok(())
        };

        let base = match self.pool.alloc_region(&self.node) {
            Ok(b) => b,
            Err(_) => {
                release_budget(self)?;
                return Ok(PromoteOutcome::Skipped);
            }
        };
        let dst = PhysFrame::Local(self.node.id(), base);
        let mut m = match RegionMigration::begin(&self.node, space, head, dst) {
            Ok(m) => m,
            Err(SimError::Protocol(_)) => {
                self.pool.free_region(base);
                release_budget(self)?;
                return Ok(PromoteOutcome::Skipped);
            }
            Err(e) => {
                self.pool.free_region(base);
                release_budget(self)?;
                return Err(e);
            }
        };
        if let Err(e) = m.copy(&self.node, space) {
            m.abort(&self.node, space)?;
            self.pool.free_region(base);
            release_budget(self)?;
            return Err(e);
        }
        m.commit(&self.node, space, shoot)?;
        for g in old_globals {
            self.dispose_global_frame(frames, g)?;
        }
        self.huge_regions.insert(head, base);
        Ok(PromoteOutcome::Promoted)
    }

    /// Split the coalesced region at `head` back into 512 individually
    /// tracked 4 KiB local pages (same bytes, one ranged shootdown); the
    /// regular demote path then returns the cold ones to the pool.
    fn split_huge(
        &mut self,
        space: &AddressSpace,
        head: u64,
        shoot: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
    ) -> Result<bool, SimError> {
        let Some(base) = self.huge_regions.get(&head).copied() else {
            return Ok(false);
        };
        match split_region(&self.node, space, head, shoot) {
            Ok(_) => {}
            Err(SimError::Protocol(_)) => return Ok(false),
            Err(e) => return Err(e),
        }
        self.huge_regions.remove(&head);
        for i in 0..PAGES_PER_HUGE {
            self.local_pages
                .insert(head + i, rack_sim::LAddr(base.0 + i as usize * PAGE_SIZE));
        }
        Ok(true)
    }

    fn promote(
        &mut self,
        space: &AddressSpace,
        frames: &FrameAllocator,
        vpn: u64,
        shoot: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
    ) -> Result<PromoteOutcome, SimError> {
        let Some(pte) = space.translate(&self.node, VirtAddr::from_vpn(vpn))? else {
            return Ok(PromoteOutcome::Skipped);
        };
        if pte.migrating {
            return Ok(PromoteOutcome::Skipped);
        }
        let PhysFrame::Global(old_global) = pte.frame else {
            // Already in someone's local tier.
            return Ok(PromoteOutcome::Skipped);
        };
        // Dedup rule: rack-shared pages hot on several nodes stay shared.
        if let Some(dedup) = &self.dedup {
            if dedup.refcount(old_global) >= 2
                && self.hot_node_count(vpn) >= self.config.dedup_hot_node_threshold
            {
                return Ok(PromoteOutcome::Vetoed);
            }
        }
        // Reserve rack-visible budget before touching anything.
        if let Some(budget) = &self.budget {
            if !budget.charge(&self.node, self.node.id(), PAGE_SIZE as u64)? {
                return Ok(PromoteOutcome::Skipped);
            }
        }
        let release_budget = |daemon: &TierDaemon| -> Result<(), SimError> {
            if let Some(budget) = &daemon.budget {
                budget.credit(&daemon.node, daemon.node.id(), PAGE_SIZE as u64)?;
            }
            Ok(())
        };

        let laddr = match self.pool.alloc(&self.node) {
            Ok(l) => l,
            Err(_) => {
                // Local memory exhausted: not an error, just no headroom.
                release_budget(self)?;
                return Ok(PromoteOutcome::Skipped);
            }
        };
        let dst = PhysFrame::Local(self.node.id(), laddr);
        let mut m = match Migration::begin(&self.node, space, vpn, dst) {
            Ok(m) => m,
            Err(SimError::Protocol(_)) => {
                self.pool.free(laddr);
                release_budget(self)?;
                return Ok(PromoteOutcome::Skipped);
            }
            Err(e) => {
                self.pool.free(laddr);
                release_budget(self)?;
                return Err(e);
            }
        };
        if let Err(e) = m.copy(&self.node, space) {
            m.abort(&self.node, space)?;
            self.pool.free(laddr);
            release_budget(self)?;
            return Err(e);
        }
        m.commit(&self.node, space, &mut |asid, vpn| shoot(asid, vpn, 1))?;
        self.dispose_global_frame(frames, old_global)?;
        self.local_pages.insert(vpn, laddr);
        Ok(PromoteOutcome::Promoted)
    }

    fn demote(
        &mut self,
        space: &AddressSpace,
        frames: &FrameAllocator,
        vpn: u64,
        shoot: &mut dyn FnMut(u64, u64, u64) -> Result<(), SimError>,
    ) -> Result<bool, SimError> {
        let Some(laddr) = self.local_pages.get(&vpn).copied() else {
            return Ok(false);
        };
        let Some(pte) = space.translate(&self.node, VirtAddr::from_vpn(vpn))? else {
            // Unmapped since promotion: reclaim our bookkeeping.
            self.local_pages.remove(&vpn);
            self.pool.free(laddr);
            if let Some(budget) = &self.budget {
                budget.credit(&self.node, self.node.id(), PAGE_SIZE as u64)?;
            }
            return Ok(false);
        };
        if pte.migrating || pte.frame != PhysFrame::Local(self.node.id(), laddr) {
            return Ok(false);
        }
        let dst_global = frames.alloc(&self.node)?;
        let dst = PhysFrame::Global(dst_global);
        let mut m = match Migration::begin(&self.node, space, vpn, dst) {
            Ok(m) => m,
            Err(SimError::Protocol(_)) => {
                frames.free(&self.node, dst_global);
                return Ok(false);
            }
            Err(e) => {
                frames.free(&self.node, dst_global);
                return Err(e);
            }
        };
        if let Err(e) = m.copy(&self.node, space) {
            m.abort(&self.node, space)?;
            frames.free(&self.node, dst_global);
            return Err(e);
        }
        m.commit(&self.node, space, &mut |asid, vpn| shoot(asid, vpn, 1))?;
        self.local_pages.remove(&vpn);
        self.pool.free(laddr);
        if let Some(budget) = &self.budget {
            budget.credit(&self.node, self.node.id(), PAGE_SIZE as u64)?;
        }
        Ok(true)
    }
}

enum PromoteOutcome {
    Promoted,
    Vetoed,
    Skipped,
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use flacos_mem::Pte;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, AddressSpace, FrameAllocator) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(32 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let frames = FrameAllocator::new(rack.global().clone());
        (rack, space, frames)
    }

    fn map_pages(
        rack: &Rack,
        space: &AddressSpace,
        frames: &FrameAllocator,
        vpns: std::ops::Range<u64>,
    ) {
        let n0 = rack.node(0);
        for vpn in vpns {
            let f = frames.alloc(&n0).unwrap();
            space
                .map(&n0, vpn, Pte::new(PhysFrame::Global(f), true))
                .unwrap();
            space
                .write(&n0, VirtAddr::from_vpn(vpn), &[vpn as u8; 64])
                .unwrap();
        }
    }

    #[test]
    fn hot_pages_promote_and_content_survives() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..8);
        let cfg = TierConfig {
            local_budget_bytes: 2 * PAGE_SIZE as u64,
            ..TierConfig::default()
        };
        let mut daemon = TierDaemon::new(n0.clone(), cfg);
        for _ in 0..10 {
            daemon.note_access(n0.id(), 1, 3);
            daemon.note_access(n0.id(), 1, 5);
        }
        daemon.note_access(n0.id(), 1, 0);
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.promoted, 2);
        assert!(daemon.is_local(3) && daemon.is_local(5));
        assert!(!daemon.is_local(0), "budget holds only the two hottest");
        for vpn in [3u64, 5] {
            let pte = space
                .translate(&n0, VirtAddr::from_vpn(vpn))
                .unwrap()
                .unwrap();
            assert_eq!(pte.frame.home_node(), Some(n0.id()));
            let mut buf = [0u8; 64];
            space.read(&n0, VirtAddr::from_vpn(vpn), &mut buf).unwrap();
            assert_eq!(buf, [vpn as u8; 64]);
        }
    }

    #[test]
    fn cooling_pages_demote_to_make_room() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..4);
        let cfg = TierConfig {
            local_budget_bytes: PAGE_SIZE as u64,
            half_life_accesses: 4,
            ..TierConfig::default()
        };
        let mut daemon = TierDaemon::new(n0.clone(), cfg);
        for _ in 0..8 {
            daemon.note_access(n0.id(), 1, 1);
        }
        daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert!(daemon.is_local(1));
        // Page 2 becomes the new favourite; the short half-life decays 1.
        for _ in 0..64 {
            daemon.note_access(n0.id(), 1, 2);
        }
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.demoted, 1);
        assert_eq!(report.promoted, 1);
        assert!(!daemon.is_local(1) && daemon.is_local(2));
        let pte = space
            .translate(&n0, VirtAddr::from_vpn(1))
            .unwrap()
            .unwrap();
        assert!(
            matches!(pte.frame, PhysFrame::Global(_)),
            "demoted back to the pool"
        );
        let mut buf = [0u8; 64];
        space.read(&n0, VirtAddr::from_vpn(1), &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64], "content survives the round trip");
    }

    #[test]
    fn foreign_dominated_pages_are_not_promoted() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..2);
        let mut daemon = TierDaemon::new(n0.clone(), TierConfig::default());
        // Node 1 is the dominant toucher of page 0.
        for _ in 0..10 {
            daemon.note_access(NodeId(1), 1, 0);
        }
        daemon.note_access(n0.id(), 1, 0);
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.promoted, 0);
        assert!(!daemon.is_local(0));
    }

    #[test]
    fn budget_ledger_gates_promotions() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..4);
        let ledger = TierBudget::alloc(rack.global(), 2, PAGE_SIZE as u64).unwrap();
        let mut daemon =
            TierDaemon::new(n0.clone(), TierConfig::default()).with_budget(ledger.clone());
        for vpn in 0..4 {
            for _ in 0..5 {
                daemon.note_access(n0.id(), 1, vpn);
            }
        }
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.promoted, 1, "one page of rack budget");
        assert_eq!(ledger.free_bytes(&n0, n0.id()).unwrap(), 0);
    }

    #[test]
    fn counters_flow_into_node_stats() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..2);
        let mut daemon = TierDaemon::new(n0.clone(), TierConfig::default());
        let mut shootdowns = 0u64;
        for _ in 0..4 {
            daemon.note_access(n0.id(), 1, 0);
        }
        daemon
            .tick(&space, &frames, &mut |_, _, _| {
                shootdowns += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(shootdowns, 1);
        let snap = n0.stats().snapshot();
        let get = |name: &str| {
            snap.subsystems
                .iter()
                .find(|c| c.subsystem == "tier" && c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(get("promotions"), Some(1));
        assert_eq!(get("shootdowns"), Some(1));
        assert_eq!(get("bytes_migrated"), Some(PAGE_SIZE as u64));
        assert_eq!(get("demotions"), Some(0));
        assert_eq!(get("vetoed_dedup"), Some(0));
    }

    /// A rack whose nodes have enough local DRAM to hold a 2 MiB region.
    fn setup_region() -> (Rack, AddressSpace, FrameAllocator) {
        let mut cfg = RackConfig::small_test().with_global_mem(32 << 20);
        cfg.local_mem_bytes = 8 << 20;
        let rack = Rack::new(cfg);
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let frames = FrameAllocator::new(rack.global().clone());
        (rack, space, frames)
    }

    #[test]
    fn hot_region_coalesces_with_one_ranged_shootdown() {
        let (rack, space, frames) = setup_region();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..PAGES_PER_HUGE);
        let cfg = TierConfig {
            local_budget_bytes: HUGE_PAGE_SIZE as u64,
            huge_region_min_hot_pages: 4,
            ..TierConfig::default()
        };
        let mut daemon = TierDaemon::new(n0.clone(), cfg);
        for vpn in 0..8 {
            for _ in 0..4 {
                daemon.note_access(n0.id(), 1, vpn);
            }
        }
        let mut rounds = Vec::new();
        let report = daemon
            .tick(&space, &frames, &mut |asid, vpn, span| {
                rounds.push((asid, vpn, span));
                Ok(())
            })
            .unwrap();
        assert_eq!(report.region_promotions, 1);
        assert_eq!(report.shootdowns, 1, "512 pages moved, one ranged round");
        assert_eq!(report.bytes_migrated, HUGE_PAGE_SIZE as u64);
        assert_eq!(rounds, vec![(1, 0, PAGES_PER_HUGE)]);
        assert_eq!(daemon.huge_region_count(), 1);
        assert!(daemon.is_local(0) && daemon.is_local(PAGES_PER_HUGE - 1));
        let head = space
            .translate(&n0, VirtAddr::from_vpn(0))
            .unwrap()
            .unwrap();
        assert_eq!(head.page_size, PageSize::Huge);
        assert_eq!(head.frame.home_node(), Some(n0.id()));
        // Interior pages resolve through the huge mapping, bytes intact.
        let mut buf = [0u8; 64];
        space.read(&n0, VirtAddr::from_vpn(300), &mut buf).unwrap();
        assert_eq!(buf, [300u64 as u8; 64]);
    }

    #[test]
    fn cooled_region_splits_back_to_base_pages() {
        let (rack, space, frames) = setup_region();
        let n0 = rack.node(0);
        map_pages(&rack, &space, &frames, 0..PAGES_PER_HUGE);
        let cfg = TierConfig {
            local_budget_bytes: HUGE_PAGE_SIZE as u64,
            half_life_accesses: 4,
            huge_region_min_hot_pages: 4,
            ..TierConfig::default()
        };
        let mut daemon = TierDaemon::new(n0.clone(), cfg);
        for vpn in 0..8 {
            for _ in 0..4 {
                daemon.note_access(n0.id(), 1, vpn);
            }
        }
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.region_promotions, 1);

        // A fresh working set in another region decays the old one below
        // the coalesce threshold; the next tick splits it back.
        map_pages(
            &rack,
            &space,
            &frames,
            2 * PAGES_PER_HUGE..2 * PAGES_PER_HUGE + 512,
        );
        for vpn in 2 * PAGES_PER_HUGE..2 * PAGES_PER_HUGE + 512 {
            for _ in 0..4 {
                daemon.note_access(n0.id(), 1, vpn);
            }
        }
        let mut rounds = Vec::new();
        let report = daemon
            .tick(&space, &frames, &mut |asid, vpn, span| {
                rounds.push((asid, vpn, span));
                Ok(())
            })
            .unwrap();
        assert_eq!(report.region_splits, 1);
        assert_eq!(daemon.huge_region_count(), 0);
        assert_eq!(
            rounds[0],
            (1, 0, PAGES_PER_HUGE),
            "split is one ranged round"
        );
        // The head is a base PTE again and every byte survived in place.
        let head = space
            .translate(&n0, VirtAddr::from_vpn(0))
            .unwrap()
            .unwrap();
        assert_eq!(head.page_size, PageSize::Base);
        let mut buf = [0u8; 64];
        space.read(&n0, VirtAddr::from_vpn(5), &mut buf).unwrap();
        assert_eq!(buf, [5u8; 64]);
        // The split pages now sit in the 4 KiB ledger, demotable later.
        assert!(daemon.local_page_count() >= PAGES_PER_HUGE as usize - 8);
    }

    #[test]
    fn deduped_page_hot_on_two_nodes_is_vetoed() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let dedup = Arc::new(PageDeduper::new(frames.clone()));
        // Intern one shared page from two "files" → refcount 2.
        let content = [0x5Au8; PAGE_SIZE];
        let shared = dedup.intern(&n0, &content).unwrap();
        assert_eq!(dedup.intern(&n0, &content).unwrap(), shared);
        assert_eq!(dedup.refcount(shared), 2);
        space
            .map(&n0, 7, Pte::new(PhysFrame::Global(shared), false))
            .unwrap();

        let mut daemon =
            TierDaemon::new(n0.clone(), TierConfig::default()).with_dedup(dedup.clone());
        // Hot on both node 0 (dominant) and node 1 → veto.
        for _ in 0..10 {
            daemon.note_access(n0.id(), 1, 7);
        }
        for _ in 0..3 {
            daemon.note_access(NodeId(1), 1, 7);
        }
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.vetoed, 1);
        assert_eq!(report.promoted, 0);
        assert_eq!(dedup.refcount(shared), 2, "sharing intact");
    }

    #[test]
    fn deduped_page_hot_on_one_node_breaks_sharing_on_promote() {
        let (rack, space, frames) = setup();
        let n0 = rack.node(0);
        let dedup = Arc::new(PageDeduper::new(frames.clone()));
        let content = [0x5Au8; PAGE_SIZE];
        let shared = dedup.intern(&n0, &content).unwrap();
        assert_eq!(dedup.intern(&n0, &content).unwrap(), shared);
        space
            .map(&n0, 7, Pte::new(PhysFrame::Global(shared), false))
            .unwrap();

        let mut daemon =
            TierDaemon::new(n0.clone(), TierConfig::default()).with_dedup(dedup.clone());
        for _ in 0..10 {
            daemon.note_access(n0.id(), 1, 7);
        }
        let report = daemon.tick(&space, &frames, &mut |_, _, _| Ok(())).unwrap();
        assert_eq!(report.promoted, 1, "single-node-hot page promotes");
        assert_eq!(
            dedup.refcount(shared),
            1,
            "copy-on-promote dropped one reference"
        );
        let mut buf = [0u8; 64];
        space.read(&n0, VirtAddr::from_vpn(7), &mut buf).unwrap();
        assert_eq!(buf, [0x5Au8; 64]);
    }
}
