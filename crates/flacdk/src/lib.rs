//! # FlacDK — the FlacOS Development Kit
//!
//! FlacDK is the lowest layer of FlacOS (paper §3.2): a toolkit of
//! synchronization, memory-management, and reliability mechanisms that
//! both the FlacOS kernel subsystems and applications build on. All of it
//! targets the hostile memory model enforced by [`rack_sim`]: global
//! memory is slow, **not cache coherent**, and fails.
//!
//! ## The three libraries (paper §3.2 "Synchronization")
//!
//! 1. **Hardware operations** ([`hw`]) — typed wrappers over fabric
//!    atomics, memory barriers, and cache flush/invalidate/write-back.
//! 2. **Synchronization interfaces** ([`sync`]) — a baseline global
//!    spinlock plus the three lock-free families the paper identifies:
//!    *replication* ([`sync::replicated`], NR-style operation-log
//!    replicas), *delegation* ([`sync::delegation`], ffwd-style request
//!    shipping to a partition owner), and *quiescence*
//!    ([`sync::rcu`], epoch-based multi-version RCU with interval
//!    reclamation).
//! 3. **Concurrent data structures** ([`ds`]) — vector, hash tables,
//!    ring buffer, and radix tree built from the primitives above.
//!
//! ## Memory management (paper §3.2 "Memory management")
//!
//! [`alloc`] provides the object-granularity global allocator (hooked
//! into epoch reclamation), hotness-driven layout packing, and object
//! relocation/tiering.
//!
//! ## Reliability (paper §3.2 "Reliability")
//!
//! [`reliability`] covers the whole fault-handling pipeline — monitoring,
//! failure prediction, fault detection, checkpointing, and log-replay
//! recovery — *co-designed* with the synchronization layer: checkpoints
//! pin RCU epochs so multi-version objects double as snapshots, and the
//! shared operation log doubles as a redo log.

pub mod alloc;
pub mod ds;
pub mod hw;
pub mod reliability;
pub mod sync;
pub mod wire;

pub use rack_sim::{GAddr, NodeCtx, Rack, RackConfig, SimError};
