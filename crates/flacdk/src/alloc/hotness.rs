//! Hotness tracking and layout packing (paper §3.2 "Memory management",
//! item 2: *"Optimization algorithms for object layout and allocation
//! packing based on object hotness or liveness"*).
//!
//! The tracker keeps an exponentially decayed access counter per object.
//! [`HotnessTracker::pack_order`] produces a hot-first layout ordering so
//! that frequently co-accessed objects can be packed into few pages /
//! cache lines, and [`HotnessTracker::tier_split`] partitions objects
//! into "keep local" and "demote to global" sets for the relocator.

use std::collections::HashMap;

/// Object identifier used by the tracker (opaque to this module).
pub type ObjectId = u64;

/// Exponentially decayed per-object access statistics.
#[derive(Debug, Clone)]
pub struct HotnessTracker {
    half_life_accesses: f64,
    scores: HashMap<ObjectId, f64>,
    sizes: HashMap<ObjectId, usize>,
    total_accesses: u64,
}

impl HotnessTracker {
    /// A tracker whose scores decay by half every `half_life_accesses`
    /// recorded accesses (across all objects).
    ///
    /// # Panics
    ///
    /// Panics if `half_life_accesses` is not positive.
    pub fn new(half_life_accesses: u64) -> Self {
        assert!(half_life_accesses > 0, "half life must be positive");
        HotnessTracker {
            half_life_accesses: half_life_accesses as f64,
            scores: HashMap::new(),
            sizes: HashMap::new(),
            total_accesses: 0,
        }
    }

    /// Register an object and its size (idempotent; re-registering
    /// updates the size).
    pub fn register(&mut self, id: ObjectId, size: usize) {
        self.scores.entry(id).or_insert(0.0);
        self.sizes.insert(id, size);
    }

    /// Remove an object from tracking.
    pub fn forget(&mut self, id: ObjectId) {
        self.scores.remove(&id);
        self.sizes.remove(&id);
    }

    /// Record one access to `id` (auto-registers unknown objects with
    /// size 0).
    pub fn touch(&mut self, id: ObjectId) {
        self.total_accesses += 1;
        // Decay everyone a little, then bump the touched object. To keep
        // this O(1) we fold the decay into the increment instead:
        // score is stored in "inflated" units that grow over time.
        let inflation = (self.total_accesses as f64 / self.half_life_accesses).exp2();
        *self.scores.entry(id).or_insert(0.0) += inflation;
        self.sizes.entry(id).or_insert(0);
    }

    /// Current (normalized) hotness score of `id`.
    pub fn score(&self, id: ObjectId) -> f64 {
        let inflation = (self.total_accesses as f64 / self.half_life_accesses).exp2();
        self.scores.get(&id).copied().unwrap_or(0.0) / inflation
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Objects ordered hottest-first — the packing order for relocation
    /// or allocation placement. Score ties break by ascending
    /// [`ObjectId`] (`total_cmp`, so NaN cannot scramble the order),
    /// making pack/tier decisions byte-identical across runs.
    pub fn pack_order(&self) -> Vec<ObjectId> {
        let mut v: Vec<(ObjectId, f64)> = self.scores.iter().map(|(id, s)| (*id, *s)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().map(|(id, _)| id).collect()
    }

    /// Split objects into (hot, cold) where the hot set is the hottest
    /// prefix whose sizes fit within `local_budget_bytes`.
    pub fn tier_split(&self, local_budget_bytes: usize) -> (Vec<ObjectId>, Vec<ObjectId>) {
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        let mut used = 0usize;
        for id in self.pack_order() {
            let size = self.sizes.get(&id).copied().unwrap_or(0);
            if used + size <= local_budget_bytes {
                used += size;
                hot.push(id);
            } else {
                cold.push(id);
            }
        }
        (hot, cold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotter_objects_sort_first() {
        let mut t = HotnessTracker::new(1000);
        for _ in 0..10 {
            t.touch(1);
        }
        for _ in 0..3 {
            t.touch(2);
        }
        t.touch(3);
        assert_eq!(t.pack_order(), vec![1, 2, 3]);
        assert!(t.score(1) > t.score(2));
    }

    #[test]
    fn decay_lets_new_hot_overtake_old_hot() {
        let mut t = HotnessTracker::new(8);
        for _ in 0..20 {
            t.touch(1);
        }
        // Object 2 becomes the recent favourite.
        for _ in 0..20 {
            t.touch(2);
        }
        assert_eq!(t.pack_order()[0], 2);
    }

    #[test]
    fn tier_split_respects_budget() {
        let mut t = HotnessTracker::new(100);
        t.register(1, 100);
        t.register(2, 100);
        t.register(3, 100);
        for _ in 0..5 {
            t.touch(1);
        }
        for _ in 0..3 {
            t.touch(2);
        }
        t.touch(3);
        let (hot, cold) = t.tier_split(200);
        assert_eq!(hot, vec![1, 2]);
        assert_eq!(cold, vec![3]);
    }

    #[test]
    fn forget_removes_object() {
        let mut t = HotnessTracker::new(100);
        t.touch(9);
        assert_eq!(t.len(), 1);
        t.forget(9);
        assert!(t.is_empty());
        assert_eq!(t.score(9), 0.0);
    }

    #[test]
    fn score_ties_break_by_object_id() {
        // Register-only objects all score exactly 0.0 — a genuine tie.
        // The order must be ascending id regardless of insertion order,
        // so tier decisions replay byte-identically across runs.
        let mut t = HotnessTracker::new(100);
        for id in [9, 2, 7, 4] {
            t.register(id, 10);
        }
        assert_eq!(t.pack_order(), vec![2, 4, 7, 9]);
        let (hot, cold) = t.tier_split(20);
        assert_eq!(hot, vec![2, 4]);
        assert_eq!(cold, vec![7, 9]);
    }

    #[test]
    fn untouched_registered_objects_are_cold() {
        let mut t = HotnessTracker::new(100);
        t.register(5, 10);
        t.touch(6);
        let order = t.pack_order();
        assert_eq!(order.last(), Some(&5));
    }
}
