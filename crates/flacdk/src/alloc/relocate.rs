//! Runtime object movement, relocation, and tiering (paper §3.2 "Memory
//! management", item 3: *"Runtime object movement and relocation
//! mechanisms that reduce fragmentation, improve locality, and utilize
//! memory tiering"*).
//!
//! The [`Relocator`] copies an object's bytes to a new location (in the
//! global tier or a node's local tier) and records a forwarding entry so
//! holders of the old object id still resolve to the data. Combined with
//! [`crate::alloc::hotness::HotnessTracker::tier_split`], it implements
//! promote-hot / demote-cold tiering.

use crate::alloc::object::GlobalAllocator;
use rack_sim::sync::RwLock;
use rack_sim::{GAddr, LAddr, NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::Arc;

/// Where an object currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Rack-shared global memory.
    Global(GAddr),
    /// A node's local memory (locality tier); only that node may access it.
    Local(LAddr),
}

/// Location + size entry in the forwarding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Current tier and address.
    pub tier: Tier,
    /// Object size in bytes.
    pub len: usize,
}

/// Moves objects between placements and resolves ids through a
/// forwarding table. Clone-cheap; clones share the table.
#[derive(Debug, Clone, Default)]
pub struct Relocator {
    table: Arc<RwLock<HashMap<u64, Placement>>>,
}

impl Relocator {
    /// An empty relocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the initial placement of object `id`.
    pub fn place(&self, id: u64, placement: Placement) {
        self.table.write().insert(id, placement);
    }

    /// Current placement of `id`.
    pub fn resolve(&self, id: u64) -> Option<Placement> {
        self.table.read().get(&id).copied()
    }

    /// Remove `id` from the table (object freed).
    pub fn remove(&self, id: u64) -> Option<Placement> {
        self.table.write().remove(&id)
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.table.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.read().is_empty()
    }

    fn read_object(&self, ctx: &NodeCtx, p: Placement, buf: &mut [u8]) -> Result<(), SimError> {
        match p.tier {
            Tier::Global(addr) => {
                ctx.invalidate(addr, buf.len());
                ctx.read(addr, buf)
            }
            Tier::Local(addr) => ctx.local_read(addr, buf),
        }
    }

    fn write_object(&self, ctx: &NodeCtx, tier: Tier, buf: &[u8]) -> Result<(), SimError> {
        match tier {
            Tier::Global(addr) => {
                ctx.write(addr, buf)?;
                ctx.writeback(addr, buf.len());
                Ok(())
            }
            Tier::Local(addr) => ctx.local_write(addr, buf),
        }
    }

    /// Move object `id` into the global tier (demotion / sharing).
    /// Frees nothing at the source; the previous global block (if any)
    /// is returned for the caller to retire through reclamation.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `id` is unknown; allocation and memory
    /// errors are propagated.
    pub fn demote_to_global(
        &self,
        ctx: &NodeCtx,
        alloc: &GlobalAllocator,
        id: u64,
    ) -> Result<Option<GAddr>, SimError> {
        let p = self
            .resolve(id)
            .ok_or_else(|| SimError::Protocol(format!("relocate: unknown object {id}")))?;
        if let Tier::Global(addr) = p.tier {
            return Ok(Some(addr)); // already global
        }
        let mut buf = vec![0u8; p.len];
        self.read_object(ctx, p, &mut buf)?;
        let dst = alloc.alloc(ctx, p.len)?;
        self.write_object(ctx, Tier::Global(dst), &buf)?;
        self.table.write().insert(
            id,
            Placement {
                tier: Tier::Global(dst),
                len: p.len,
            },
        );
        Ok(None)
    }

    /// Move object `id` into this node's local tier (promotion for
    /// locality). Returns the vacated global address (for retire) if the
    /// object was global.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `id` is unknown; allocation and memory
    /// errors are propagated.
    pub fn promote_to_local(&self, ctx: &NodeCtx, id: u64) -> Result<Option<GAddr>, SimError> {
        let p = self
            .resolve(id)
            .ok_or_else(|| SimError::Protocol(format!("relocate: unknown object {id}")))?;
        let old_global = match p.tier {
            Tier::Local(_) => return Ok(None), // already local
            Tier::Global(addr) => addr,
        };
        let mut buf = vec![0u8; p.len];
        self.read_object(ctx, p, &mut buf)?;
        let dst = ctx.local_alloc(p.len)?;
        ctx.local_write(dst, &buf)?;
        self.table.write().insert(
            id,
            Placement {
                tier: Tier::Local(dst),
                len: p.len,
            },
        );
        Ok(Some(old_global))
    }

    /// Compact: move object `id` to a fresh global block (defragmentation
    /// into allocator-preferred placement). Returns the vacated address.
    ///
    /// # Errors
    ///
    /// As [`Relocator::demote_to_global`].
    pub fn compact(
        &self,
        ctx: &NodeCtx,
        alloc: &GlobalAllocator,
        id: u64,
    ) -> Result<GAddr, SimError> {
        let p = self
            .resolve(id)
            .ok_or_else(|| SimError::Protocol(format!("relocate: unknown object {id}")))?;
        let Tier::Global(old) = p.tier else {
            return Err(SimError::Protocol(
                "compact: object is not in the global tier".into(),
            ));
        };
        let mut buf = vec![0u8; p.len];
        self.read_object(ctx, p, &mut buf)?;
        let dst = alloc.alloc(ctx, p.len)?;
        self.write_object(ctx, Tier::Global(dst), &buf)?;
        self.table.write().insert(
            id,
            Placement {
                tier: Tier::Global(dst),
                len: p.len,
            },
        );
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, GlobalAllocator, Relocator) {
        let rack = Rack::new(RackConfig::small_test());
        let alloc = GlobalAllocator::new(rack.global().clone());
        (rack, alloc, Relocator::new())
    }

    #[test]
    fn promote_then_demote_preserves_bytes() {
        let (rack, alloc, rel) = setup();
        let n0 = rack.node(0);
        let g = alloc.alloc(&n0, 32).unwrap();
        n0.write(g, &[7u8; 32]).unwrap();
        n0.writeback(g, 32);
        rel.place(
            1,
            Placement {
                tier: Tier::Global(g),
                len: 32,
            },
        );

        let vacated = rel.promote_to_local(&n0, 1).unwrap();
        assert_eq!(vacated, Some(g));
        assert!(matches!(rel.resolve(1).unwrap().tier, Tier::Local(_)));

        rel.demote_to_global(&n0, &alloc, 1).unwrap();
        let Placement {
            tier: Tier::Global(g2),
            len,
        } = rel.resolve(1).unwrap()
        else {
            panic!("should be global")
        };
        assert_eq!(len, 32);
        let mut buf = [0u8; 32];
        n0.invalidate(g2, 32);
        n0.read(g2, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 32]);
    }

    #[test]
    fn idempotent_moves() {
        let (rack, alloc, rel) = setup();
        let n0 = rack.node(0);
        let g = alloc.alloc(&n0, 16).unwrap();
        rel.place(
            1,
            Placement {
                tier: Tier::Global(g),
                len: 16,
            },
        );
        assert_eq!(
            rel.demote_to_global(&n0, &alloc, 1).unwrap(),
            Some(g),
            "already global"
        );
        rel.promote_to_local(&n0, 1).unwrap();
        assert_eq!(rel.promote_to_local(&n0, 1).unwrap(), None, "already local");
    }

    #[test]
    fn compact_moves_to_fresh_block() {
        let (rack, alloc, rel) = setup();
        let n0 = rack.node(0);
        let g = alloc.alloc(&n0, 16).unwrap();
        n0.write(g, &[3u8; 16]).unwrap();
        n0.writeback(g, 16);
        rel.place(
            5,
            Placement {
                tier: Tier::Global(g),
                len: 16,
            },
        );
        let old = rel.compact(&n0, &alloc, 5).unwrap();
        assert_eq!(old, g);
        let Placement {
            tier: Tier::Global(now),
            ..
        } = rel.resolve(5).unwrap()
        else {
            panic!("global")
        };
        assert_ne!(now, g);
    }

    #[test]
    fn unknown_object_errors() {
        let (rack, alloc, rel) = setup();
        let n0 = rack.node(0);
        assert!(rel.promote_to_local(&n0, 99).is_err());
        assert!(rel.demote_to_global(&n0, &alloc, 99).is_err());
        assert!(rel.compact(&n0, &alloc, 99).is_err());
        assert!(rel.is_empty());
    }

    #[test]
    fn remove_clears_entry() {
        let (_, _, rel) = setup();
        rel.place(
            2,
            Placement {
                tier: Tier::Local(LAddr(0)),
                len: 8,
            },
        );
        assert_eq!(rel.len(), 1);
        assert!(rel.remove(2).is_some());
        assert!(rel.resolve(2).is_none());
    }
}
