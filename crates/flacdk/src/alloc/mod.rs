//! FlacDK memory management (paper §3.2 "Memory management").
//!
//! Three pieces, mirroring the paper's list:
//!
//! 1. [`object::GlobalAllocator`] — an object-granularity allocator over
//!    the global pool with size-class free lists, designed to be fed by
//!    the RCU reclamation path ([`crate::sync::reclaim`]) rather than by
//!    immediate frees.
//! 2. [`hotness::HotnessTracker`] — per-object access-frequency tracking
//!    with exponential decay, driving layout packing decisions.
//! 3. [`relocate::Relocator`] — runtime object movement between global
//!    and local tiers with a forwarding table, used for defragmentation,
//!    locality, and memory tiering.

pub mod hotness;
pub mod object;
pub mod relocate;

pub use hotness::HotnessTracker;
pub use object::GlobalAllocator;
pub use relocate::{Relocator, Tier};
