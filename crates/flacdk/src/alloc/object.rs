//! Object-granularity allocator over global memory.
//!
//! Size-class (power-of-two, minimum one cache line) free lists sit on
//! top of the hardware bump allocator in [`rack_sim::GlobalMemory`]. The
//! minimum class of one cache line guarantees distinct objects never
//! share a line, which matters on a non-coherent fabric: false sharing
//! between objects owned by different nodes would silently corrupt data
//! on write-back.
//!
//! Frees normally arrive *via epoch reclamation*
//! ([`crate::sync::reclaim::RetireList`]) rather than directly, which is
//! the paper's point about incorporating allocation with shared-object
//! synchronization and reclamation.

use rack_sim::sync::Mutex;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError, LINE_SIZE};
use std::collections::HashMap;
use std::sync::Arc;

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Objects returned to free lists.
    pub frees: u64,
    /// Allocations served from a free list (reuse instead of fresh carve).
    pub reuse_hits: u64,
    /// Bytes currently live (size-class rounded).
    pub live_bytes: u64,
}

/// A size-class object allocator over the global pool.
///
/// Clone-cheap: clones share the same free lists.
#[derive(Debug, Clone)]
pub struct GlobalAllocator {
    global: Arc<GlobalMemory>,
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    free_lists: HashMap<usize, Vec<GAddr>>,
    stats: AllocStats,
}

impl GlobalAllocator {
    /// An allocator over `global`.
    pub fn new(global: Arc<GlobalMemory>) -> Self {
        GlobalAllocator {
            global,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// The size class (rounded allocation size) used for a request of
    /// `len` bytes.
    pub fn size_class(len: usize) -> usize {
        len.next_power_of_two().max(LINE_SIZE)
    }

    /// Allocate an object of at least `len` bytes, cache-line aligned.
    ///
    /// Charges one fabric atomic (allocator metadata update in global
    /// memory on real hardware).
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when both the free list and the pool are
    /// exhausted.
    pub fn alloc(&self, ctx: &NodeCtx, len: usize) -> Result<GAddr, SimError> {
        let class = Self::size_class(len);
        ctx.charge(ctx.latency().global_atomic_ns);
        let mut inner = self.inner.lock();
        if let Some(addr) = inner.free_lists.get_mut(&class).and_then(|v| v.pop()) {
            inner.stats.allocs += 1;
            inner.stats.reuse_hits += 1;
            inner.stats.live_bytes += class as u64;
            return Ok(addr);
        }
        // Natural (buddy-style) alignment, capped at a page: a 4 KiB class
        // yields page-aligned blocks usable as PTE-mapped frames.
        let addr = self.global.alloc(class, class.min(4096))?;
        inner.stats.allocs += 1;
        inner.stats.live_bytes += class as u64;
        Ok(addr)
    }

    /// Return the object at `addr` (allocated with request size `len`)
    /// to its size-class free list.
    pub fn free(&self, ctx: &NodeCtx, addr: GAddr, len: usize) {
        let class = Self::size_class(len);
        ctx.charge(ctx.latency().global_atomic_ns);
        let mut inner = self.inner.lock();
        inner.free_lists.entry(class).or_default().push(addr);
        inner.stats.frees += 1;
        inner.stats.live_bytes = inner.stats.live_bytes.saturating_sub(class as u64);
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocStats {
        self.inner.lock().stats
    }

    /// Objects waiting on the free list for size class of `len`.
    pub fn free_count(&self, len: usize) -> usize {
        self.inner
            .lock()
            .free_lists
            .get(&Self::size_class(len))
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// The underlying global memory pool.
    pub fn global(&self) -> &Arc<GlobalMemory> {
        &self.global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, GlobalAllocator) {
        let rack = Rack::new(RackConfig::small_test());
        let alloc = GlobalAllocator::new(rack.global().clone());
        (rack, alloc)
    }

    #[test]
    fn size_classes_round_up() {
        assert_eq!(GlobalAllocator::size_class(1), LINE_SIZE);
        assert_eq!(GlobalAllocator::size_class(64), 64);
        assert_eq!(GlobalAllocator::size_class(65), 128);
        assert_eq!(GlobalAllocator::size_class(4096), 4096);
    }

    #[test]
    fn alloc_returns_line_aligned_distinct_objects() {
        let (rack, alloc) = setup();
        let n0 = rack.node(0);
        let a = alloc.alloc(&n0, 16).unwrap();
        let b = alloc.alloc(&n0, 16).unwrap();
        assert!(a.is_aligned(LINE_SIZE as u64));
        assert!(b.is_aligned(LINE_SIZE as u64));
        assert_ne!(a, b);
        assert!(b.0 - a.0 >= LINE_SIZE as u64, "no false sharing");
    }

    #[test]
    fn free_then_alloc_reuses() {
        let (rack, alloc) = setup();
        let n0 = rack.node(0);
        let a = alloc.alloc(&n0, 100).unwrap();
        alloc.free(&n0, a, 100);
        assert_eq!(alloc.free_count(100), 1);
        let b = alloc.alloc(&n0, 100).unwrap();
        assert_eq!(a, b, "same class reuses the freed object");
        assert_eq!(alloc.stats().reuse_hits, 1);
    }

    #[test]
    fn different_classes_do_not_mix() {
        let (rack, alloc) = setup();
        let n0 = rack.node(0);
        let a = alloc.alloc(&n0, 64).unwrap();
        alloc.free(&n0, a, 64);
        let b = alloc.alloc(&n0, 128).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn live_bytes_tracks_alloc_free() {
        let (rack, alloc) = setup();
        let n0 = rack.node(0);
        let a = alloc.alloc(&n0, 200).unwrap(); // class 256
        assert_eq!(alloc.stats().live_bytes, 256);
        alloc.free(&n0, a, 200);
        assert_eq!(alloc.stats().live_bytes, 0);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(4096));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let n0 = rack.node(0);
        let mut got = Vec::new();
        loop {
            match alloc.alloc(&n0, 1024) {
                Ok(a) => got.push(a),
                Err(SimError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(!got.is_empty());
        // Free one and allocation works again.
        alloc.free(&n0, got[0], 1024);
        assert!(alloc.alloc(&n0, 1024).is_ok());
    }
}
