//! Tiny binary encoding helpers shared by the operation log, delegation
//! requests, RPC, and the redis-mini protocol glue.
//!
//! The format is deliberately trivial: little-endian fixed-width integers
//! and length-prefixed byte strings. It exists so that every layer that
//! ships bytes across the interconnect encodes them the same way and is
//! testable in isolation.

/// Incremental encoder producing a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Finish, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoding error: the buffer was shorter than the requested field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// Bytes the failed read needed.
    pub needed: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated buffer at offset {} (needed {} bytes)",
            self.at, self.needed
        )
    }
}

impl std::error::Error for DecodeError {}

/// Cursor-style decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError {
                at: self.pos,
                needed: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("len 4")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("len 8")))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// FNV-1a 64-bit hash, used for keys and content hashes across the stack.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut e = Encoder::new();
        e.put_u8(7)
            .put_u32(123)
            .put_u64(u64::MAX)
            .put_bytes(b"abc")
            .put_str("xyz");
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 123);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.bytes().unwrap(), b"abc");
        assert_eq!(d.bytes().unwrap(), b"xyz");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_decode_fails_cleanly() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello");
        let v = e.into_vec();
        let mut d = Decoder::new(&v[..6]);
        let err = d.bytes().unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn empty_bytes_roundtrip() {
        let mut e = Encoder::new();
        e.put_bytes(b"");
        assert!(!e.is_empty());
        let v = e.into_vec();
        assert_eq!(Decoder::new(&v).bytes().unwrap(), b"");
    }

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_eq!(fnv1a(b"flacos"), fnv1a(b"flacos"));
        assert_ne!(fnv1a(b"flacos"), fnv1a(b"flacos!"));
        assert_ne!(fnv1a(b""), 0);
    }
}
