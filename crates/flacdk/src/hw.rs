//! Level-1 FlacDK library: hardware-specific operations on global memory.
//!
//! Paper §3.2: *"The lowest level library contains hardware specific
//! operations that directly manipulate the global memory. These operations
//! include atomic instructions, memory barriers, and CPU cache related
//! instructions, such as cache flush, invalidation, and write back."*
//!
//! [`GlobalCell`] is the workhorse: one 64-bit word in global memory with
//! fabric-atomic operations, addressable from every node. Cells are what
//! log tails, epoch counters, lock words, ring indices, and pointers are
//! made of.

use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError};

/// A 64-bit word in global memory accessed exclusively with fabric
/// atomics (never through node caches), so it is always coherent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalCell {
    addr: GAddr,
}

impl GlobalCell {
    /// Allocate a new cell initialized to `init`.
    ///
    /// The cell is placed on its own cache line to avoid false sharing
    /// with neighbouring data.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(global: &GlobalMemory, init: u64) -> Result<Self, SimError> {
        let addr = global.alloc(rack_sim::LINE_SIZE, rack_sim::LINE_SIZE)?;
        global.store_u64(addr, init)?;
        Ok(GlobalCell { addr })
    }

    /// Wrap an existing aligned global word (e.g. inside a larger header).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn at(addr: GAddr) -> Self {
        assert!(addr.is_aligned(8), "GlobalCell requires 8-byte alignment");
        GlobalCell { addr }
    }

    /// The cell's global address.
    pub fn addr(&self) -> GAddr {
        self.addr
    }

    /// Atomic (uncached) load.
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors.
    pub fn load(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        ctx.load_uncached_u64(self.addr)
    }

    /// Atomic (uncached) store.
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors.
    pub fn store(&self, ctx: &NodeCtx, value: u64) -> Result<(), SimError> {
        ctx.store_uncached_u64(self.addr, value)
    }

    /// Fabric compare-exchange; returns previous value (success iff it
    /// equals `current`).
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors.
    pub fn compare_exchange(&self, ctx: &NodeCtx, current: u64, new: u64) -> Result<u64, SimError> {
        ctx.compare_exchange_u64(self.addr, current, new)
    }

    /// Fabric fetch-add; returns previous value.
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors.
    pub fn fetch_add(&self, ctx: &NodeCtx, delta: u64) -> Result<u64, SimError> {
        ctx.fetch_add_u64(self.addr, delta)
    }
}

/// Memory barrier kinds. On the simulator, barriers only charge a small
/// fixed cost (the simulated fabric is sequentially consistent for
/// atomics), but call sites document their ordering requirements by
/// issuing them, exactly as real FlacDK code would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Barrier {
    /// Order prior loads before subsequent loads.
    LoadLoad,
    /// Order prior stores before subsequent stores.
    StoreStore,
    /// Full fence.
    Full,
}

/// Issue a memory barrier on `ctx`.
pub fn barrier(ctx: &NodeCtx, kind: Barrier) {
    // Cost model: a fence stalls roughly one local access.
    let ns = match kind {
        Barrier::LoadLoad | Barrier::StoreStore => 8,
        Barrier::Full => 20,
    };
    ctx.charge(ns);
}

/// Write `buf` to global memory at `addr` and immediately write it back,
/// making it visible to other nodes (store + clean).
///
/// # Errors
///
/// Propagates bounds / poison / node-down errors.
pub fn publish_bytes(ctx: &NodeCtx, addr: GAddr, buf: &[u8]) -> Result<(), SimError> {
    ctx.write(addr, buf)?;
    ctx.writeback(addr, buf.len());
    Ok(())
}

/// Invalidate `[addr, addr+len)` then read it fresh from global memory —
/// the receive side of the publish/consume discipline.
///
/// # Errors
///
/// Propagates bounds / poison / node-down errors.
pub fn consume_bytes(ctx: &NodeCtx, addr: GAddr, buf: &mut [u8]) -> Result<(), SimError> {
    ctx.invalidate(addr, buf.len());
    ctx.read(addr, buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn cell_is_coherent_across_nodes() {
        let rack = Rack::new(RackConfig::small_test());
        let cell = GlobalCell::alloc(rack.global(), 10).unwrap();
        let (n0, n1) = (rack.node(0), rack.node(1));
        assert_eq!(cell.load(&n1).unwrap(), 10);
        cell.fetch_add(&n0, 5).unwrap();
        assert_eq!(cell.load(&n1).unwrap(), 15);
        assert_eq!(cell.compare_exchange(&n1, 15, 20).unwrap(), 15);
        assert_eq!(cell.load(&n0).unwrap(), 20);
    }

    #[test]
    fn cells_do_not_false_share() {
        let rack = Rack::new(RackConfig::small_test());
        let a = GlobalCell::alloc(rack.global(), 0).unwrap();
        let b = GlobalCell::alloc(rack.global(), 0).unwrap();
        assert!(b.addr().0 - a.addr().0 >= rack_sim::LINE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "alignment")]
    fn misaligned_cell_panics() {
        GlobalCell::at(GAddr(3));
    }

    #[test]
    fn publish_consume_roundtrip() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let addr = rack.global().alloc(256, 64).unwrap();
        // n1 caches the stale region first.
        let mut stale = [0u8; 256];
        n1.read(addr, &mut stale).unwrap();
        publish_bytes(&n0, addr, &[42; 256]).unwrap();
        let mut fresh = [0u8; 256];
        consume_bytes(&n1, addr, &mut fresh).unwrap();
        assert_eq!(
            fresh, [42; 256],
            "consume must see published data despite stale cache"
        );
    }

    #[test]
    fn barriers_charge_time() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let t0 = n0.clock().now();
        barrier(&n0, Barrier::Full);
        barrier(&n0, Barrier::LoadLoad);
        barrier(&n0, Barrier::StoreStore);
        assert!(n0.clock().now() > t0);
    }
}
