//! System monitoring: heartbeat table in global memory.
//!
//! Every node periodically publishes its simulated timestamp into its own
//! heartbeat cell with a fabric-atomic store. Any node can scan the table
//! and suspect peers whose heartbeat has gone stale — the first stage of
//! the paper's fault-handling pipeline, and the input signal for fault-box
//! migration decisions.

use crate::hw::GlobalCell;
use rack_sim::{GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Health classification of a node as seen by an observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeat within the timeout window.
    Healthy,
    /// Heartbeat stale — node suspected failed.
    Suspected,
    /// Node has never heartbeaten.
    Unknown,
}

/// A shared heartbeat table.
#[derive(Debug)]
pub struct HealthMonitor {
    beats: Vec<GlobalCell>,
    timeout_ns: u64,
}

impl HealthMonitor {
    /// Allocate a table for `nodes` nodes; peers are suspected after
    /// `timeout_ns` of silence.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        global: &GlobalMemory,
        nodes: usize,
        timeout_ns: u64,
    ) -> Result<Arc<Self>, SimError> {
        let beats = (0..nodes)
            .map(|_| GlobalCell::alloc(global, 0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(HealthMonitor { beats, timeout_ns }))
    }

    /// Publish a heartbeat for the calling node (timestamp + 1 so that a
    /// heartbeat at t=0 is distinguishable from "never").
    ///
    /// # Errors
    ///
    /// Propagates memory errors (a crashed node cannot beat).
    pub fn beat(&self, ctx: &NodeCtx) -> Result<(), SimError> {
        self.beats[ctx.id().0].store(ctx, ctx.clock().now() + 1)
    }

    /// Classify `target` from the observer `ctx`'s current time.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn health_of(&self, ctx: &NodeCtx, target: NodeId) -> Result<NodeHealth, SimError> {
        let beat = self.beats[target.0].load(ctx)?;
        if beat == 0 {
            return Ok(NodeHealth::Unknown);
        }
        let now = ctx.clock().now();
        Ok(if now.saturating_sub(beat - 1) > self.timeout_ns {
            NodeHealth::Suspected
        } else {
            NodeHealth::Healthy
        })
    }

    /// All currently suspected nodes.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn suspects(&self, ctx: &NodeCtx) -> Result<Vec<NodeId>, SimError> {
        let mut out = Vec::new();
        for (i, _) in self.beats.iter().enumerate() {
            if self.health_of(ctx, NodeId(i))? == NodeHealth::Suspected {
                out.push(NodeId(i));
            }
        }
        Ok(out)
    }

    /// The configured suspicion timeout.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn fresh_beat_is_healthy_stale_is_suspected() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let mon = HealthMonitor::alloc(rack.global(), 2, 10_000).unwrap();

        assert_eq!(mon.health_of(&n0, n1.id()).unwrap(), NodeHealth::Unknown);
        mon.beat(&n1).unwrap();
        assert_eq!(mon.health_of(&n0, n1.id()).unwrap(), NodeHealth::Healthy);

        // Observer time advances past the timeout with no new beat.
        n0.charge(50_000);
        assert_eq!(mon.health_of(&n0, n1.id()).unwrap(), NodeHealth::Suspected);
        assert_eq!(mon.suspects(&n0).unwrap(), vec![n1.id()]);
    }

    #[test]
    fn crashed_node_cannot_beat_and_gets_suspected() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let mon = HealthMonitor::alloc(rack.global(), 2, 1_000).unwrap();
        mon.beat(&n1).unwrap();
        rack.faults().crash_node(n1.id(), 0);
        assert!(mon.beat(&n1).is_err());
        n0.charge(10_000);
        assert_eq!(mon.health_of(&n0, n1.id()).unwrap(), NodeHealth::Suspected);
    }

    #[test]
    fn beat_at_time_zero_counts() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let mon = HealthMonitor::alloc(rack.global(), 2, 1_000).unwrap();
        // n0's clock is ~0 before any operations.
        mon.beat(&n0).unwrap();
        assert_ne!(mon.health_of(&n0, n0.id()).unwrap(), NodeHealth::Unknown);
    }
}
