//! Fault detection: checksum guards over global-memory regions.
//!
//! Two fault classes are detected:
//!
//! * **Poisoned memory** — the fabric reports an uncorrectable error on
//!   access (our simulator returns [`rack_sim::SimError::PoisonedMemory`]).
//! * **Silent corruption** — the read succeeds but the content no longer
//!   matches the checksum recorded when the region was last known good
//!   (the paper cites fleet studies of silent data corruption).
//!
//! Detections feed the recovery manager, which scrubs and restores from
//! checkpoints.

use crate::wire::fnv1a;
use rack_sim::{GAddr, NodeCtx, SimError};
use std::collections::HashMap;

/// Result of scanning one guarded region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Detection {
    /// Content matches its recorded checksum.
    Clean,
    /// Access faulted (uncorrectable/poisoned memory).
    Poisoned {
        /// First faulting address.
        addr: GAddr,
    },
    /// Content readable but checksum mismatch.
    Corrupted {
        /// Checksum recorded when last known good.
        expected: u64,
        /// Checksum of current content.
        actual: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Guarded {
    addr: GAddr,
    len: usize,
    sum: u64,
}

/// Checksum-based detector over a set of named regions.
#[derive(Debug, Default)]
pub struct FaultDetector {
    regions: HashMap<u64, Guarded>,
}

impl FaultDetector {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn read_region(ctx: &NodeCtx, addr: GAddr, len: usize) -> Result<Vec<u8>, SimError> {
        ctx.invalidate(addr, len);
        let mut buf = vec![0u8; len];
        ctx.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Record the current content of `[addr, addr+len)` as known good
    /// under the name `region`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors (cannot baseline a faulty region).
    pub fn protect(
        &mut self,
        ctx: &NodeCtx,
        region: u64,
        addr: GAddr,
        len: usize,
    ) -> Result<(), SimError> {
        let buf = Self::read_region(ctx, addr, len)?;
        self.regions.insert(
            region,
            Guarded {
                addr,
                len,
                sum: fnv1a(&buf),
            },
        );
        Ok(())
    }

    /// Re-baseline `region` after a legitimate update.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown regions; memory errors are
    /// propagated.
    pub fn refresh(&mut self, ctx: &NodeCtx, region: u64) -> Result<(), SimError> {
        let g = *self
            .regions
            .get(&region)
            .ok_or_else(|| SimError::Protocol(format!("unknown region {region}")))?;
        self.protect(ctx, region, g.addr, g.len)
    }

    /// Stop guarding `region`.
    pub fn unprotect(&mut self, region: u64) {
        self.regions.remove(&region);
    }

    /// Check one region.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown regions. Poison is *reported*,
    /// not returned as an error.
    pub fn check(&self, ctx: &NodeCtx, region: u64) -> Result<Detection, SimError> {
        let g = self
            .regions
            .get(&region)
            .ok_or_else(|| SimError::Protocol(format!("unknown region {region}")))?;
        match Self::read_region(ctx, g.addr, g.len) {
            Err(SimError::PoisonedMemory { addr }) => Ok(Detection::Poisoned { addr }),
            Err(e) => Err(e),
            Ok(buf) => {
                let actual = fnv1a(&buf);
                if actual == g.sum {
                    Ok(Detection::Clean)
                } else {
                    Ok(Detection::Corrupted {
                        expected: g.sum,
                        actual,
                    })
                }
            }
        }
    }

    /// Scan every guarded region, returning the non-clean ones.
    ///
    /// # Errors
    ///
    /// Propagates unexpected memory errors.
    pub fn scan(&self, ctx: &NodeCtx) -> Result<Vec<(u64, Detection)>, SimError> {
        let mut out = Vec::new();
        let mut ids: Vec<u64> = self.regions.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let d = self.check(ctx, id)?;
            if d != Detection::Clean {
                out.push((id, d));
            }
        }
        Ok(out)
    }

    /// The guarded address range of `region`, if known.
    pub fn region_range(&self, region: u64) -> Option<(GAddr, usize)> {
        self.regions.get(&region).map(|g| (g.addr, g.len))
    }

    /// Number of guarded regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are guarded.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, FaultDetector) {
        (Rack::new(RackConfig::small_test()), FaultDetector::new())
    }

    #[test]
    fn clean_region_stays_clean() {
        let (rack, mut det) = setup();
        let n0 = rack.node(0);
        let a = rack.global().alloc(128, 8).unwrap();
        n0.write(a, &[5; 128]).unwrap();
        n0.writeback(a, 128);
        det.protect(&n0, 1, a, 128).unwrap();
        assert_eq!(det.check(&n0, 1).unwrap(), Detection::Clean);
        assert!(det.scan(&n0).unwrap().is_empty());
    }

    #[test]
    fn poisoned_region_detected() {
        let (rack, mut det) = setup();
        let n0 = rack.node(0);
        let a = rack.global().alloc(128, 8).unwrap();
        det.protect(&n0, 1, a, 128).unwrap();
        rack.faults()
            .poison_memory(rack.global(), a.offset(64), 8, 0);
        match det.check(&n0, 1).unwrap() {
            Detection::Poisoned { addr } => assert_eq!(addr, a.offset(64)),
            other => panic!("expected poison, got {other:?}"),
        }
    }

    #[test]
    fn silent_corruption_detected() {
        let (rack, mut det) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let a = rack.global().alloc(64, 8).unwrap();
        det.protect(&n0, 2, a, 64).unwrap();
        // Bit flip without poison: another writer scribbles directly.
        n1.store_uncached_u64(a, 0xbad).unwrap();
        assert!(matches!(
            det.check(&n0, 2).unwrap(),
            Detection::Corrupted { .. }
        ));
        // Legitimate update + refresh re-baselines.
        det.refresh(&n0, 2).unwrap();
        assert_eq!(det.check(&n0, 2).unwrap(), Detection::Clean);
    }

    #[test]
    fn scan_reports_only_bad_regions_sorted() {
        let (rack, mut det) = setup();
        let n0 = rack.node(0);
        let a = rack.global().alloc(64, 8).unwrap();
        let b = rack.global().alloc(64, 8).unwrap();
        det.protect(&n0, 10, a, 64).unwrap();
        det.protect(&n0, 11, b, 64).unwrap();
        rack.faults().poison_memory(rack.global(), b, 8, 0);
        let bad = det.scan(&n0).unwrap();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 11);
    }

    #[test]
    fn unknown_region_is_protocol_error() {
        let (rack, det) = setup();
        assert!(det.check(&rack.node(0), 99).is_err());
        assert!(det.is_empty());
    }
}
