//! Fault recovery: scrub + checkpoint restore + operation-log replay.
//!
//! Paper §3.2: *"operation logs used for synchronization about object
//! updates can be utilized to achieve state replay during fault
//! recovery."* Recovery proceeds in three steps:
//!
//! 1. **Scrub** poisoned words in the failed object's range.
//! 2. **Restore** the object's bytes from the most recent checkpoint.
//! 3. **Replay** committed operation-log entries appended since that
//!    checkpoint through a caller-supplied applier, rolling the object
//!    forward to the latest consistent state.
//!
//! The [`RecoveryReport`] quantifies each step; the fault-box experiment
//! (`figures -- faultbox`) uses it to measure isolation radius and
//! recovery latency.

use crate::reliability::checkpoint::{Checkpoint, CheckpointManager};
use crate::sync::oplog::SharedOpLog;
use rack_sim::{NodeCtx, SimError};

/// Outcome metrics of one recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes restored from the checkpoint.
    pub restored_bytes: usize,
    /// Log entries replayed on top of the checkpoint.
    pub replayed_ops: u64,
    /// Simulated nanoseconds the recovery took.
    pub recovery_ns: u64,
}

/// Orchestrates scrub → restore → replay.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    checkpoints: CheckpointManager,
}

impl RecoveryManager {
    /// A manager restoring through `checkpoints`.
    pub fn new(checkpoints: CheckpointManager) -> Self {
        RecoveryManager { checkpoints }
    }

    /// Recover object `id` from `ckpt`, then replay committed log
    /// entries `[replay_from, log.tail)` through `apply`.
    ///
    /// `apply` receives each logged operation and is expected to reapply
    /// it to the restored object (it runs on `ctx` and should perform its
    /// own coherent writes). Replay stops cleanly at the first
    /// uncommitted slot (a crash mid-append leaves a hole; everything
    /// before it is consistent).
    ///
    /// # Errors
    ///
    /// Propagates restore and memory errors.
    pub fn recover_object(
        &self,
        ctx: &NodeCtx,
        ckpt: &Checkpoint,
        id: u64,
        log: Option<(&SharedOpLog, u64)>,
        mut apply: impl FnMut(&NodeCtx, &[u8]) -> Result<(), SimError>,
    ) -> Result<RecoveryReport, SimError> {
        let start = ctx.clock().now();
        let restored_bytes = self.checkpoints.restore(ctx, ckpt, id)?;
        let mut replayed_ops = 0;
        if let Some((log, replay_from)) = log {
            let tail = log.tail(ctx)?;
            let from = replay_from.max(log.head(ctx)?);
            for idx in from..tail {
                match log.read(ctx, idx)? {
                    Some(op) => {
                        apply(ctx, &op)?;
                        replayed_ops += 1;
                    }
                    None => break, // crash hole: stop at last committed prefix
                }
            }
        }
        Ok(RecoveryReport {
            restored_bytes,
            replayed_ops,
            recovery_ns: ctx.clock().now() - start,
        })
    }

    /// The underlying checkpoint manager.
    pub fn checkpoints(&self) -> &CheckpointManager {
        &self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::object::GlobalAllocator;
    use crate::sync::rcu::EpochManager;
    use rack_sim::{GAddr, Rack, RackConfig};

    fn setup() -> (Rack, RecoveryManager, SharedOpLog, GAddr) {
        let rack = Rack::new(RackConfig::small_test());
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let rm = RecoveryManager::new(CheckpointManager::new(alloc, epochs));
        let log = SharedOpLog::alloc(rack.global(), 32, 64).unwrap();
        let obj = rack.global().alloc(64, 8).unwrap();
        (rack, rm, log, obj)
    }

    /// The "object" is a u64 counter at `obj`; ops are add-deltas.
    fn apply_add(obj: GAddr) -> impl FnMut(&NodeCtx, &[u8]) -> Result<(), SimError> {
        move |ctx, op| {
            let delta = u64::from_le_bytes(op.try_into().expect("8-byte op"));
            ctx.invalidate(obj, 8);
            let cur = ctx.read_u64(obj)?;
            ctx.write_u64(obj, cur + delta)?;
            ctx.writeback(obj, 8);
            Ok(())
        }
    }

    #[test]
    fn recovery_restores_then_replays_to_latest_state() {
        let (rack, rm, log, obj) = setup();
        let n0 = rack.node(0);

        // State = 10, checkpoint, then 3 more logged updates (+1,+2,+3).
        n0.write_u64(obj, 10).unwrap();
        n0.writeback(obj, 8);
        let ckpt = rm.checkpoints().capture(&n0, &[(1, obj, 8)]).unwrap();
        let replay_from = log.tail(&n0).unwrap();
        for d in [1u64, 2, 3] {
            log.append(&n0, &d.to_le_bytes()).unwrap();
            let cur = n0.read_u64(obj).unwrap();
            n0.write_u64(obj, cur + d).unwrap();
            n0.writeback(obj, 8);
        }

        // Fault destroys the object.
        rack.faults().poison_memory(rack.global(), obj, 8, 0);
        n0.invalidate(obj, 8);
        assert!(n0.read_u64(obj).is_err());

        let report = rm
            .recover_object(&n0, &ckpt, 1, Some((&log, replay_from)), apply_add(obj))
            .unwrap();
        assert_eq!(report.restored_bytes, 8);
        assert_eq!(report.replayed_ops, 3);
        assert!(report.recovery_ns > 0);
        n0.invalidate(obj, 8);
        assert_eq!(
            n0.read_u64(obj).unwrap(),
            16,
            "10 checkpointed + 1+2+3 replayed"
        );
    }

    #[test]
    fn recovery_without_log_restores_checkpoint_state() {
        let (rack, rm, _, obj) = setup();
        let n0 = rack.node(0);
        n0.write_u64(obj, 5).unwrap();
        n0.writeback(obj, 8);
        let ckpt = rm.checkpoints().capture(&n0, &[(1, obj, 8)]).unwrap();
        n0.write_u64(obj, 999).unwrap();
        n0.writeback(obj, 8);
        let report = rm
            .recover_object(&n0, &ckpt, 1, None, |_, _| Ok(()))
            .unwrap();
        assert_eq!(report.replayed_ops, 0);
        n0.invalidate(obj, 8);
        assert_eq!(n0.read_u64(obj).unwrap(), 5);
    }

    #[test]
    fn replay_respects_gc_head() {
        let (rack, rm, log, obj) = setup();
        let n0 = rack.node(0);
        n0.write_u64(obj, 0).unwrap();
        n0.writeback(obj, 8);
        let ckpt = rm.checkpoints().capture(&n0, &[(1, obj, 8)]).unwrap();
        for d in [1u64, 2, 3, 4] {
            log.append(&n0, &d.to_le_bytes()).unwrap();
        }
        // Entries 0..2 collected: replay must start at head even though
        // the caller asked for 0.
        log.advance_head(&n0, 2).unwrap();
        let report = rm
            .recover_object(&n0, &ckpt, 1, Some((&log, 0)), apply_add(obj))
            .unwrap();
        assert_eq!(report.replayed_ops, 2);
        n0.invalidate(obj, 8);
        assert_eq!(n0.read_u64(obj).unwrap(), 3 + 4);
    }
}
