//! FlacDK reliability mechanisms (paper §3.2 "Reliability").
//!
//! *"These mechanisms cover the entire fault handling process, including
//! system monitoring, failure prediction, fault detection, checkpointing,
//! and recovery."* — one module per stage:
//!
//! * [`monitor`] — heartbeat table in global memory; suspects silent nodes.
//! * [`predict`] — correctable-error rate tracking; predicts regions
//!   about to fail so data can be migrated pre-emptively.
//! * [`detect`] — checksum guards over global regions; detects both
//!   poisoned words (read faults) and silent corruption.
//! * [`checkpoint`] — epoch-pinned object snapshots; reuses the RCU
//!   multi-version machinery (the sync/reliability co-design).
//! * [`recover`] — scrub + checkpoint restore + operation-log replay.

pub mod checkpoint;
pub mod detect;
pub mod monitor;
pub mod predict;
pub mod recover;

pub use checkpoint::{Checkpoint, CheckpointManager};
pub use detect::{Detection, FaultDetector};
pub use monitor::{HealthMonitor, NodeHealth};
pub use predict::FailurePredictor;
pub use recover::{RecoveryManager, RecoveryReport};
