//! Checkpointing integrated with quiescence-based synchronization.
//!
//! Paper §3.2: *"Data checkpointing can be incorporated with multiple
//! object versions in quiescence-based synchronization."* A checkpoint
//! here pins the RCU epoch for its duration, so every version it copies
//! is guaranteed to stay allocated while being read (reclamation respects
//! pins — see [`crate::sync::reclaim`]). Snapshots are themselves stored
//! in global memory with per-object checksums so restores can verify
//! integrity.

use crate::alloc::object::GlobalAllocator;
use crate::sync::rcu::EpochManager;
use crate::wire::fnv1a;
use rack_sim::{GAddr, NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::Arc;

/// One object captured in a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Caller's object identifier.
    pub id: u64,
    /// The object's live location at capture time.
    pub src: GAddr,
    /// Where the snapshot copy lives.
    pub copy: GAddr,
    /// Object length in bytes.
    pub len: usize,
    /// Checksum of the captured content.
    pub sum: u64,
}

/// A completed checkpoint of a set of objects.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    entries: HashMap<u64, CheckpointEntry>,
    /// Epoch pinned while the checkpoint was taken.
    pub epoch: u64,
    /// Simulated time at which the capture completed.
    pub at_ns: u64,
}

impl Checkpoint {
    /// Entry for object `id`, if captured.
    pub fn entry(&self, id: u64) -> Option<&CheckpointEntry> {
        self.entries.get(&id)
    }

    /// Number of captured objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total snapshot bytes.
    pub fn bytes(&self) -> usize {
        self.entries.values().map(|e| e.len).sum()
    }

    /// All entries (deterministic order by id).
    pub fn entries(&self) -> Vec<CheckpointEntry> {
        let mut v: Vec<CheckpointEntry> = self.entries.values().copied().collect();
        v.sort_by_key(|e| e.id);
        v
    }
}

/// Captures and restores checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    alloc: GlobalAllocator,
    epochs: Arc<EpochManager>,
}

impl CheckpointManager {
    /// A manager drawing snapshot storage from `alloc` and pinning
    /// epochs on `epochs`.
    pub fn new(alloc: GlobalAllocator, epochs: Arc<EpochManager>) -> Self {
        CheckpointManager { alloc, epochs }
    }

    /// Capture `(id, addr, len)` objects into a new checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates allocation and memory errors; a poisoned source object
    /// fails the checkpoint (callers should checkpoint *before* faults).
    pub fn capture(
        &self,
        ctx: &NodeCtx,
        objects: &[(u64, GAddr, usize)],
    ) -> Result<Checkpoint, SimError> {
        let pin = self.epochs.pin(ctx)?;
        let epoch = self.epochs.current(ctx)?;
        let result = self.capture_inner(ctx, objects);
        self.epochs.unpin(pin);
        let entries = result?;
        Ok(Checkpoint {
            entries,
            epoch,
            at_ns: ctx.clock().now(),
        })
    }

    fn capture_inner(
        &self,
        ctx: &NodeCtx,
        objects: &[(u64, GAddr, usize)],
    ) -> Result<HashMap<u64, CheckpointEntry>, SimError> {
        let mut entries = HashMap::new();
        for &(id, src, len) in objects {
            ctx.invalidate(src, len);
            let mut buf = vec![0u8; len];
            ctx.read(src, &mut buf)?;
            let copy = self.alloc.alloc(ctx, len)?;
            ctx.write(copy, &buf)?;
            ctx.writeback(copy, len);
            entries.insert(
                id,
                CheckpointEntry {
                    id,
                    src,
                    copy,
                    len,
                    sum: fnv1a(&buf),
                },
            );
        }
        Ok(entries)
    }

    /// Incremental capture: reuse `base`'s snapshot for objects not in
    /// `dirty`, copy only dirty ones. Objects absent from `base` are
    /// always copied.
    ///
    /// # Errors
    ///
    /// As [`CheckpointManager::capture`].
    pub fn capture_incremental(
        &self,
        ctx: &NodeCtx,
        base: &Checkpoint,
        objects: &[(u64, GAddr, usize)],
        dirty: &[u64],
    ) -> Result<Checkpoint, SimError> {
        let to_copy: Vec<(u64, GAddr, usize)> = objects
            .iter()
            .copied()
            .filter(|(id, _, _)| dirty.contains(id) || base.entry(*id).is_none())
            .collect();
        let mut ckpt = self.capture(ctx, &to_copy)?;
        for (id, _, _) in objects {
            if !ckpt.entries.contains_key(id) {
                if let Some(e) = base.entry(*id) {
                    ckpt.entries.insert(*id, *e);
                }
            }
        }
        Ok(ckpt)
    }

    /// Restore object `id` from `ckpt` back to its source location,
    /// scrubbing poisoned words first. Returns the restored byte count.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `id` was not captured or the snapshot
    /// itself fails its checksum; memory errors are propagated.
    pub fn restore(&self, ctx: &NodeCtx, ckpt: &Checkpoint, id: u64) -> Result<usize, SimError> {
        let e = ckpt
            .entry(id)
            .ok_or_else(|| SimError::Protocol(format!("object {id} not in checkpoint")))?;
        ctx.invalidate(e.copy, e.len);
        let mut buf = vec![0u8; e.len];
        ctx.read(e.copy, &mut buf)?;
        if fnv1a(&buf) != e.sum {
            return Err(SimError::Protocol(format!(
                "checkpoint copy of object {id} corrupt"
            )));
        }
        // Scrub any poison at the destination, then rewrite and publish.
        ctx.global().scrub(e.src, e.len);
        ctx.invalidate(e.src, e.len);
        ctx.write(e.src, &buf)?;
        ctx.writeback(e.src, e.len);
        Ok(e.len)
    }

    /// Release a checkpoint's snapshot storage.
    pub fn discard(&self, ctx: &NodeCtx, ckpt: Checkpoint) {
        for e in ckpt.entries.values() {
            self.alloc.free(ctx, e.copy, e.len);
        }
    }

    /// The allocator backing snapshot storage.
    pub fn allocator(&self) -> &GlobalAllocator {
        &self.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, CheckpointManager) {
        let rack = Rack::new(RackConfig::small_test());
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        (rack.clone(), CheckpointManager::new(alloc, epochs))
    }

    #[test]
    fn capture_then_restore_after_poison() {
        let (rack, cm) = setup();
        let n0 = rack.node(0);
        let obj = rack.global().alloc(64, 8).unwrap();
        n0.write(obj, &[9; 64]).unwrap();
        n0.writeback(obj, 64);

        let ckpt = cm.capture(&n0, &[(1, obj, 64)]).unwrap();
        assert_eq!(ckpt.len(), 1);
        assert_eq!(ckpt.bytes(), 64);

        rack.faults().poison_memory(rack.global(), obj, 16, 100);
        n0.invalidate(obj, 64); // drop cached copy so the fault is visible
        assert!(n0.read_u64(obj).is_err());

        let restored = cm.restore(&n0, &ckpt, 1).unwrap();
        assert_eq!(restored, 64);
        let mut buf = [0u8; 64];
        n0.invalidate(obj, 64);
        n0.read(obj, &mut buf).unwrap();
        assert_eq!(buf, [9; 64]);
    }

    #[test]
    fn restore_unknown_object_fails() {
        let (rack, cm) = setup();
        let n0 = rack.node(0);
        let ckpt = cm.capture(&n0, &[]).unwrap();
        assert!(ckpt.is_empty());
        assert!(cm.restore(&n0, &ckpt, 1).is_err());
    }

    #[test]
    fn incremental_copies_only_dirty() {
        let (rack, cm) = setup();
        let n0 = rack.node(0);
        let a = rack.global().alloc(64, 8).unwrap();
        let b = rack.global().alloc(64, 8).unwrap();
        n0.write(a, &[1; 64]).unwrap();
        n0.write(b, &[2; 64]).unwrap();
        n0.writeback(a, 64);
        n0.writeback(b, 64);
        let objects = [(1u64, a, 64usize), (2, b, 64)];
        let base = cm.capture(&n0, &objects).unwrap();

        n0.write(b, &[3; 64]).unwrap();
        n0.writeback(b, 64);
        let inc = cm.capture_incremental(&n0, &base, &objects, &[2]).unwrap();
        // Clean object shares the base copy; dirty one got a fresh copy.
        assert_eq!(inc.entry(1).unwrap().copy, base.entry(1).unwrap().copy);
        assert_ne!(inc.entry(2).unwrap().copy, base.entry(2).unwrap().copy);

        // Restoring from the incremental checkpoint yields the new data.
        rack.global().poison(b, 64);
        cm.restore(&n0, &inc, 2).unwrap();
        let mut buf = [0u8; 64];
        n0.invalidate(b, 64);
        n0.read(b, &mut buf).unwrap();
        assert_eq!(buf, [3; 64]);
    }

    #[test]
    fn corrupt_snapshot_refuses_restore() {
        let (rack, cm) = setup();
        let n0 = rack.node(0);
        let obj = rack.global().alloc(64, 8).unwrap();
        let ckpt = cm.capture(&n0, &[(1, obj, 64)]).unwrap();
        // Corrupt the snapshot copy itself.
        let copy = ckpt.entry(1).unwrap().copy;
        rack.node(1).store_uncached_u64(copy, 0xdead).unwrap();
        assert!(matches!(
            cm.restore(&n0, &ckpt, 1),
            Err(SimError::Protocol(_))
        ));
    }

    #[test]
    fn discard_recycles_snapshot_storage() {
        let (rack, cm) = setup();
        let n0 = rack.node(0);
        let obj = rack.global().alloc(64, 8).unwrap();
        let ckpt = cm.capture(&n0, &[(1, obj, 64)]).unwrap();
        cm.discard(&n0, ckpt);
        assert_eq!(cm.allocator().free_count(64), 1);
    }
}
