//! Failure prediction from correctable-error rates.
//!
//! Memory devices usually degrade before they fail hard: correctable ECC
//! error rates climb (the paper cites field studies of exactly this).
//! The predictor keeps an exponentially-weighted rate of correctable
//! errors per region and flags regions whose rate crosses a threshold,
//! so adaptive redundancy can raise protection or the relocator can
//! migrate the data *before* an uncorrectable fault.

use std::collections::HashMap;

/// Per-region degradation state.
#[derive(Debug, Clone, Copy, Default)]
struct RegionState {
    ewma_errors_per_sec: f64,
    last_event_ns: u64,
    total_errors: u64,
}

/// Exponentially-weighted correctable-error rate predictor.
#[derive(Debug, Clone)]
pub struct FailurePredictor {
    half_life_ns: f64,
    threshold_errors_per_sec: f64,
    regions: HashMap<u64, RegionState>,
}

impl FailurePredictor {
    /// A predictor whose rate estimate halves every `half_life_ns` of
    /// simulated quiet time, flagging regions above
    /// `threshold_errors_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(half_life_ns: u64, threshold_errors_per_sec: f64) -> Self {
        assert!(half_life_ns > 0, "half life must be positive");
        assert!(threshold_errors_per_sec > 0.0, "threshold must be positive");
        FailurePredictor {
            half_life_ns: half_life_ns as f64,
            threshold_errors_per_sec,
            regions: HashMap::new(),
        }
    }

    fn decayed(&self, s: RegionState, now_ns: u64) -> f64 {
        let dt = now_ns.saturating_sub(s.last_event_ns) as f64;
        s.ewma_errors_per_sec * 0.5f64.powf(dt / self.half_life_ns)
    }

    /// Record one correctable error in `region` at simulated `now_ns`.
    pub fn record_correctable(&mut self, region: u64, now_ns: u64) {
        let entry = self.regions.entry(region).or_default();
        let decayed = {
            let dt = now_ns.saturating_sub(entry.last_event_ns) as f64;
            entry.ewma_errors_per_sec * 0.5f64.powf(dt / self.half_life_ns)
        };
        // Each event adds a rate quantum of one error per half-life.
        entry.ewma_errors_per_sec = decayed + 1e9 / self.half_life_ns;
        entry.last_event_ns = now_ns;
        entry.total_errors += 1;
    }

    /// Current decayed error rate of `region` (errors/sec).
    pub fn rate(&self, region: u64, now_ns: u64) -> f64 {
        self.regions
            .get(&region)
            .map(|s| self.decayed(*s, now_ns))
            .unwrap_or(0.0)
    }

    /// Whether `region` is predicted to fail soon.
    pub fn predicts_failure(&self, region: u64, now_ns: u64) -> bool {
        self.rate(region, now_ns) > self.threshold_errors_per_sec
    }

    /// All regions currently predicted to fail, most degraded first.
    pub fn at_risk(&self, now_ns: u64) -> Vec<u64> {
        let mut v: Vec<(u64, f64)> = self
            .regions
            .iter()
            .map(|(r, s)| (*r, self.decayed(*s, now_ns)))
            .filter(|(_, rate)| *rate > self.threshold_errors_per_sec)
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v.into_iter().map(|(r, _)| r).collect()
    }

    /// Lifetime correctable-error count for `region`.
    pub fn total_errors(&self, region: u64) -> u64 {
        self.regions
            .get(&region)
            .map(|s| s.total_errors)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_of_errors_predicts_failure() {
        let mut p = FailurePredictor::new(SEC, 5.0);
        for i in 0..10 {
            p.record_correctable(1, i * 1_000_000);
        }
        assert!(p.predicts_failure(1, 10_000_000));
        assert!(!p.predicts_failure(2, 10_000_000), "quiet region untouched");
        assert_eq!(p.total_errors(1), 10);
    }

    #[test]
    fn rate_decays_over_quiet_time() {
        let mut p = FailurePredictor::new(SEC, 5.0);
        for i in 0..10 {
            p.record_correctable(1, i * 1_000_000);
        }
        assert!(p.predicts_failure(1, 10_000_000));
        // Several half-lives of silence.
        assert!(!p.predicts_failure(1, 10 * SEC));
        assert!(p.rate(1, 10 * SEC) < p.rate(1, 10_000_000));
    }

    #[test]
    fn at_risk_sorted_most_degraded_first() {
        let mut p = FailurePredictor::new(SEC, 1.0);
        for i in 0..3 {
            p.record_correctable(7, i);
        }
        for i in 0..9 {
            p.record_correctable(8, i);
        }
        assert_eq!(p.at_risk(10), vec![8, 7]);
    }

    #[test]
    fn single_error_below_threshold() {
        let mut p = FailurePredictor::new(SEC, 5.0);
        p.record_correctable(1, 0);
        assert!(!p.predicts_failure(1, 1));
    }
}
