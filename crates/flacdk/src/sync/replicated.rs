//! Replication-based synchronization (NR / node-replication style).
//!
//! Paper §3.2: *"This approach maintains a local replica in each node and
//! a shared operation log to synchronize across nodes. In the common
//! path, each node only accesses local replica to avoid contention.
//! Modifications are logged and replayed in each node to achieve
//! consistent and up-to-date states."*
//!
//! [`ReplicatedLog`] is the shared part (operation log + per-node applied
//! watermarks); [`ReplicatedHandle`] is a node's view: a local
//! [`Replica`] plus catch-up machinery. Reads are served from the local
//! replica after syncing against the log tail; mutations append to the
//! log and replay locally. Replicas never share cache lines, so
//! incoherence cannot corrupt them; the log itself uses the
//! publish/commit discipline of [`crate::sync::oplog`].

use crate::hw::GlobalCell;
use crate::sync::oplog::SharedOpLog;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

/// State machine replicated on every node.
///
/// Implementations must be deterministic: applying the same op sequence
/// on every node must converge to identical state.
pub trait Replica {
    /// Apply one logged operation to the local replica.
    fn apply(&mut self, op: &[u8]);
}

/// The shared (global-memory) portion of a replicated object: the
/// operation log plus one applied-watermark cell per node.
#[derive(Debug)]
pub struct ReplicatedLog {
    log: SharedOpLog,
    applied: Vec<GlobalCell>,
}

impl ReplicatedLog {
    /// Allocate shared state for `nodes` replicas.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        global: &GlobalMemory,
        nodes: usize,
        log_capacity: usize,
        entry_size: usize,
    ) -> Result<Arc<Self>, SimError> {
        let log = SharedOpLog::alloc(global, log_capacity, entry_size)?;
        let applied = (0..nodes)
            .map(|_| GlobalCell::alloc(global, 0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(ReplicatedLog { log, applied }))
    }

    /// The underlying operation log (exposed for recovery replay).
    pub fn log(&self) -> &SharedOpLog {
        &self.log
    }

    /// Smallest applied watermark across all replicas — entries below it
    /// are globally consumed and eligible for GC.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn min_applied(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let mut min = u64::MAX;
        for cell in &self.applied {
            min = min.min(cell.load(ctx)?);
        }
        Ok(if min == u64::MAX { 0 } else { min })
    }

    /// Release consumed log entries for reuse.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn gc(&self, ctx: &NodeCtx) -> Result<(), SimError> {
        let target = self.min_applied(ctx)?;
        if target > self.log.head(ctx)? {
            self.log.advance_head(ctx, target)?;
        }
        Ok(())
    }
}

/// A node's handle onto a replicated object: local replica + catch-up.
#[derive(Debug)]
pub struct ReplicatedHandle<R: Replica> {
    shared: Arc<ReplicatedLog>,
    node: Arc<NodeCtx>,
    replica: R,
    last_applied: u64,
}

impl<R: Replica> ReplicatedHandle<R> {
    /// Create this node's handle with a freshly initialized `replica`
    /// (which must equal the state produced by an empty op sequence).
    ///
    /// # Panics
    ///
    /// Panics if the shared state was allocated for fewer nodes than this
    /// node's id.
    pub fn new(shared: Arc<ReplicatedLog>, node: Arc<NodeCtx>, replica: R) -> Self {
        assert!(
            node.id().0 < shared.applied.len(),
            "shared state sized for {} nodes, node id {}",
            shared.applied.len(),
            node.id().0
        );
        ReplicatedHandle {
            shared,
            node,
            replica,
            last_applied: 0,
        }
    }

    /// Re-create this node's handle around a replica recovered out of
    /// band (e.g. by replaying the journal after a restart). `applied`
    /// is the number of log entries already folded into `replica`; the
    /// handle starts there instead of zero so recovery does not
    /// double-apply, and publishes the watermark so GC accounting stays
    /// correct.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the watermark store.
    ///
    /// # Panics
    ///
    /// Panics if the shared state was allocated for fewer nodes than this
    /// node's id.
    pub fn resume(
        shared: Arc<ReplicatedLog>,
        node: Arc<NodeCtx>,
        replica: R,
        applied: u64,
    ) -> Result<Self, SimError> {
        let handle = ReplicatedHandle {
            last_applied: applied,
            ..ReplicatedHandle::new(shared, node, replica)
        };
        handle.applied_cell().store(&handle.node, applied)?;
        Ok(handle)
    }

    fn applied_cell(&self) -> &GlobalCell {
        &self.shared.applied[self.node.id().0]
    }

    /// Replay committed log entries up to `target` into the local replica.
    fn catch_up_to(&mut self, target: u64) -> Result<(), SimError> {
        while self.last_applied < target {
            match self.shared.log.read(&self.node, self.last_applied)? {
                Some(op) => {
                    self.replica.apply(&op);
                    // Local replica update: charge local DRAM cost.
                    self.node.charge(self.node.latency().local_write_ns);
                    self.last_applied += 1;
                }
                // Claimed but uncommitted slot: the appender is mid-publish.
                // In the cooperative simulator this resolves on its next
                // step; report to the caller rather than spin forever.
                None => {
                    return Err(SimError::WouldBlock);
                }
            }
        }
        self.applied_cell().store(&self.node, self.last_applied)?;
        Ok(())
    }

    /// Bring the local replica up to date with the log tail.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if an in-flight append is not yet
    /// committed; memory errors are propagated.
    pub fn sync(&mut self) -> Result<(), SimError> {
        let tail = self.shared.log.tail(&self.node)?;
        self.catch_up_to(tail)
    }

    /// Execute a mutating operation: append to the shared log, then
    /// replay everything up to and including it locally.
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors.
    pub fn execute(&mut self, op: &[u8]) -> Result<(), SimError> {
        let idx = self.shared.log.append(&self.node, op)?;
        self.catch_up_to(idx + 1)
    }

    /// Read from the local replica after syncing with the log.
    ///
    /// # Errors
    ///
    /// As [`ReplicatedHandle::sync`].
    pub fn read<T>(&mut self, f: impl FnOnce(&R) -> T) -> Result<T, SimError> {
        self.sync()?;
        self.node.charge(self.node.latency().local_read_ns);
        Ok(f(&self.replica))
    }

    /// Read the local replica **without** syncing — fast but possibly
    /// stale; useful for monitoring or when the caller just synced.
    pub fn read_dirty<T>(&self, f: impl FnOnce(&R) -> T) -> T {
        f(&self.replica)
    }

    /// Index one past the last locally applied entry.
    pub fn applied(&self) -> u64 {
        self.last_applied
    }

    /// Shared log handle (e.g. for GC driving).
    pub fn shared(&self) -> &Arc<ReplicatedLog> {
        &self.shared
    }

    /// The node this handle runs on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    /// Toy replica: a register supporting add / set ops.
    #[derive(Debug, Default, PartialEq)]
    struct Counter {
        value: u64,
        ops: u64,
    }

    impl Replica for Counter {
        fn apply(&mut self, op: &[u8]) {
            let v = u64::from_le_bytes(op[1..9].try_into().unwrap());
            match op[0] {
                0 => self.value += v,
                _ => self.value = v,
            }
            self.ops += 1;
        }
    }

    fn add(v: u64) -> Vec<u8> {
        let mut op = vec![0u8];
        op.extend_from_slice(&v.to_le_bytes());
        op
    }

    fn set(v: u64) -> Vec<u8> {
        let mut op = vec![1u8];
        op.extend_from_slice(&v.to_le_bytes());
        op
    }

    #[test]
    fn replicas_converge_across_nodes() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedLog::alloc(rack.global(), 2, 64, 64).unwrap();
        let mut h0 = ReplicatedHandle::new(shared.clone(), rack.node(0), Counter::default());
        let mut h1 = ReplicatedHandle::new(shared, rack.node(1), Counter::default());

        h0.execute(&add(5)).unwrap();
        h1.execute(&add(7)).unwrap();
        h0.execute(&set(100)).unwrap();
        h1.execute(&add(1)).unwrap();

        assert_eq!(h0.read(|c| c.value).unwrap(), 101);
        assert_eq!(h1.read(|c| c.value).unwrap(), 101);
        assert_eq!(h0.read_dirty(|c| c.ops), 4);
        assert_eq!(h1.read_dirty(|c| c.ops), 4);
    }

    #[test]
    fn reads_are_local_after_sync() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedLog::alloc(rack.global(), 2, 64, 64).unwrap();
        let mut h0 = ReplicatedHandle::new(shared, rack.node(0), Counter::default());
        h0.execute(&add(1)).unwrap();
        h0.sync().unwrap();
        let reads_before = h0.node().stats().snapshot().global_reads;
        // A synced read with no new log entries touches the tail cell only.
        h0.read(|c| c.value).unwrap();
        let reads_after = h0.node().stats().snapshot().global_reads;
        assert!(
            reads_after - reads_before <= 2,
            "read path must stay (almost) local"
        );
    }

    #[test]
    fn gc_reclaims_consumed_entries() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedLog::alloc(rack.global(), 2, 4, 64).unwrap();
        let mut h0 = ReplicatedHandle::new(shared.clone(), rack.node(0), Counter::default());
        let mut h1 = ReplicatedHandle::new(shared.clone(), rack.node(1), Counter::default());
        for i in 0..4 {
            h0.execute(&add(i)).unwrap();
        }
        // Log full until node 1 catches up and GC runs.
        assert!(h0.execute(&add(9)).is_err());
        h1.sync().unwrap();
        shared.gc(&rack.node(0)).unwrap();
        h0.execute(&add(9)).unwrap();
        assert_eq!(h0.read(|c| c.value).unwrap(), 1 + 2 + 3 + 9);
        assert_eq!(h1.read(|c| c.value).unwrap(), 15);
    }

    #[test]
    fn min_applied_tracks_slowest_replica() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedLog::alloc(rack.global(), 2, 16, 64).unwrap();
        let mut h0 = ReplicatedHandle::new(shared.clone(), rack.node(0), Counter::default());
        let _h1 = ReplicatedHandle::new(shared.clone(), rack.node(1), Counter::default());
        h0.execute(&add(1)).unwrap();
        h0.execute(&add(2)).unwrap();
        assert_eq!(
            shared.min_applied(&rack.node(0)).unwrap(),
            0,
            "node1 never synced"
        );
    }

    #[test]
    fn resumed_handle_does_not_double_apply() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedLog::alloc(rack.global(), 2, 64, 64).unwrap();
        let mut h0 = ReplicatedHandle::new(shared.clone(), rack.node(0), Counter::default());
        h0.execute(&add(5)).unwrap();
        h0.execute(&add(7)).unwrap();

        // Node 1 "restarts": rebuild its replica by replaying the log out
        // of band, then resume at the replayed watermark.
        let mut recovered = Counter::default();
        let mut replayed = 0;
        let tail = shared.log().tail(&rack.node(1)).unwrap();
        for idx in 0..tail {
            let op = shared.log().read(&rack.node(1), idx).unwrap().unwrap();
            recovered.apply(&op);
            replayed += 1;
        }
        let mut h1 =
            ReplicatedHandle::resume(shared.clone(), rack.node(1), recovered, replayed).unwrap();
        assert_eq!(h1.applied(), 2);
        assert_eq!(h1.read(|c| (c.value, c.ops)).unwrap(), (12, 2));

        // New ops after the resume apply exactly once.
        h0.execute(&add(1)).unwrap();
        assert_eq!(h1.read(|c| (c.value, c.ops)).unwrap(), (13, 3));
        // The resumed node's watermark is visible to GC accounting.
        assert_eq!(shared.min_applied(&rack.node(0)).unwrap(), 3);
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn handle_for_unknown_node_panics() {
        let rack = Rack::new(RackConfig::n_node(3));
        let shared = ReplicatedLog::alloc(rack.global(), 2, 16, 64).unwrap();
        let _ = ReplicatedHandle::new(shared, rack.node(2), Counter::default());
    }
}
