//! Quiescence-based synchronization: epoch RCU with multi-version cells.
//!
//! Paper §3.2: *"This approach employs read-copy-update (RCU) style
//! synchronization to avoid in-place modification. Particularly, this
//! method is efficient in non-cache-coherent shared memory as it converts
//! tracking stale cache lines to parallel reference in RCU."*
//!
//! The key trick for incoherent fabrics: a writer never modifies a
//! published block. It allocates a *fresh* block (whose address the
//! reader has never cached), publishes it with a write-back, and swings
//! an atomic pointer. A reader that loads the pointer atomically and
//! invalidates the (possibly never-before-seen) block range before
//! reading is guaranteed fresh data — stale cache lines can only belong
//! to *old versions*, which stay intact until reclamation proves no
//! reader or checkpoint can still hold them.

use crate::alloc::object::GlobalAllocator;
use crate::hw::GlobalCell;
use crate::sync::reclaim::RetireList;
use rack_sim::sync::Mutex;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::Arc;

/// Reader slot value meaning "not in a read-side critical section".
const QUIESCENT: u64 = 0;

/// Rack-wide epoch state: a global epoch counter plus one reader slot per
/// node, each on its own cache line, all manipulated with fabric atomics.
#[derive(Debug)]
pub struct EpochManager {
    epoch: GlobalCell,
    slots: Vec<GlobalCell>,
    pins: Mutex<HashMap<u64, u64>>, // pin id -> pinned epoch
    next_pin: Mutex<u64>,
}

impl EpochManager {
    /// Allocate epoch state for `nodes` nodes. Epochs start at 1 so that
    /// `0` can mean "quiescent".
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(global: &GlobalMemory, nodes: usize) -> Result<Arc<Self>, SimError> {
        let epoch = GlobalCell::alloc(global, 1)?;
        let slots = (0..nodes)
            .map(|_| GlobalCell::alloc(global, QUIESCENT))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(EpochManager {
            epoch,
            slots,
            pins: Mutex::new(HashMap::new()),
            next_pin: Mutex::new(1),
        }))
    }

    /// Number of per-node reader slots this manager was sized for.
    pub fn nodes(&self) -> usize {
        self.slots.len()
    }

    /// Current global epoch.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn current(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.epoch.load(ctx)
    }

    /// Advance the global epoch; returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn advance(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        Ok(self.epoch.fetch_add(ctx, 1)? + 1)
    }

    /// Pin the current epoch (checkpoint integration, paper §3.2
    /// "Reliability"): versions retired at or after the pinned epoch are
    /// protected from reclamation until [`EpochManager::unpin`].
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn pin(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let epoch = self.current(ctx)?;
        let mut next = self.next_pin.lock();
        let id = *next;
        *next += 1;
        self.pins.lock().insert(id, epoch);
        Ok(id)
    }

    /// Release a checkpoint pin.
    pub fn unpin(&self, pin_id: u64) {
        self.pins.lock().remove(&pin_id);
    }

    /// The smallest epoch that may still be referenced — by an in-flight
    /// reader or by a checkpoint pin. Retired versions with
    /// `retire_epoch < min_protected` are safe to free.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn min_protected(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let mut min = self.current(ctx)?;
        for slot in &self.slots {
            let v = slot.load(ctx)?;
            if v != QUIESCENT {
                min = min.min(v);
            }
        }
        for (_, &e) in self.pins.lock().iter() {
            min = min.min(e);
        }
        Ok(min)
    }

    /// A node's RCU handle.
    ///
    /// # Panics
    ///
    /// Panics if the manager was sized for fewer nodes.
    pub fn handle(self: &Arc<Self>, node: Arc<NodeCtx>) -> RcuHandle {
        assert!(
            node.id().0 < self.slots.len(),
            "epoch manager sized for {} nodes",
            self.slots.len()
        );
        RcuHandle {
            mgr: self.clone(),
            node,
        }
    }
}

/// Per-node RCU entry point.
#[derive(Debug, Clone)]
pub struct RcuHandle {
    mgr: Arc<EpochManager>,
    node: Arc<NodeCtx>,
}

impl RcuHandle {
    /// Enter a read-side critical section.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn read_lock(&self) -> Result<RcuReadGuard, SimError> {
        let epoch = self.mgr.current(&self.node)?;
        self.mgr.slots[self.node.id().0].store(&self.node, epoch)?;
        Ok(RcuReadGuard {
            mgr: self.mgr.clone(),
            node: self.node.clone(),
            epoch,
        })
    }

    /// The shared epoch manager.
    pub fn manager(&self) -> &Arc<EpochManager> {
        &self.mgr
    }

    /// The node this handle belongs to.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }
}

/// An active read-side critical section; exits on drop.
#[derive(Debug)]
pub struct RcuReadGuard {
    mgr: Arc<EpochManager>,
    node: Arc<NodeCtx>,
    epoch: u64,
}

impl RcuReadGuard {
    /// The epoch this reader entered at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for RcuReadGuard {
    fn drop(&mut self) {
        let _ = self.mgr.slots[self.node.id().0].store(&self.node, QUIESCENT);
    }
}

/// A multi-version value in global memory updated RCU-style.
///
/// Block layout: `[len: u64][payload...]`, allocated from the
/// [`GlobalAllocator`]. The cell itself is one atomic pointer word.
#[derive(Debug, Clone, Copy)]
pub struct VersionedCell {
    ptr: GlobalCell,
}

impl VersionedCell {
    /// Allocate an empty cell.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(global: &GlobalMemory) -> Result<Self, SimError> {
        Ok(VersionedCell {
            ptr: GlobalCell::alloc(global, 0)?,
        })
    }

    /// Publish a new version containing `bytes`; the previous version is
    /// retired into `retired` at the current epoch.
    ///
    /// # Errors
    ///
    /// Propagates allocation and memory errors.
    pub fn write(
        &self,
        ctx: &NodeCtx,
        alloc: &GlobalAllocator,
        mgr: &EpochManager,
        retired: &RetireList,
        bytes: &[u8],
    ) -> Result<(), SimError> {
        let total = 8 + bytes.len();
        let block = alloc.alloc(ctx, total)?;
        ctx.write_u64(block, bytes.len() as u64)?;
        ctx.write(block.offset(8), bytes)?;
        ctx.writeback(block, total);
        // Swing the pointer; loop for concurrent writers.
        loop {
            let old = self.ptr.load(ctx)?;
            if self.ptr.compare_exchange(ctx, old, block.0)? == old {
                if old != 0 {
                    let old_addr = rack_sim::GAddr(old);
                    // Read the old header to learn its size for freeing.
                    ctx.invalidate(old_addr, 8);
                    let old_len = ctx.read_u64(old_addr)? as usize;
                    // Retire at the *pre-advance* epoch: readers that
                    // entered at it may still hold the old pointer, and
                    // the advance makes the retire epoch strictly older
                    // than any future quiescent state.
                    let epoch = mgr.current(ctx)?;
                    mgr.advance(ctx)?;
                    retired.retire(old_addr, 8 + old_len, epoch);
                }
                return Ok(());
            }
        }
    }

    /// Read the current version while holding an RCU read guard.
    ///
    /// Returns `None` if the cell has never been written.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn read(&self, ctx: &NodeCtx, _guard: &RcuReadGuard) -> Result<Option<Vec<u8>>, SimError> {
        let p = self.ptr.load(ctx)?;
        if p == 0 {
            return Ok(None);
        }
        let block = rack_sim::GAddr(p);
        // Invalidate before reading: the block address is fresh, but this
        // node may have cached these lines from a previous version that
        // was reclaimed and reused.
        ctx.invalidate(block, 8);
        let len = ctx.read_u64(block)? as usize;
        ctx.invalidate(block.offset(8), len);
        let mut buf = vec![0u8; len];
        ctx.read(block.offset(8), &mut buf)?;
        Ok(Some(buf))
    }

    /// Whether a version has ever been published.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn is_empty(&self, ctx: &NodeCtx) -> Result<bool, SimError> {
        Ok(self.ptr.load(ctx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, GlobalAllocator, Arc<EpochManager>, RetireList) {
        let rack = Rack::new(RackConfig::small_test());
        let alloc = GlobalAllocator::new(rack.global().clone());
        let mgr = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        (rack, alloc, mgr, RetireList::new())
    }

    #[test]
    fn versions_visible_across_nodes_without_manual_flushing() {
        let (rack, alloc, mgr, retired) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        let h1 = mgr.handle(n1.clone());

        cell.write(&n0, &alloc, &mgr, &retired, b"v1").unwrap();
        let g = h1.read_lock().unwrap();
        assert_eq!(cell.read(&n1, &g).unwrap().unwrap(), b"v1");
        drop(g);

        cell.write(&n0, &alloc, &mgr, &retired, b"version-two")
            .unwrap();
        let g = h1.read_lock().unwrap();
        assert_eq!(cell.read(&n1, &g).unwrap().unwrap(), b"version-two");
    }

    #[test]
    fn empty_cell_reads_none() {
        let (rack, _, mgr, _) = setup();
        let n0 = rack.node(0);
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        let g = mgr.handle(n0.clone()).read_lock().unwrap();
        assert!(cell.read(&n0, &g).unwrap().is_none());
        assert!(cell.is_empty(&n0).unwrap());
    }

    #[test]
    fn active_reader_blocks_reclamation() {
        let (rack, alloc, mgr, retired) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        cell.write(&n0, &alloc, &mgr, &retired, b"old").unwrap();

        let guard = mgr.handle(n1.clone()).read_lock().unwrap();
        cell.write(&n0, &alloc, &mgr, &retired, b"new").unwrap();
        assert_eq!(retired.pending(), 1);
        // Reader from before the retire epoch: nothing reclaimable.
        assert_eq!(retired.reclaim(&n0, &mgr, &alloc).unwrap(), 0);
        drop(guard);
        assert_eq!(retired.reclaim(&n0, &mgr, &alloc).unwrap(), 1);
        assert_eq!(retired.pending(), 0);
    }

    #[test]
    fn checkpoint_pin_blocks_reclamation() {
        let (rack, alloc, mgr, retired) = setup();
        let n0 = rack.node(0);
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        cell.write(&n0, &alloc, &mgr, &retired, b"a").unwrap();

        let pin = mgr.pin(&n0).unwrap();
        cell.write(&n0, &alloc, &mgr, &retired, b"b").unwrap();
        assert_eq!(
            retired.reclaim(&n0, &mgr, &alloc).unwrap(),
            0,
            "pin protects old version"
        );
        mgr.unpin(pin);
        assert_eq!(retired.reclaim(&n0, &mgr, &alloc).unwrap(), 1);
    }

    #[test]
    fn reclaimed_blocks_return_to_allocator() {
        let (rack, alloc, mgr, retired) = setup();
        let n0 = rack.node(0);
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        cell.write(&n0, &alloc, &mgr, &retired, &[1u8; 40]).unwrap();
        cell.write(&n0, &alloc, &mgr, &retired, &[2u8; 40]).unwrap();
        retired.reclaim(&n0, &mgr, &alloc).unwrap();
        assert_eq!(alloc.free_count(48), 1, "old 48-byte block is reusable");
    }

    #[test]
    fn stale_cache_of_reused_block_is_defeated() {
        // A node caches version blocks, the block is reclaimed and reused
        // for a new version; invalidate-before-read must still win.
        let (rack, alloc, mgr, retired) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        let h1 = mgr.handle(n1.clone());

        cell.write(&n0, &alloc, &mgr, &retired, b"AAAA").unwrap();
        {
            let g = h1.read_lock().unwrap();
            assert_eq!(cell.read(&n1, &g).unwrap().unwrap(), b"AAAA");
        }
        cell.write(&n0, &alloc, &mgr, &retired, b"BBBB").unwrap();
        retired.reclaim(&n0, &mgr, &alloc).unwrap();
        // Reuse the reclaimed block for the next version.
        cell.write(&n0, &alloc, &mgr, &retired, b"CCCC").unwrap();
        let g = h1.read_lock().unwrap();
        assert_eq!(cell.read(&n1, &g).unwrap().unwrap(), b"CCCC");
    }

    #[test]
    fn min_protected_tracks_oldest_reader() {
        let (rack, _, mgr, _) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let e0 = mgr.current(&n0).unwrap();
        let _g = mgr.handle(n1.clone()).read_lock().unwrap();
        mgr.advance(&n0).unwrap();
        mgr.advance(&n0).unwrap();
        assert_eq!(mgr.min_protected(&n0).unwrap(), e0);
    }
}
