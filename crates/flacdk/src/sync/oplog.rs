//! Shared operation log in global memory.
//!
//! The operation log is the backbone of replication-based synchronization
//! (§3.2), the file-system journal (§3.4), and log-replay recovery
//! (§3.2 "Reliability"): appenders claim a slot with a fabric CAS on the
//! tail, publish the payload with an explicit write-back, and then commit
//! the slot with an atomic flag store. Readers poll the tail, invalidate,
//! and read committed slots — no locks, no reliance on coherence.
//!
//! The log is a bounded ring: slots are reused after the head is advanced
//! by garbage collection (only once every consumer is known to have
//! applied past them).

use crate::hw::GlobalCell;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError, LINE_SIZE};

/// Slot states.
const EMPTY: u64 = 0;
const COMMITTED: u64 = 1;

/// A bounded, multi-producer shared operation log.
///
/// Copyable handle; all clones denote the same log region.
#[derive(Debug, Clone, Copy)]
pub struct SharedOpLog {
    tail: GlobalCell,
    head: GlobalCell,
    entries: GAddr,
    capacity: u64,
    entry_size: u64,
}

impl SharedOpLog {
    /// Bytes of payload a slot of `entry_size` can hold.
    pub fn payload_capacity(entry_size: usize) -> usize {
        entry_size.saturating_sub(16)
    }

    /// Allocate a log of `capacity` slots of `entry_size` bytes each
    /// (16 bytes of which are per-slot metadata).
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `entry_size < 24` or `entry_size`
    /// is not 8-byte aligned.
    pub fn alloc(
        global: &GlobalMemory,
        capacity: usize,
        entry_size: usize,
    ) -> Result<Self, SimError> {
        assert!(capacity > 0, "log capacity must be positive");
        assert!(
            entry_size >= 24,
            "entry size must hold metadata plus payload"
        );
        assert_eq!(entry_size % 8, 0, "entry size must be 8-byte aligned");
        let tail = GlobalCell::alloc(global, 0)?;
        let head = GlobalCell::alloc(global, 0)?;
        let entries = global.alloc(capacity * entry_size, LINE_SIZE)?;
        Ok(SharedOpLog {
            tail,
            head,
            entries,
            capacity: capacity as u64,
            entry_size: entry_size as u64,
        })
    }

    /// Number of slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Global address of the entry region — the log's *home* under an
    /// interleaved home policy, for NUMA-aware placement decisions.
    pub fn base(&self) -> GAddr {
        self.entries
    }

    fn slot_addr(&self, idx: u64) -> GAddr {
        self.entries.offset((idx % self.capacity) * self.entry_size)
    }

    /// Current tail (index one past the newest claimed entry).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn tail(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.tail.load(ctx)
    }

    /// Current head (oldest retained entry).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn head(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.head.load(ctx)
    }

    /// Append `payload`, returning the entry's index.
    ///
    /// # Errors
    ///
    /// * [`SimError::Protocol`] if `payload` exceeds the slot payload size
    ///   or the ring is full (GC has not caught up).
    /// * Memory errors are propagated.
    pub fn append(&self, ctx: &NodeCtx, payload: &[u8]) -> Result<u64, SimError> {
        if payload.len() > Self::payload_capacity(self.entry_size as usize) {
            return Err(SimError::Protocol(format!(
                "op of {} bytes exceeds slot payload capacity {}",
                payload.len(),
                Self::payload_capacity(self.entry_size as usize)
            )));
        }
        // Claim a slot with CAS so we never claim past a full ring.
        let idx = loop {
            let tail = self.tail.load(ctx)?;
            let head = self.head.load(ctx)?;
            if tail - head >= self.capacity {
                return Err(SimError::Protocol("operation log full; GC lagging".into()));
            }
            if self.tail.compare_exchange(ctx, tail, tail + 1)? == tail {
                break tail;
            }
        };
        let slot = self.slot_addr(idx);
        // Publish payload then length, flush, then commit flag last. The
        // flush must *invalidate*, not just write back: slots share cache
        // lines, and the uncached flag store below never updates our own
        // cached copy — a stale line left resident here would be
        // re-dirtied by a later append to the neighboring slot and its
        // write-back would clobber this entry's commit flag.
        ctx.write_u64(slot.offset(8), payload.len() as u64)?;
        ctx.write(slot.offset(16), payload)?;
        ctx.flush(slot, 16 + payload.len());
        ctx.store_uncached_u64(slot, COMMITTED)?;
        Ok(idx)
    }

    /// Append a batch of payloads with a **single** fabric CAS on the
    /// tail, returning the index of the first entry. Entries land
    /// contiguously in argument order.
    ///
    /// This is the flat-combining fast path: the combiner drains every
    /// node's publication slot and commits the whole batch for the cost
    /// of one interconnect atomic. Payloads and commit flags are written
    /// through the cache and made visible with one flush per *contiguous
    /// run* of slots — batch entries are adjacent in the ring, so they
    /// share cache lines and the write-back cost amortizes across the
    /// batch instead of paying the single-op path's per-entry flush plus
    /// uncached flag store.
    ///
    /// # Errors
    ///
    /// * [`SimError::Protocol`] if the batch is empty, any payload
    ///   exceeds the slot payload size, or the ring lacks room for the
    ///   whole batch (GC has not caught up).
    /// * Memory errors are propagated.
    pub fn append_batch(&self, ctx: &NodeCtx, payloads: &[Vec<u8>]) -> Result<u64, SimError> {
        if payloads.is_empty() {
            return Err(SimError::Protocol("empty batch append".into()));
        }
        let cap = Self::payload_capacity(self.entry_size as usize);
        for p in payloads {
            if p.len() > cap {
                return Err(SimError::Protocol(format!(
                    "op of {} bytes exceeds slot payload capacity {cap}",
                    p.len()
                )));
            }
        }
        let k = payloads.len() as u64;
        // One CAS claims the whole run of slots.
        let first = loop {
            let tail = self.tail.load(ctx)?;
            let head = self.head.load(ctx)?;
            if tail - head + k > self.capacity {
                return Err(SimError::Protocol(format!(
                    "operation log lacks room for batch of {k}; GC lagging"
                )));
            }
            if self.tail.compare_exchange(ctx, tail, tail + k)? == tail {
                break tail;
            }
        };
        // The commit flags ride the same flush as the payloads: until the
        // flush lands, readers that invalidate-and-read see the old
        // (EMPTY) flags and treat the slots as uncommitted. The flush
        // must invalidate for the same reason as in `append`. Entries are
        // contiguous except across the ring wrap, so whole runs flush at
        // once.
        let mut done = 0u64;
        while done < k {
            let start = first + done;
            let run = (self.capacity - (start % self.capacity)).min(k - done);
            let base = self.slot_addr(start);
            for j in 0..run {
                let payload = &payloads[(done + j) as usize];
                let slot = base.offset(j * self.entry_size);
                ctx.write_u64(slot, COMMITTED)?;
                ctx.write_u64(slot.offset(8), payload.len() as u64)?;
                ctx.write(slot.offset(16), payload)?;
            }
            ctx.flush(base, (run * self.entry_size) as usize);
            done += run;
        }
        Ok(first)
    }

    /// Read entry `idx` if committed.
    ///
    /// Returns `Ok(None)` when the slot is claimed but not yet committed
    /// (or was never claimed).
    ///
    /// # Errors
    ///
    /// * [`SimError::Protocol`] when `idx` has been garbage-collected or
    ///   is past the tail.
    /// * Memory errors are propagated.
    pub fn read(&self, ctx: &NodeCtx, idx: u64) -> Result<Option<Vec<u8>>, SimError> {
        let head = self.head.load(ctx)?;
        let tail = self.tail.load(ctx)?;
        if idx < head {
            return Err(SimError::Protocol(format!(
                "entry {idx} already collected (head {head})"
            )));
        }
        if idx >= tail {
            return Err(SimError::Protocol(format!("entry {idx} past tail {tail}")));
        }
        let slot = self.slot_addr(idx);
        if ctx.load_uncached_u64(slot)? != COMMITTED {
            return Ok(None);
        }
        ctx.invalidate(slot, self.entry_size as usize);
        let len = ctx.read_u64(slot.offset(8))? as usize;
        if len > Self::payload_capacity(self.entry_size as usize) {
            return Err(SimError::Protocol(format!(
                "corrupt length {len} in entry {idx}"
            )));
        }
        let mut buf = vec![0u8; len];
        ctx.read(slot.offset(16), &mut buf)?;
        Ok(Some(buf))
    }

    /// Read entry `idx` without the bounds-checking head/tail loads —
    /// the cheap catch-up path for replicas that already know the tail.
    ///
    /// Returns `Ok(None)` for uncommitted slots. The caller must keep
    /// `idx` inside `[head, tail)`; an out-of-window index reads
    /// whatever the ring slot currently holds.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on a corrupt length; memory errors are
    /// propagated.
    pub fn read_entry(&self, ctx: &NodeCtx, idx: u64) -> Result<Option<Vec<u8>>, SimError> {
        let slot = self.slot_addr(idx);
        ctx.invalidate(slot, self.entry_size as usize);
        if ctx.read_u64(slot)? != COMMITTED {
            return Ok(None);
        }
        let len = ctx.read_u64(slot.offset(8))? as usize;
        if len > Self::payload_capacity(self.entry_size as usize) {
            return Err(SimError::Protocol(format!(
                "corrupt length {len} in entry {idx}"
            )));
        }
        let mut buf = vec![0u8; len];
        ctx.read(slot.offset(16), &mut buf)?;
        Ok(Some(buf))
    }

    /// Advance the head to `new_head`, releasing slots `[head, new_head)`
    /// for reuse. The caller must guarantee every consumer has applied
    /// entries below `new_head`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `new_head` is behind the current head or
    /// past the tail; memory errors are propagated.
    pub fn advance_head(&self, ctx: &NodeCtx, new_head: u64) -> Result<(), SimError> {
        let head = self.head.load(ctx)?;
        let tail = self.tail.load(ctx)?;
        if new_head < head || new_head > tail {
            return Err(SimError::Protocol(format!(
                "invalid head advance {head} -> {new_head} (tail {tail})"
            )));
        }
        for idx in head..new_head {
            ctx.store_uncached_u64(self.slot_addr(idx), EMPTY)?;
        }
        self.head.store(ctx, new_head)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn log(rack: &Rack, cap: usize) -> SharedOpLog {
        SharedOpLog::alloc(rack.global(), cap, 64).unwrap()
    }

    #[test]
    fn append_then_read_cross_node() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let l = log(&rack, 8);
        let idx = l.append(&n0, b"hello-log").unwrap();
        assert_eq!(idx, 0);
        assert_eq!(l.read(&n1, idx).unwrap().unwrap(), b"hello-log");
    }

    #[test]
    fn interleaved_appends_get_distinct_slots() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let l = log(&rack, 8);
        let a = l.append(&n0, b"a").unwrap();
        let b = l.append(&n1, b"b").unwrap();
        let c = l.append(&n0, b"c").unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(l.read(&n1, 0).unwrap().unwrap(), b"a");
        assert_eq!(l.read(&n0, 1).unwrap().unwrap(), b"b");
        assert_eq!(l.read(&n1, 2).unwrap().unwrap(), b"c");
    }

    #[test]
    fn ring_fills_then_reuses_after_gc() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        for i in 0..4 {
            l.append(&n0, &[i]).unwrap();
        }
        assert!(
            matches!(l.append(&n0, b"x"), Err(SimError::Protocol(_))),
            "ring full"
        );
        l.advance_head(&n0, 2).unwrap();
        let idx = l.append(&n0, b"y").unwrap();
        assert_eq!(idx, 4);
        assert_eq!(l.read(&n0, 4).unwrap().unwrap(), b"y");
        // Collected entries are gone.
        assert!(l.read(&n0, 0).is_err());
        // Uncollected survivors still readable.
        assert_eq!(l.read(&n0, 2).unwrap().unwrap(), &[2]);
    }

    #[test]
    fn oversize_payload_rejected() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        assert!(l.append(&n0, &[0u8; 64]).is_err());
        assert!(
            l.append(&n0, &[0u8; 48]).is_ok(),
            "exactly payload capacity fits"
        );
    }

    #[test]
    fn read_past_tail_is_error_not_none() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        assert!(l.read(&n0, 0).is_err());
    }

    #[test]
    fn invalid_head_advances_rejected() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        l.append(&n0, b"a").unwrap();
        l.advance_head(&n0, 1).unwrap();
        assert!(l.advance_head(&n0, 0).is_err(), "backwards");
        assert!(l.advance_head(&n0, 5).is_err(), "past tail");
    }

    #[test]
    fn batch_append_lands_contiguously_and_reads_back() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let l = log(&rack, 8);
        l.append(&n0, b"solo").unwrap();
        let first = l
            .append_batch(&n1, &[b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()])
            .unwrap();
        assert_eq!(first, 1);
        assert_eq!(l.tail(&n0).unwrap(), 4);
        assert_eq!(l.read(&n0, 1).unwrap().unwrap(), b"a");
        assert_eq!(l.read(&n0, 2).unwrap().unwrap(), b"bb");
        assert_eq!(l.read(&n0, 3).unwrap().unwrap(), b"ccc");
        // The cheap path agrees with the checked path.
        assert_eq!(l.read_entry(&n1, 2).unwrap().unwrap(), b"bb");
    }

    #[test]
    fn batch_append_uses_one_tail_atomic() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 16);
        let before = n0.stats().snapshot().global_atomics;
        l.append_batch(&n0, &(0..8).map(|i| vec![i]).collect::<Vec<_>>())
            .unwrap();
        let after = n0.stats().snapshot().global_atomics;
        assert_eq!(after - before, 1, "one CAS amortizes the whole batch");
    }

    #[test]
    fn batch_rejects_empty_oversize_and_overflow() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        assert!(l.append_batch(&n0, &[]).is_err(), "empty batch");
        assert!(
            l.append_batch(&n0, &[vec![0u8; 64]]).is_err(),
            "oversize payload"
        );
        l.append(&n0, b"x").unwrap();
        assert!(
            l.append_batch(&n0, &vec![b"a".to_vec(); 4]).is_err(),
            "batch past ring capacity"
        );
        assert_eq!(l.tail(&n0).unwrap(), 1, "failed batch claims nothing");
    }

    #[test]
    fn read_entry_sees_uncommitted_as_none() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        assert_eq!(l.read_entry(&n0, 0).unwrap(), None, "never claimed");
        l.append(&n0, b"a").unwrap();
        assert_eq!(l.read_entry(&n0, 0).unwrap().unwrap(), b"a");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let l = log(&rack, 4);
        let idx = l.append(&n0, b"").unwrap();
        assert_eq!(l.read(&n0, idx).unwrap().unwrap(), Vec::<u8>::new());
    }
}
