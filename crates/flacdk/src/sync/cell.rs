//! `SyncCell<T>` — one policy-driven facade over the §3.2 families.
//!
//! Every rack-shared kernel structure used to pick (or worse, inherit)
//! its synchronization method ad hoc; after this module they all go
//! through one audited abstraction. A [`SyncCell`] wraps a deterministic
//! state machine (a [`SyncState`]) behind a uniform
//! `read(|&T|)/update(op)` interface whose *backend* — locking,
//! replication, delegation, or RCU — is chosen per structure at
//! construction ([`SyncPolicy`]) and can be re-tuned at runtime from the
//! observed read/write mix ([`AdaptiveConfig`], hysteresis included).
//!
//! The design centers on a committed-operation log:
//!
//! * Every update is first **committed** to a [`SharedOpLog`] in global
//!   memory (fabric CAS tail claim + publish + commit flag) and only
//!   then folded into the state. The log is therefore the source of
//!   truth: a policy switch drains to the log tail before flipping
//!   (epoch-quiesced — no committed op is lost or reordered), and crash
//!   recovery ([`SyncCell::on_node_crash`], [`SyncCell::replay`])
//!   re-elects the delegation owner and replays the tail.
//! * Per-policy behavior differs in which fabric operations wrap the
//!   commit. Locking pays two fabric atomics plus the flush discipline
//!   per section; replication makes reads node-local after a tail check
//!   but charges each node the replay of foreign mutations; delegation
//!   ships remote operations to the owner over the message fabric and
//!   leaves owner operations local; RCU reads are a constant
//!   version-cell load and writes pay a publish.
//!
//! Observability rides the PR-1 metrics layer: per-policy op counts,
//! policy-switch events, and delegation queue depth land in the `sync/*`
//! counter registry and surface in `Rack::metrics_report()`.

use crate::hw::GlobalCell;
use crate::sync::oplog::SharedOpLog;
use crate::sync::spinlock::GlobalSpinLock;
use rack_sim::{GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// A deterministic state machine managed by a [`SyncCell`].
///
/// `apply` must be a pure function of `(state, op)`: replaying the same
/// committed op sequence from the same initial state must reproduce the
/// same final state on any node (that is what makes policy switches and
/// crash recovery lossless). Malformed ops must be ignored, not panic.
pub trait SyncState: Send + std::fmt::Debug + 'static {
    /// Fold one committed operation into the state.
    fn apply(&mut self, op: &[u8]);
}

/// The synchronization backend a [`SyncCell`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Baseline global spinlock + flush discipline (rarely-contended
    /// slow paths; kept honest for comparison).
    Lock,
    /// NR-style replication: node-local reads after a log tail check;
    /// every node replays foreign mutations. Best read-mostly.
    Replicated,
    /// ffwd-style delegation: one owner node executes all operations;
    /// remote nodes ship requests over the message fabric. Best
    /// write-heavy.
    Delegated,
    /// Epoch/RCU multi-version: constant-cost reads off a version cell;
    /// writes pay a publish. Best scan-heavy.
    Rcu,
}

impl SyncPolicy {
    /// Stable numeric encoding (for the policy mirror cell).
    pub fn encode(self) -> u64 {
        match self {
            SyncPolicy::Lock => 0,
            SyncPolicy::Replicated => 1,
            SyncPolicy::Delegated => 2,
            SyncPolicy::Rcu => 3,
        }
    }

    /// Inverse of [`SyncPolicy::encode`] (unknown values read as Lock,
    /// the conservative baseline).
    pub fn decode(v: u64) -> Self {
        match v {
            1 => SyncPolicy::Replicated,
            2 => SyncPolicy::Delegated,
            3 => SyncPolicy::Rcu,
            _ => SyncPolicy::Lock,
        }
    }

    /// Human-readable label (also the `sync/ops_*` counter suffix).
    pub fn label(self) -> &'static str {
        match self {
            SyncPolicy::Lock => "lock",
            SyncPolicy::Replicated => "replicated",
            SyncPolicy::Delegated => "delegated",
            SyncPolicy::Rcu => "rcu",
        }
    }

    fn ops_counter(self) -> &'static str {
        match self {
            SyncPolicy::Lock => "ops_lock",
            SyncPolicy::Replicated => "ops_replicated",
            SyncPolicy::Delegated => "ops_delegated",
            SyncPolicy::Rcu => "ops_rcu",
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning knobs for the adaptive policy driver.
///
/// The driver observes a window of operations, computes the read
/// percentage, and proposes a backend: `>= promote_read_pct` →
/// [`SyncPolicy::Replicated`], `<= demote_read_pct` →
/// [`SyncPolicy::Delegated`], in between → keep the current one. The gap
/// between the two thresholds plus the `confirm_windows` requirement
/// (the proposal must repeat in consecutive windows) is the hysteresis
/// that keeps a borderline workload from thrashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Operations per observation window.
    pub window_ops: u64,
    /// Read percentage at or above which replication is proposed.
    pub promote_read_pct: u32,
    /// Read percentage at or below which delegation is proposed.
    pub demote_read_pct: u32,
    /// Consecutive agreeing windows required before switching.
    pub confirm_windows: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window_ops: 64,
            promote_read_pct: 80,
            demote_read_pct: 60,
            confirm_windows: 2,
        }
    }
}

/// The runtime state of the adaptive driver.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    window_reads: u64,
    window_writes: u64,
    window_remote: u64,
    candidate: Option<SyncPolicy>,
    streak: u32,
}

impl AdaptivePolicy {
    fn new(cfg: AdaptiveConfig) -> Self {
        AdaptivePolicy {
            cfg,
            window_reads: 0,
            window_writes: 0,
            window_remote: 0,
            candidate: None,
            streak: 0,
        }
    }

    /// Record one op; when the window closes, return the policy the
    /// driver wants to switch to (hysteresis already applied).
    fn observe(&mut self, current: SyncPolicy, is_read: bool, remote: bool) -> Option<SyncPolicy> {
        if is_read {
            self.window_reads += 1;
        } else {
            self.window_writes += 1;
        }
        if remote {
            self.window_remote += 1;
        }
        let total = self.window_reads + self.window_writes;
        if total < self.cfg.window_ops {
            return None;
        }
        let read_pct = (100 * self.window_reads / total) as u32;
        self.window_reads = 0;
        self.window_writes = 0;
        self.window_remote = 0;
        let proposal = if read_pct >= self.cfg.promote_read_pct {
            SyncPolicy::Replicated
        } else if read_pct <= self.cfg.demote_read_pct {
            SyncPolicy::Delegated
        } else {
            current
        };
        if proposal == current {
            self.candidate = None;
            self.streak = 0;
            return None;
        }
        if self.candidate == Some(proposal) {
            self.streak += 1;
        } else {
            self.candidate = Some(proposal);
            self.streak = 1;
        }
        if self.streak >= self.cfg.confirm_windows {
            self.candidate = None;
            self.streak = 0;
            Some(proposal)
        } else {
            None
        }
    }
}

/// Construction parameters for a [`SyncCell`].
#[derive(Debug, Clone, Copy)]
pub struct SyncCellConfig {
    /// Nodes that may operate on the cell.
    pub nodes: usize,
    /// Committed-op log capacity in slots.
    pub log_capacity: usize,
    /// Log slot size in bytes (16 of which are metadata).
    pub entry_size: usize,
    /// Initial backend.
    pub policy: SyncPolicy,
    /// Enable the adaptive driver with these knobs.
    pub adaptive: Option<AdaptiveConfig>,
    /// Approximate protected-state footprint in bytes, used by the Lock
    /// and RCU backends to charge the flush discipline.
    pub footprint_bytes: usize,
}

impl SyncCellConfig {
    /// Defaults: 4096-slot log of 64-byte entries, one-line footprint,
    /// no adaptive driver.
    pub fn new(nodes: usize, policy: SyncPolicy) -> Self {
        SyncCellConfig {
            nodes,
            log_capacity: 4096,
            entry_size: 64,
            policy,
            adaptive: None,
            footprint_bytes: rack_sim::LINE_SIZE,
        }
    }

    /// Override the committed-op log geometry.
    pub fn with_log(mut self, capacity: usize, entry_size: usize) -> Self {
        self.log_capacity = capacity;
        self.entry_size = entry_size;
        self
    }

    /// Enable runtime re-tuning.
    pub fn with_adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }

    /// Override the charged state footprint.
    pub fn with_footprint(mut self, bytes: usize) -> Self {
        self.footprint_bytes = bytes.max(1);
        self
    }
}

/// Per-cell host-side state: the authoritative state machine plus the
/// per-node bookkeeping the cost model and the adaptive driver need.
#[derive(Debug)]
struct CellInner<T: SyncState> {
    state: T,
    /// Next log index to fold into `state`.
    applied: u64,
    /// Committed entries skipped because their appender crashed
    /// mid-publish (claimed-but-uncommitted holes).
    holes: u64,
    policy: SyncPolicy,
    /// Per-node replicated watermark (cost model for catch-up replay).
    synced: Vec<u64>,
    /// Cached delegation owner (kept in lock-step with the owner cell).
    owner_hint: usize,
    adaptive: Option<AdaptivePolicy>,
    /// Simulated delegation queue: remote requests since the owner last
    /// ran an operation (its "poll").
    queue_depth: u64,
    /// Largest queue depth observed.
    queue_peak: u64,
}

/// A rack-shared structure behind one policy-driven synchronization
/// facade. Cheap to share: wrap in `Arc` and hand to every node.
#[derive(Debug)]
pub struct SyncCell<T: SyncState> {
    name: &'static str,
    log: SharedOpLog,
    /// Per-node applied watermarks in global memory (GC + recovery
    /// accounting; updated eagerly only by the replicated backend).
    applied_cells: Vec<GlobalCell>,
    /// Delegation owner, node id + 1 (0 = none elected yet).
    owner: GlobalCell,
    /// Mirror of the current policy for cross-node discovery.
    policy_cell: GlobalCell,
    /// Policy-switch epoch: bumped by every completed switch.
    switch_epoch: GlobalCell,
    /// RCU version cell (bumped per publish).
    version: GlobalCell,
    /// Serializes policy switches and the Lock backend.
    lock: GlobalSpinLock,
    footprint_bytes: usize,
    inner: rack_sim::sync::Mutex<CellInner<T>>,
}

fn lines(bytes: usize) -> u64 {
    bytes.div_ceil(rack_sim::LINE_SIZE) as u64
}

impl<T: SyncState> SyncCell<T> {
    /// Allocate the cell's fabric state and wrap `init`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes == 0`.
    pub fn alloc(
        global: &GlobalMemory,
        name: &'static str,
        cfg: SyncCellConfig,
        init: T,
    ) -> Result<Arc<Self>, SimError> {
        assert!(cfg.nodes > 0, "a sync cell needs at least one node");
        let log = SharedOpLog::alloc(global, cfg.log_capacity, cfg.entry_size)?;
        let applied_cells = (0..cfg.nodes)
            .map(|_| GlobalCell::alloc(global, 0))
            .collect::<Result<Vec<_>, _>>()?;
        // Node 0 is the initial delegation owner until told otherwise.
        let owner = GlobalCell::alloc(global, 1)?;
        let policy_cell = GlobalCell::alloc(global, cfg.policy.encode())?;
        let switch_epoch = GlobalCell::alloc(global, 0)?;
        let version = GlobalCell::alloc(global, 0)?;
        let lock = GlobalSpinLock::alloc(global)?;
        Ok(Arc::new(SyncCell {
            name,
            log,
            applied_cells,
            owner,
            policy_cell,
            switch_epoch,
            version,
            lock,
            footprint_bytes: cfg.footprint_bytes,
            inner: rack_sim::sync::Mutex::new(CellInner {
                state: init,
                applied: 0,
                holes: 0,
                policy: cfg.policy,
                synced: vec![0; cfg.nodes],
                owner_hint: 0,
                adaptive: cfg.adaptive.map(AdaptivePolicy::new),
                queue_depth: 0,
                queue_peak: 0,
            }),
        }))
    }

    /// The cell's name (used in diagnostics and DESIGN.md tables).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current backend (host snapshot; authoritative between switches).
    pub fn policy(&self) -> SyncPolicy {
        self.inner.lock().policy
    }

    /// Completed policy switches (reads the fabric epoch cell).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn switch_epoch(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.switch_epoch.load(ctx)
    }

    /// The delegation owner currently elected, if any.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn owner_node(&self, ctx: &NodeCtx) -> Result<Option<NodeId>, SimError> {
        let w = self.owner.load(ctx)?;
        Ok(if w == 0 {
            None
        } else {
            Some(NodeId((w - 1) as usize))
        })
    }

    /// Committed operations so far (the log tail).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn committed(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.log.tail(ctx)
    }

    /// Peek at the state without charging simulated costs. Diagnostics
    /// and invariant checks only — kernel paths must use
    /// [`SyncCell::read`] so the policy's cost lands on the caller.
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.inner.lock().state)
    }

    /// Largest simulated delegation queue depth observed so far.
    pub fn queue_peak(&self) -> u64 {
        self.inner.lock().queue_peak
    }

    fn me(&self, ctx: &NodeCtx) -> usize {
        let id = ctx.id().0;
        assert!(
            id < self.applied_cells.len(),
            "cell {} sized for {} nodes, node id {}",
            self.name,
            self.applied_cells.len(),
            id
        );
        id
    }

    /// Fold committed entries `[inner.applied, target)` into the state.
    /// Claimed-but-uncommitted holes (appender crashed mid-publish) are
    /// skipped: their op was never acknowledged to anyone.
    fn drain_to(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        target: u64,
    ) -> Result<(), SimError> {
        while inner.applied < target {
            match self.log.read(ctx, inner.applied)? {
                Some(op) => {
                    inner.state.apply(&op);
                    ctx.charge(ctx.latency().local_write_ns);
                }
                None => inner.holes += 1,
            }
            inner.applied += 1;
        }
        Ok(())
    }

    /// Charge node `me`'s replicated catch-up replay from its watermark
    /// to `target`, touching the real log slots.
    fn charge_catch_up(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
        target: u64,
    ) -> Result<(), SimError> {
        if inner.synced[me] >= target {
            return Ok(());
        }
        let head = self.log.head(ctx)?;
        if inner.synced[me] < head {
            // The entries this replica missed were garbage collected:
            // model a bulk snapshot fetch (one fabric read of the state
            // footprint) instead of per-entry replay.
            let lat = ctx.latency();
            ctx.charge(
                lines(self.footprint_bytes) * (lat.invalidate_line_ns + lat.local_write_ns)
                    + lat.global_read_ns,
            );
            inner.synced[me] = head;
        }
        let mut idx = inner.synced[me];
        while idx < target {
            // The replica replays the committed entry: wire read + local
            // apply. The state itself was already folded at commit time;
            // this is the per-node cost of the replication family.
            let _ = self.log.read(ctx, idx)?;
            ctx.charge(ctx.latency().local_write_ns);
            idx += 1;
        }
        inner.synced[me] = target;
        self.applied_cells[me].store(ctx, target)?;
        Ok(())
    }

    /// Per-policy cost + fabric work for one operation. Returns whether
    /// the op ran remotely (shipped to a delegation owner).
    fn pre_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
        is_read: bool,
        op_len: usize,
    ) -> Result<bool, SimError> {
        let lat = ctx.latency();
        match inner.policy {
            SyncPolicy::Lock => {
                // Whole section under the fabric lock; the flush
                // discipline (invalidate before read, write back after
                // write) is what locking costs on a non-coherent fabric.
                let guard = self.lock.lock(ctx)?;
                let l = lines(self.footprint_bytes);
                if is_read {
                    ctx.charge(l * lat.invalidate_line_ns + lat.global_read_ns);
                } else {
                    ctx.charge(
                        l * lat.invalidate_line_ns + lat.global_read_ns + l * lat.writeback_line_ns,
                    );
                }
                guard.unlock()?;
                Ok(false)
            }
            SyncPolicy::Replicated => {
                let tail = self.log.tail(ctx)?;
                self.charge_catch_up(ctx, inner, me, tail)?;
                Ok(false)
            }
            SyncPolicy::Delegated => {
                if me == inner.owner_hint {
                    // Owner fast path: operations run in local memory;
                    // an op also drains the simulated request queue.
                    inner.queue_depth = 0;
                    Ok(false)
                } else {
                    // Request + reply ride the message fabric.
                    let req = 24 + op_len;
                    ctx.charge(lat.message_ns(1, req) + lat.message_ns(1, 16));
                    ctx.charge(lat.local_read_ns + lat.local_write_ns);
                    inner.queue_depth += 1;
                    inner.queue_peak = inner.queue_peak.max(inner.queue_depth);
                    let reg = ctx.stats().registry();
                    reg.add("sync", "delegation_queued", 1);
                    reg.add("sync", "delegation_queue_depth", inner.queue_depth);
                    Ok(true)
                }
            }
            SyncPolicy::Rcu => {
                // Readers ride the version cell; writers publish a fresh
                // version (write-back) and bump it with a fabric atomic.
                let _ = self.version.load(ctx)?;
                if is_read {
                    ctx.charge(lat.invalidate_line_ns);
                } else {
                    ctx.charge(lines(op_len.max(1)) * lat.writeback_line_ns);
                    self.version.fetch_add(ctx, 1)?;
                }
                Ok(false)
            }
        }
    }

    /// Adaptive bookkeeping after an op; performs the quiesced switch
    /// when the driver's hysteresis allows one.
    fn post_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        is_read: bool,
        remote: bool,
    ) -> Result<(), SimError> {
        ctx.stats()
            .registry()
            .add("sync", inner.policy.ops_counter(), 1);
        let current = inner.policy;
        let target = match inner.adaptive.as_mut() {
            Some(driver) => driver.observe(current, is_read, remote),
            None => None,
        };
        if let Some(target) = target {
            self.switch_locked(ctx, inner, target)?;
        }
        Ok(())
    }

    /// Read the state through the current policy.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn read<R>(&self, ctx: &NodeCtx, f: impl FnOnce(&T) -> R) -> Result<R, SimError> {
        let me = self.me(ctx);
        let mut inner = self.inner.lock();
        let remote = self.pre_op(ctx, &mut inner, me, true, 0)?;
        ctx.charge(ctx.latency().local_read_ns);
        let out = f(&inner.state);
        self.post_op(ctx, &mut inner, true, remote)?;
        Ok(out)
    }

    /// Commit `op` to the log and fold it into the state.
    /// Returns the op's log index.
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors; on error the state is
    /// unchanged and the op is not acknowledged.
    pub fn update(&self, ctx: &NodeCtx, op: &[u8]) -> Result<u64, SimError> {
        self.update_map(ctx, op, |_| ()).map(|(idx, ())| idx)
    }

    /// Commit `op`, fold it in, and run `f` on the **post-op** state
    /// atomically (flat-combining style: the caller derives its answer
    /// from the state the op produced, while replay needs only the op
    /// bytes). Returns `(log index, f's result)`.
    ///
    /// # Errors
    ///
    /// As [`SyncCell::update`].
    pub fn update_map<R>(
        &self,
        ctx: &NodeCtx,
        op: &[u8],
        f: impl FnOnce(&T) -> R,
    ) -> Result<(u64, R), SimError> {
        let me = self.me(ctx);
        let mut inner = self.inner.lock();
        let remote = self.pre_op(ctx, &mut inner, me, false, op.len())?;
        let idx = self.log.append(ctx, op)?;
        // Fold any holes left by crashed appenders, then our own op.
        self.drain_to(ctx, &mut inner, idx)?;
        inner.state.apply(op);
        ctx.charge(ctx.latency().local_write_ns);
        inner.applied = idx + 1;
        inner.synced[me] = idx + 1;
        if inner.policy == SyncPolicy::Replicated {
            self.applied_cells[me].store(ctx, idx + 1)?;
        }
        let out = f(&inner.state);
        self.post_op(ctx, &mut inner, false, remote)?;
        Ok((idx, out))
    }

    /// The epoch-quiesced backend switch. Caller holds the host mutex;
    /// the fabric lock serializes against other nodes' switches.
    fn switch_locked(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        target: SyncPolicy,
    ) -> Result<bool, SimError> {
        if inner.policy == target {
            return Ok(false);
        }
        let guard = self.lock.lock(ctx)?;
        // Drain: every committed op folds in before the flip, so the
        // switch can neither lose nor reorder committed updates.
        let tail = self.log.tail(ctx)?;
        self.drain_to(ctx, inner, tail)?;
        // Quiesce: publish every node's watermark at the drained tail
        // and bump the switch epoch so late readers re-discover.
        for (i, cell) in self.applied_cells.iter().enumerate() {
            cell.store(ctx, inner.applied)?;
            inner.synced[i] = inner.applied;
        }
        if target == SyncPolicy::Delegated {
            // The switching node becomes the owner.
            let me = self.me(ctx);
            self.owner.store(ctx, me as u64 + 1)?;
            inner.owner_hint = me;
            inner.queue_depth = 0;
        }
        self.policy_cell.store(ctx, target.encode())?;
        self.switch_epoch.fetch_add(ctx, 1)?;
        inner.policy = target;
        guard.unlock()?;
        // cold-path: policy switches are rare control-plane events.
        ctx.stats().registry().add("sync", "policy_switch", 1);
        Ok(true)
    }

    /// Force the backend to `target` (quiesced drain included). Returns
    /// whether a switch happened.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn set_policy(&self, ctx: &NodeCtx, target: SyncPolicy) -> Result<bool, SimError> {
        let mut inner = self.inner.lock();
        self.switch_locked(ctx, &mut inner, target)
    }

    /// Crash recovery: if `crashed` owned the delegated partition,
    /// re-elect the calling node and replay the committed log tail into
    /// the state. Safe (and cheap) to call for any policy — committed
    /// ops are always drained. Returns whether a re-election happened.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn on_node_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError> {
        let mut inner = self.inner.lock();
        let tail = self.log.tail(ctx)?;
        self.drain_to(ctx, &mut inner, tail)?;
        let mut reelected = false;
        if inner.policy == SyncPolicy::Delegated && inner.owner_hint == crashed.0 {
            let me = self.me(ctx);
            let dead = crashed.0 as u64 + 1;
            let prev = self.owner.compare_exchange(ctx, dead, me as u64 + 1)?;
            inner.owner_hint = if prev == dead {
                me
            } else {
                (prev - 1) as usize
            };
            inner.queue_depth = 0;
            // cold-path: re-election only fires after a combiner crash.
            ctx.stats().registry().add("sync", "reelections", 1);
            reelected = true;
        }
        Ok(reelected)
    }

    /// Rebuild a state from scratch by replaying every committed log
    /// entry (the recovery/verification path). Returns the rebuilt state
    /// and the number of entries replayed (holes skipped). Only complete
    /// while the log has not been garbage collected.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn replay(&self, ctx: &NodeCtx, mut init: T) -> Result<(T, u64), SimError> {
        let head = self.log.head(ctx)?;
        let tail = self.log.tail(ctx)?;
        let mut replayed = 0;
        for idx in head..tail {
            if let Some(op) = self.log.read(ctx, idx)? {
                init.apply(&op);
                replayed += 1;
            }
        }
        Ok((init, replayed))
    }

    /// Release consumed log slots. Because the cell folds ops at commit
    /// time, everything up to `applied` is reclaimable — but a full
    /// [`SyncCell::replay`] is no longer possible past the new head, so
    /// long-running deployments trade replayability for bounded memory.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn gc(&self, ctx: &NodeCtx) -> Result<(), SimError> {
        let inner = self.inner.lock();
        if inner.applied > self.log.head(ctx)? {
            self.log.advance_head(ctx, inner.applied)?;
        }
        Ok(())
    }
}

/// Object-safe recovery hook: lets `flacos-fault`'s orchestrator route a
/// node crash through every registered cell without knowing its state
/// type.
pub trait SyncRecover: Send + Sync + std::fmt::Debug {
    /// The cell's diagnostic name.
    fn cell_name(&self) -> &'static str;

    /// Handle a node crash (re-election + committed-op drain).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn recover_after_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError>;
}

impl<T: SyncState> SyncRecover for SyncCell<T> {
    fn cell_name(&self) -> &'static str {
        self.name
    }

    fn recover_after_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError> {
        self.on_node_crash(ctx, crashed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    /// Toy state: an ordered map under `insert(k, v)` / `remove(k)` ops.
    #[derive(Debug, Default, PartialEq)]
    struct Kv {
        map: std::collections::BTreeMap<u64, u64>,
        ops: u64,
    }

    impl SyncState for Kv {
        fn apply(&mut self, op: &[u8]) {
            let mut d = crate::wire::Decoder::new(op);
            let (Ok(tag), Ok(k)) = (d.u8(), d.u64()) else {
                return;
            };
            match tag {
                0 => {
                    let Ok(v) = d.u64() else { return };
                    self.map.insert(k, v);
                }
                1 => {
                    self.map.remove(&k);
                }
                _ => {}
            }
            self.ops += 1;
        }
    }

    fn ins(k: u64, v: u64) -> Vec<u8> {
        let mut e = crate::wire::Encoder::new();
        e.put_u8(0).put_u64(k).put_u64(v);
        e.into_vec()
    }

    fn del(k: u64) -> Vec<u8> {
        let mut e = crate::wire::Encoder::new();
        e.put_u8(1).put_u64(k);
        e.into_vec()
    }

    fn cell(rack: &Rack, policy: SyncPolicy) -> Arc<SyncCell<Kv>> {
        SyncCell::alloc(
            rack.global(),
            "test_kv",
            SyncCellConfig::new(rack.node_count(), policy),
            Kv::default(),
        )
        .unwrap()
    }

    #[test]
    fn every_policy_reads_its_writes_cross_node() {
        for policy in [
            SyncPolicy::Lock,
            SyncPolicy::Replicated,
            SyncPolicy::Delegated,
            SyncPolicy::Rcu,
        ] {
            let rack = Rack::new(RackConfig::small_test());
            let c = cell(&rack, policy);
            c.update(&rack.node(0), &ins(1, 10)).unwrap();
            c.update(&rack.node(1), &ins(2, 20)).unwrap();
            c.update(&rack.node(0), &del(1)).unwrap();
            let snap = c
                .read(&rack.node(1), |kv| (kv.map.get(&2).copied(), kv.map.len()))
                .unwrap();
            assert_eq!(snap, (Some(20), 1), "{policy} lost an update");
            assert_eq!(c.committed(&rack.node(0)).unwrap(), 3);
        }
    }

    #[test]
    fn update_map_sees_post_op_state() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Delegated);
        let (idx, len) = c
            .update_map(&rack.node(0), &ins(7, 70), |kv| kv.map.len())
            .unwrap();
        assert_eq!((idx, len), (0, 1));
    }

    #[test]
    fn switch_preserves_state_and_bumps_epoch() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Replicated);
        let n0 = rack.node(0);
        for i in 0..10 {
            c.update(&n0, &ins(i, i * 2)).unwrap();
        }
        assert!(c.set_policy(&n0, SyncPolicy::Delegated).unwrap());
        assert_eq!(c.policy(), SyncPolicy::Delegated);
        assert_eq!(c.switch_epoch(&n0).unwrap(), 1);
        assert_eq!(c.owner_node(&n0).unwrap(), Some(rack_sim::NodeId(0)));
        // Nothing lost, nothing reordered.
        assert_eq!(c.read(&rack.node(1), |kv| kv.map.len()).unwrap(), 10);
        let (rebuilt, replayed) = c.replay(&n0, Kv::default()).unwrap();
        assert_eq!(replayed, 10);
        assert_eq!(c.peek(|kv| kv.map.clone()), rebuilt.map);
        // No-op switch does nothing.
        assert!(!c.set_policy(&n0, SyncPolicy::Delegated).unwrap());
        assert_eq!(c.switch_epoch(&n0).unwrap(), 1);
    }

    #[test]
    fn owner_crash_reelects_and_keeps_committed_ops() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Delegated);
        let (n0, n1) = (rack.node(0), rack.node(1));
        c.update(&n1, &ins(1, 1)).unwrap();
        c.update(&n0, &ins(2, 2)).unwrap();
        rack.faults().crash_node(rack_sim::NodeId(0), 0);
        assert!(c.on_node_crash(&n1, rack_sim::NodeId(0)).unwrap());
        assert_eq!(c.owner_node(&n1).unwrap(), Some(rack_sim::NodeId(1)));
        // The new owner serves reads locally with all commits present.
        assert_eq!(c.read(&n1, |kv| kv.map.len()).unwrap(), 2);
        let (rebuilt, _) = c.replay(&n1, Kv::default()).unwrap();
        assert_eq!(rebuilt.map.len(), 2);
        // A crash of a non-owner is a no-op.
        assert!(!c.on_node_crash(&n1, rack_sim::NodeId(3)).unwrap());
    }

    #[test]
    fn adaptive_switches_to_delegation_under_writes() {
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_adaptive",
            SyncCellConfig::new(2, SyncPolicy::Replicated).with_adaptive(AdaptiveConfig {
                window_ops: 16,
                confirm_windows: 2,
                ..AdaptiveConfig::default()
            }),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        for i in 0..64 {
            c.update(&rack.node((i % 2) as usize), &ins(i, i)).unwrap();
        }
        assert_eq!(c.policy(), SyncPolicy::Delegated, "write-heavy → delegate");
        assert!(c.switch_epoch(&n0).unwrap() >= 1);
        // Now read-mostly: the driver promotes back to replication.
        for i in 0..96 {
            if i % 10 == 0 {
                c.update(&n0, &ins(i, i)).unwrap();
            } else {
                c.read(&n0, |kv| kv.map.len()).unwrap();
            }
        }
        assert_eq!(
            c.policy(),
            SyncPolicy::Replicated,
            "read-mostly → replicate"
        );
        // State stayed intact across both switches.
        let (rebuilt, _) = c.replay(&n0, Kv::default()).unwrap();
        assert_eq!(c.peek(|kv| kv.map.clone()), rebuilt.map);
    }

    #[test]
    fn borderline_mix_does_not_thrash() {
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_hysteresis",
            SyncCellConfig::new(2, SyncPolicy::Replicated).with_adaptive(AdaptiveConfig {
                window_ops: 16,
                ..AdaptiveConfig::default()
            }),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        // 70% reads sits inside the hysteresis band: no switch, ever.
        for i in 0..200u64 {
            if i % 10 < 3 {
                c.update(&n0, &ins(i, i)).unwrap();
            } else {
                c.read(&n0, |kv| kv.map.len()).unwrap();
            }
        }
        assert_eq!(c.switch_epoch(&n0).unwrap(), 0);
        assert_eq!(c.policy(), SyncPolicy::Replicated);
    }

    #[test]
    fn per_policy_costs_rank_as_designed() {
        // Reads: replication/RCU local-ish, delegation pays the fabric
        // round trip from a non-owner, locking pays atomics + flushes.
        let cost_of = |policy: SyncPolicy, read: bool| {
            let rack = Rack::new(RackConfig::small_test());
            let c = cell(&rack, policy);
            c.update(&rack.node(0), &ins(1, 1)).unwrap();
            let n1 = rack.node(1);
            c.read(&n1, |_| ()).unwrap(); // settle watermarks
            let t0 = n1.clock().now();
            if read {
                c.read(&n1, |_| ()).unwrap();
            } else {
                c.update(&n1, &ins(2, 2)).unwrap();
            }
            n1.clock().now() - t0
        };
        let (r_repl, r_del, r_lock) = (
            cost_of(SyncPolicy::Replicated, true),
            cost_of(SyncPolicy::Delegated, true),
            cost_of(SyncPolicy::Lock, true),
        );
        assert!(r_repl < r_del, "synced replicated read beats a round trip");
        assert!(r_repl < r_lock, "replicated read beats lock + flushes");
    }

    #[test]
    fn queue_depth_tracks_remote_delegation() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Delegated);
        let (n0, n1) = (rack.node(0), rack.node(1));
        c.update(&n1, &ins(1, 1)).unwrap();
        c.update(&n1, &ins(2, 2)).unwrap();
        assert_eq!(c.queue_peak(), 2, "two remote requests queued");
        c.update(&n0, &ins(3, 3)).unwrap(); // owner op drains the queue
        c.update(&n1, &ins(4, 4)).unwrap();
        assert_eq!(c.queue_peak(), 2, "drained before the next request");
    }

    #[test]
    fn log_full_surfaces_not_corrupts() {
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_full",
            SyncCellConfig::new(2, SyncPolicy::Delegated).with_log(4, 64),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        for i in 0..4 {
            c.update(&n0, &ins(i, i)).unwrap();
        }
        assert!(c.update(&n0, &ins(9, 9)).is_err(), "ring full");
        assert_eq!(c.peek(|kv| kv.map.len()), 4, "state untouched by the error");
        c.gc(&n0).unwrap();
        c.update(&n0, &ins(9, 9)).unwrap();
        assert_eq!(c.peek(|kv| kv.map.len()), 5);
    }
}
