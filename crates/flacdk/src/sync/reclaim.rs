//! Interval-based memory reclamation for retired versions.
//!
//! Retired version blocks carry the epoch at which they were unlinked.
//! A block is freed once `retire_epoch < min_protected`, where
//! `min_protected` folds in **both** in-flight readers and checkpoint
//! pins — the paper's co-design of reclamation with checkpointing
//! (§3.2 "Reliability": *"This integration requires to modify memory
//! reclamation algorithm to account for both checkpointing period and
//! pending references in concurrent execution and stale CPU cache"*).

use crate::alloc::object::GlobalAllocator;
use crate::sync::rcu::EpochManager;
use rack_sim::sync::Mutex;
use rack_sim::{GAddr, NodeCtx, SimError};
use std::sync::Arc;

/// One retired block awaiting quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Block base address.
    pub addr: GAddr,
    /// Block length in bytes (allocation request size).
    pub len: usize,
    /// Epoch at which the block was unlinked.
    pub epoch: u64,
}

/// A shared list of retired blocks. Clone-cheap; clones share the list.
#[derive(Debug, Clone, Default)]
pub struct RetireList {
    inner: Arc<Mutex<Vec<Retired>>>,
}

impl RetireList {
    /// An empty retire list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a block unlinked at `epoch`.
    pub fn retire(&self, addr: GAddr, len: usize, epoch: u64) {
        self.inner.lock().push(Retired { addr, len, epoch });
    }

    /// Blocks still awaiting reclamation.
    pub fn pending(&self) -> usize {
        self.inner.lock().len()
    }

    /// Free every block whose retire epoch precedes the minimum protected
    /// epoch. Returns the number of blocks freed.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the epoch scan.
    pub fn reclaim(
        &self,
        ctx: &NodeCtx,
        mgr: &EpochManager,
        alloc: &GlobalAllocator,
    ) -> Result<usize, SimError> {
        let min = mgr.min_protected(ctx)?;
        let mut freed = 0;
        let mut list = self.inner.lock();
        list.retain(|r| {
            if r.epoch < min {
                alloc.free(ctx, r.addr, r.len);
                freed += 1;
                false
            } else {
                true
            }
        });
        Ok(freed)
    }

    /// Drop all retired blocks **without** freeing them (used when the
    /// backing region itself is being torn down or has failed).
    pub fn abandon(&self) -> usize {
        let mut list = self.inner.lock();
        let n = list.len();
        list.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn reclaim_only_past_min_protected() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let alloc = GlobalAllocator::new(rack.global().clone());
        let mgr = EpochManager::alloc(rack.global(), 2).unwrap();
        let list = RetireList::new();

        let a = alloc.alloc(&n0, 64).unwrap();
        let e1 = mgr.current(&n0).unwrap();
        list.retire(a, 64, e1);
        // Retired at the current epoch: not yet reclaimable.
        assert_eq!(list.reclaim(&n0, &mgr, &alloc).unwrap(), 0);
        mgr.advance(&n0).unwrap();
        assert_eq!(list.reclaim(&n0, &mgr, &alloc).unwrap(), 1);
    }

    #[test]
    fn abandon_drops_without_freeing() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let alloc = GlobalAllocator::new(rack.global().clone());
        let list = RetireList::new();
        let a = alloc.alloc(&n0, 64).unwrap();
        list.retire(a, 64, 1);
        assert_eq!(list.abandon(), 1);
        assert_eq!(list.pending(), 0);
        assert_eq!(alloc.free_count(64), 0, "abandoned blocks are not recycled");
    }

    #[test]
    fn clones_share_the_list() {
        let list = RetireList::new();
        let list2 = list.clone();
        list.retire(GAddr(0), 64, 1);
        assert_eq!(list2.pending(), 1);
    }
}
