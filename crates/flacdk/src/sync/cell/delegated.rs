//! The `Delegated` backend: one owner node executes every operation;
//! remote nodes ship requests over the message fabric (ffwd-style).

use super::{CellInner, SyncCell, SyncState};
use rack_sim::{NodeCtx, NodeId, SimError};

impl<T: SyncState> SyncCell<T> {
    /// Returns whether the op ran remotely (shipped to the owner).
    pub(super) fn delegated_pre_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
        op_len: usize,
    ) -> Result<bool, SimError> {
        if me == inner.owner_hint {
            // Owner fast path: operations run in local memory; an op
            // also drains the simulated request queue.
            inner.queue_depth = 0;
            return Ok(false);
        }
        // Request + reply ride the message fabric.
        let lat = ctx.latency();
        let req = 24 + op_len;
        ctx.charge(lat.message_ns(1, req) + lat.message_ns(1, 16));
        ctx.charge(lat.local_read_ns + lat.local_write_ns);
        inner.queue_depth += 1;
        inner.queue_peak = inner.queue_peak.max(inner.queue_depth);
        let reg = ctx.stats().registry();
        reg.add("sync", "delegation_queued", 1);
        reg.add("sync", "delegation_queue_depth", inner.queue_depth);
        Ok(true)
    }

    /// Owner re-election after `crashed` died holding the partition.
    /// Caller has already drained the committed tail.
    pub(super) fn delegated_recover(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        crashed: NodeId,
    ) -> Result<bool, SimError> {
        let me = self.me(ctx);
        let dead = crashed.0 as u64 + 1;
        let prev = self.owner.compare_exchange(ctx, dead, me as u64 + 1)?;
        inner.owner_hint = if prev == dead {
            me
        } else {
            (prev - 1) as usize
        };
        inner.queue_depth = 0;
        // cold-path: re-election only fires after an owner crash.
        ctx.stats().registry().add("sync", "reelections", 1);
        Ok(true)
    }
}
