//! The `Lock` backend: a global spinlock plus the non-coherent-fabric
//! flush discipline over the whole protected footprint.

use super::{lines, SyncCell, SyncState};
use rack_sim::{NodeCtx, SimError};

impl<T: SyncState> SyncCell<T> {
    /// Whole section under the fabric lock; the flush discipline
    /// (invalidate before read, write back after write) is what locking
    /// costs on a non-coherent fabric.
    pub(super) fn lock_pre_op(&self, ctx: &NodeCtx, is_read: bool) -> Result<(), SimError> {
        let lat = ctx.latency();
        let guard = self.lock.lock(ctx)?;
        let l = lines(self.footprint_bytes);
        if is_read {
            ctx.charge(l * lat.invalidate_line_ns + lat.global_read_ns);
        } else {
            ctx.charge(l * lat.invalidate_line_ns + lat.global_read_ns + l * lat.writeback_line_ns);
        }
        guard.unlock()?;
        Ok(())
    }
}
