//! `SyncCell<T>` — one policy-driven facade over the §3.2 families.
//!
//! Every rack-shared kernel structure used to pick (or worse, inherit)
//! its synchronization method ad hoc; after this module they all go
//! through one audited abstraction. A [`SyncCell`] wraps a deterministic
//! state machine (a [`SyncState`]) behind a uniform
//! `read(|&T|)/update(op)` interface whose *backend* — locking,
//! replication, delegation, node replication, or RCU — is chosen per
//! structure at construction ([`SyncPolicy`]) and can be re-tuned at
//! runtime from the observed read/write mix ([`AdaptiveConfig`],
//! hysteresis included).
//!
//! The design centers on a committed-operation log:
//!
//! * Every update is first **committed** to a [`SharedOpLog`] in global
//!   memory and only then folded into the state. Entries carry a uniform
//!   `[node u32][seq u32]` frame so recovery can deduplicate re-appended
//!   publications. The log is therefore the source of truth: a policy
//!   switch drains to the log tail before flipping (epoch-quiesced — no
//!   committed op is lost or reordered), and crash recovery
//!   ([`SyncCell::on_node_crash`], [`SyncCell::replay`]) re-elects the
//!   delegation owner or flat-combining combiner and replays the tail.
//! * Per-policy behavior differs in which fabric operations wrap the
//!   commit, and lives in one module per backend: [`lock`],
//!   [`replicated`], [`delegated`], [`rcu`], and [`node_replicated`]
//!   (flat-combined batched appends + per-node lazy replicas).
//!
//! Observability rides the PR-1 metrics layer: per-policy op counts,
//! policy-switch events, and delegation queue depth land in the `sync/*`
//! counter registry and surface in `Rack::metrics_report()`.

mod adaptive;
mod delegated;
mod lock;
mod node_replicated;
mod rcu;
mod replicated;

pub use adaptive::{AdaptiveConfig, AdaptivePolicy};

use crate::hw::GlobalCell;
use crate::sync::oplog::SharedOpLog;
use crate::sync::spinlock::GlobalSpinLock;
use node_replicated::Replica;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, NodeId, SimError, LINE_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic state machine managed by a [`SyncCell`].
///
/// `apply` must be a pure function of `(state, op)`: replaying the same
/// committed op sequence from the same initial state must reproduce the
/// same final state on any node (that is what makes policy switches and
/// crash recovery lossless). Malformed ops must be ignored, not panic.
/// `Clone` materializes per-node replicas for the node-replicated
/// backend (a clone is a consistent snapshot at a log position).
pub trait SyncState: Send + Clone + std::fmt::Debug + 'static {
    /// Fold one committed operation into the state.
    fn apply(&mut self, op: &[u8]);
}

/// The synchronization backend a [`SyncCell`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Baseline global spinlock + flush discipline (rarely-contended
    /// slow paths; kept honest for comparison).
    Lock,
    /// NR-style replication: node-local reads after a log tail check;
    /// every node replays foreign mutations. Best read-mostly.
    Replicated,
    /// ffwd-style delegation: one owner node executes all operations;
    /// remote nodes ship requests over the message fabric. Best
    /// write-heavy with a single hot writer.
    Delegated,
    /// Epoch/RCU multi-version: constant-cost reads off a version cell;
    /// writes pay a publish. Best scan-heavy.
    Rcu,
    /// Flat-combined node replication: writers publish into per-node
    /// slots, one crash-re-electable combiner appends the whole batch
    /// with a single fabric CAS, and reads come off per-node lazy
    /// replicas. Best write-heavy with writers spread across nodes.
    NodeReplicated,
}

impl SyncPolicy {
    /// Stable numeric encoding (for the policy mirror cell).
    pub fn encode(self) -> u64 {
        match self {
            SyncPolicy::Lock => 0,
            SyncPolicy::Replicated => 1,
            SyncPolicy::Delegated => 2,
            SyncPolicy::Rcu => 3,
            SyncPolicy::NodeReplicated => 4,
        }
    }

    /// Inverse of [`SyncPolicy::encode`] (unknown values read as Lock,
    /// the conservative baseline).
    pub fn decode(v: u64) -> Self {
        match v {
            1 => SyncPolicy::Replicated,
            2 => SyncPolicy::Delegated,
            3 => SyncPolicy::Rcu,
            4 => SyncPolicy::NodeReplicated,
            _ => SyncPolicy::Lock,
        }
    }

    /// Human-readable label (also the `sync/ops_*` counter suffix).
    pub fn label(self) -> &'static str {
        match self {
            SyncPolicy::Lock => "lock",
            SyncPolicy::Replicated => "replicated",
            SyncPolicy::Delegated => "delegated",
            SyncPolicy::Rcu => "rcu",
            SyncPolicy::NodeReplicated => "node_replicated",
        }
    }

    fn ops_counter(self) -> &'static str {
        match self {
            SyncPolicy::Lock => "ops_lock",
            SyncPolicy::Replicated => "ops_replicated",
            SyncPolicy::Delegated => "ops_delegated",
            SyncPolicy::Rcu => "ops_rcu",
            SyncPolicy::NodeReplicated => "ops_node_replicated",
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bytes of entry framing the cell prepends to every op: `[node u32]`
/// `[seq u32]`, little-endian. Recovery uses the pair as a dedup key so
/// a re-appended publication is never applied twice.
pub const FRAME_BYTES: usize = 8;

/// Prepend the `[node][seq]` frame to `op`.
fn frame_op(node: u32, seq: u32, op: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(FRAME_BYTES + op.len());
    v.extend_from_slice(&node.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(op);
    v
}

/// Split a framed payload into its dedup key and the raw op bytes.
/// `None` for malformed (too-short) payloads, which drains skip.
fn unframe(payload: &[u8]) -> Option<(u64, &[u8])> {
    if payload.len() < FRAME_BYTES {
        return None;
    }
    let node = u32::from_le_bytes(payload[0..4].try_into().ok()?);
    let seq = u32::from_le_bytes(payload[4..8].try_into().ok()?);
    Some(((u64::from(node) << 32) | u64::from(seq), &payload[8..]))
}

/// Construction parameters for a [`SyncCell`].
#[derive(Debug, Clone, Copy)]
pub struct SyncCellConfig {
    /// Nodes that may operate on the cell.
    pub nodes: usize,
    /// Committed-op log capacity in slots.
    pub log_capacity: usize,
    /// Log slot size in bytes (16 of which are slot metadata; another
    /// [`FRAME_BYTES`] of the payload are the cell's entry frame).
    pub entry_size: usize,
    /// Initial backend.
    pub policy: SyncPolicy,
    /// Enable the adaptive driver with these knobs.
    pub adaptive: Option<AdaptiveConfig>,
    /// Approximate protected-state footprint in bytes, used by the Lock
    /// and RCU backends to charge the flush discipline and by replica
    /// materialization to charge the snapshot fetch.
    pub footprint_bytes: usize,
}

impl SyncCellConfig {
    /// Defaults: 4096-slot log of 64-byte entries, one-line footprint,
    /// no adaptive driver.
    pub fn new(nodes: usize, policy: SyncPolicy) -> Self {
        SyncCellConfig {
            nodes,
            log_capacity: 4096,
            entry_size: 64,
            policy,
            adaptive: None,
            footprint_bytes: rack_sim::LINE_SIZE,
        }
    }

    /// Override the committed-op log geometry.
    pub fn with_log(mut self, capacity: usize, entry_size: usize) -> Self {
        self.log_capacity = capacity;
        self.entry_size = entry_size;
        self
    }

    /// Enable runtime re-tuning.
    pub fn with_adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }

    /// Override the charged state footprint.
    pub fn with_footprint(mut self, bytes: usize) -> Self {
        self.footprint_bytes = bytes.max(1);
        self
    }
}

/// Per-cell host-side state: the authoritative state machine plus the
/// per-node bookkeeping the cost model and the adaptive driver need.
#[derive(Debug)]
struct CellInner<T: SyncState> {
    state: T,
    /// Next log index to fold into `state`.
    applied: u64,
    /// Committed entries skipped because their appender crashed
    /// mid-publish (claimed-but-uncommitted holes).
    holes: u64,
    policy: SyncPolicy,
    /// Per-node replicated watermark (cost model for catch-up replay).
    synced: Vec<u64>,
    /// Cached delegation owner (kept in lock-step with the owner cell).
    owner_hint: usize,
    adaptive: Option<AdaptivePolicy>,
    /// Simulated delegation queue: remote requests since the owner last
    /// ran an operation (its "poll").
    queue_depth: u64,
    /// Largest queue depth observed.
    queue_peak: u64,
}

/// A rack-shared structure behind one policy-driven synchronization
/// facade. Cheap to share: wrap in `Arc` and hand to every node.
#[derive(Debug)]
pub struct SyncCell<T: SyncState> {
    name: &'static str,
    log: SharedOpLog,
    /// Per-node applied watermarks in global memory (GC + recovery
    /// accounting; updated eagerly only by the replicated backend).
    applied_cells: Vec<GlobalCell>,
    /// Delegation owner, node id + 1 (0 = none elected yet).
    owner: GlobalCell,
    /// Mirror of the current policy for cross-node discovery.
    policy_cell: GlobalCell,
    /// Policy-switch epoch: bumped by every completed switch.
    switch_epoch: GlobalCell,
    /// RCU version cell (bumped per publish).
    version: GlobalCell,
    /// Serializes policy switches and the Lock backend.
    lock: GlobalSpinLock,
    /// Per-node publication slots in global memory (flat combining).
    slots: GAddr,
    slot_stride: usize,
    /// Largest framed payload a publication slot (and log entry) holds.
    slot_payload_cap: usize,
    /// Flat-combining claim word: node id + 1, 0 = free.
    combiner: GlobalCell,
    /// Summary bitmask of nodes with a pending publication: one fabric
    /// read tells the combiner which slots to scan (bit n = node n).
    pending_mask: GlobalCell,
    /// Serializes same-node publishers (one in-flight publication per
    /// node's slot).
    slot_locks: Vec<rack_sim::sync::Mutex<()>>,
    /// Lazily materialized per-node replicas (node-replicated reads).
    replicas: Vec<rack_sim::sync::Mutex<Option<Replica<T>>>>,
    /// Per-node publication sequence numbers (entry framing).
    seqs: Vec<AtomicU64>,
    footprint_bytes: usize,
    inner: rack_sim::sync::Mutex<CellInner<T>>,
}

fn lines(bytes: usize) -> u64 {
    bytes.div_ceil(rack_sim::LINE_SIZE) as u64
}

impl<T: SyncState> SyncCell<T> {
    /// Allocate the cell's fabric state and wrap `init`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes == 0`.
    pub fn alloc(
        global: &GlobalMemory,
        name: &'static str,
        cfg: SyncCellConfig,
        init: T,
    ) -> Result<Arc<Self>, SimError> {
        assert!(cfg.nodes > 0, "a sync cell needs at least one node");
        assert!(
            cfg.nodes <= 64,
            "the publication summary mask addresses at most 64 nodes"
        );
        let log = SharedOpLog::alloc(global, cfg.log_capacity, cfg.entry_size)?;
        let applied_cells = (0..cfg.nodes)
            .map(|_| GlobalCell::alloc(global, 0))
            .collect::<Result<Vec<_>, _>>()?;
        // Node 0 is the initial delegation owner until told otherwise.
        let owner = GlobalCell::alloc(global, 1)?;
        let policy_cell = GlobalCell::alloc(global, cfg.policy.encode())?;
        let switch_epoch = GlobalCell::alloc(global, 0)?;
        let version = GlobalCell::alloc(global, 0)?;
        let lock = GlobalSpinLock::alloc(global)?;
        let slot_payload_cap = SharedOpLog::payload_capacity(cfg.entry_size);
        // Slot layout: [state u64][len u64][packed framed ops]; one slot
        // per node, line-aligned so combiner flushes never alias. Sized
        // so at least one maximum-size framed op plus its pack header
        // fits; the slack lets publishers batch several smaller ops into
        // one publication.
        let slot_stride =
            (16 + node_replicated::PACK_BYTES + slot_payload_cap).div_ceil(LINE_SIZE) * LINE_SIZE;
        let slots = global.alloc(cfg.nodes * slot_stride, LINE_SIZE)?;
        let combiner = GlobalCell::alloc(global, 0)?;
        let pending_mask = GlobalCell::alloc(global, 0)?;
        Ok(Arc::new(SyncCell {
            name,
            log,
            applied_cells,
            owner,
            policy_cell,
            switch_epoch,
            version,
            lock,
            slots,
            slot_stride,
            slot_payload_cap,
            combiner,
            pending_mask,
            slot_locks: (0..cfg.nodes)
                .map(|_| rack_sim::sync::Mutex::new(()))
                .collect(),
            replicas: (0..cfg.nodes)
                .map(|_| rack_sim::sync::Mutex::new(None))
                .collect(),
            seqs: (0..cfg.nodes).map(|_| AtomicU64::new(0)).collect(),
            footprint_bytes: cfg.footprint_bytes,
            inner: rack_sim::sync::Mutex::new(CellInner {
                state: init,
                applied: 0,
                holes: 0,
                policy: cfg.policy,
                synced: vec![0; cfg.nodes],
                owner_hint: 0,
                adaptive: cfg.adaptive.map(AdaptivePolicy::new),
                queue_depth: 0,
                queue_peak: 0,
            }),
        }))
    }

    /// The cell's name (used in diagnostics and DESIGN.md tables).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current backend (host snapshot; authoritative between switches).
    pub fn policy(&self) -> SyncPolicy {
        self.inner.lock().policy
    }

    /// Completed policy switches (reads the fabric epoch cell).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn switch_epoch(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.switch_epoch.load(ctx)
    }

    /// The delegation owner currently elected, if any.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn owner_node(&self, ctx: &NodeCtx) -> Result<Option<NodeId>, SimError> {
        let w = self.owner.load(ctx)?;
        Ok(if w == 0 {
            None
        } else {
            Some(NodeId((w - 1) as usize))
        })
    }

    /// Committed operations so far (the log tail).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn committed(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.log.tail(ctx)
    }

    /// Peek at the state without charging simulated costs. Diagnostics
    /// and invariant checks only — kernel paths must use
    /// [`SyncCell::read`] so the policy's cost lands on the caller.
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.inner.lock().state)
    }

    /// Largest simulated delegation queue depth observed so far.
    pub fn queue_peak(&self) -> u64 {
        self.inner.lock().queue_peak
    }

    fn me(&self, ctx: &NodeCtx) -> usize {
        let id = ctx.id().0;
        assert!(
            id < self.applied_cells.len(),
            "cell {} sized for {} nodes, node id {}",
            self.name,
            self.applied_cells.len(),
            id
        );
        id
    }

    /// Next publication sequence number for `node`'s entry frames.
    fn next_seq(&self, node: usize) -> u32 {
        self.seqs[node].fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Fold committed entries `[inner.applied, target)` into the state.
    /// Claimed-but-uncommitted holes (appender crashed mid-publish) are
    /// skipped: their op was never acknowledged to anyone. Uses the
    /// bounds-checked log read (recovery-safe).
    fn drain_to(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        target: u64,
    ) -> Result<(), SimError> {
        while inner.applied < target {
            match self.log.read(ctx, inner.applied)? {
                Some(payload) => match unframe(&payload) {
                    Some((_, op)) => {
                        inner.state.apply(op);
                        ctx.charge(ctx.latency().local_write_ns);
                    }
                    None => inner.holes += 1,
                },
                None => inner.holes += 1,
            }
            inner.applied += 1;
        }
        Ok(())
    }

    /// [`SyncCell::drain_to`] over the cheap unchecked entry read — the
    /// caller must have loaded a `target` at or below the current tail.
    fn drain_to_cheap(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        target: u64,
    ) -> Result<(), SimError> {
        while inner.applied < target {
            match self.log.read_entry(ctx, inner.applied)? {
                Some(payload) => match unframe(&payload) {
                    Some((_, op)) => {
                        inner.state.apply(op);
                        ctx.charge(ctx.latency().local_write_ns);
                    }
                    None => inner.holes += 1,
                },
                None => inner.holes += 1,
            }
            inner.applied += 1;
        }
        Ok(())
    }

    /// Per-policy cost + fabric work for one operation. Returns whether
    /// the op ran remotely (shipped to a delegation owner).
    fn pre_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
        is_read: bool,
        op_len: usize,
    ) -> Result<bool, SimError> {
        match inner.policy {
            SyncPolicy::Lock => {
                self.lock_pre_op(ctx, is_read)?;
                Ok(false)
            }
            SyncPolicy::Replicated => {
                self.replicated_pre_op(ctx, inner, me)?;
                Ok(false)
            }
            SyncPolicy::Delegated => self.delegated_pre_op(ctx, inner, me, op_len),
            SyncPolicy::Rcu => {
                self.rcu_pre_op(ctx, is_read, op_len)?;
                Ok(false)
            }
            SyncPolicy::NodeReplicated => {
                // Writes take the flat-combining path before pre_op; only
                // linearization-sensitive reads land here.
                debug_assert!(is_read, "node-replicated writes use the combiner path");
                self.nr_read_pre_op(ctx, inner)?;
                Ok(false)
            }
        }
    }

    /// Adaptive bookkeeping after an op; performs the quiesced switch
    /// when the driver's hysteresis allows one.
    fn post_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
        is_read: bool,
        remote: bool,
    ) -> Result<(), SimError> {
        ctx.stats()
            .registry()
            .add("sync", inner.policy.ops_counter(), 1);
        let current = inner.policy;
        let writer = if is_read { None } else { Some(me) };
        let target = match inner.adaptive.as_mut() {
            Some(driver) => driver.observe(current, is_read, remote, writer),
            None => None,
        };
        if let Some(target) = target {
            self.switch_locked(ctx, inner, target)?;
        }
        Ok(())
    }

    /// Read the state through the current policy (linearizable: the
    /// node-replicated backend catches up to the log tail first; see
    /// [`SyncCell::read_local`] for the zero-fabric replica path).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn read<R>(&self, ctx: &NodeCtx, f: impl FnOnce(&T) -> R) -> Result<R, SimError> {
        let me = self.me(ctx);
        let mut inner = self.inner.lock();
        let remote = self.pre_op(ctx, &mut inner, me, true, 0)?;
        ctx.charge(ctx.latency().local_read_ns);
        let out = f(&inner.state);
        self.post_op(ctx, &mut inner, me, true, remote)?;
        Ok(out)
    }

    /// Commit `op` to the log and fold it into the state.
    /// Returns the op's log index.
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors; on error the state is
    /// unchanged and the op is not acknowledged.
    pub fn update(&self, ctx: &NodeCtx, op: &[u8]) -> Result<u64, SimError> {
        self.update_map(ctx, op, |_| ()).map(|(idx, ())| idx)
    }

    /// Commit `op`, fold it in, and run `f` on the **post-op** state
    /// atomically (flat-combining style: the caller derives its answer
    /// from the state the op produced, while replay needs only the op
    /// bytes). Returns `(log index, f's result)`.
    ///
    /// # Errors
    ///
    /// As [`SyncCell::update`].
    pub fn update_map<R>(
        &self,
        ctx: &NodeCtx,
        op: &[u8],
        f: impl FnOnce(&T) -> R,
    ) -> Result<(u64, R), SimError> {
        let me = self.me(ctx);
        {
            let inner = self.inner.lock();
            if inner.policy == SyncPolicy::NodeReplicated {
                drop(inner);
                return self.nr_update_map(ctx, op, f);
            }
        }
        let framed = frame_op(me as u32, self.next_seq(me), op);
        let mut inner = self.inner.lock();
        if inner.policy == SyncPolicy::NodeReplicated {
            // Lost a race with an adaptive switch; take the new path.
            drop(inner);
            return self.nr_update_map(ctx, op, f);
        }
        let remote = self.pre_op(ctx, &mut inner, me, false, op.len())?;
        let idx = self.log.append(ctx, &framed)?;
        // Fold any holes left by crashed appenders, then our own op.
        self.drain_to(ctx, &mut inner, idx)?;
        inner.state.apply(op);
        ctx.charge(ctx.latency().local_write_ns);
        inner.applied = idx + 1;
        inner.synced[me] = idx + 1;
        if inner.policy == SyncPolicy::Replicated {
            self.applied_cells[me].store(ctx, idx + 1)?;
        }
        let out = f(&inner.state);
        self.post_op(ctx, &mut inner, me, false, remote)?;
        Ok((idx, out))
    }

    /// The epoch-quiesced backend switch. Caller holds the host mutex;
    /// the fabric lock serializes against other nodes' switches.
    fn switch_locked(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        target: SyncPolicy,
    ) -> Result<bool, SimError> {
        if inner.policy == target {
            return Ok(false);
        }
        let guard = self.lock.lock(ctx)?;
        // Drain: every committed op folds in before the flip, so the
        // switch can neither lose nor reorder committed updates.
        let tail = self.log.tail(ctx)?;
        self.drain_to(ctx, inner, tail)?;
        // Quiesce: publish every node's watermark at the drained tail
        // and bump the switch epoch so late readers re-discover.
        for (i, cell) in self.applied_cells.iter().enumerate() {
            cell.store(ctx, inner.applied)?;
            inner.synced[i] = inner.applied;
        }
        if target == SyncPolicy::Delegated {
            // The switching node becomes the owner.
            let me = self.me(ctx);
            self.owner.store(ctx, me as u64 + 1)?;
            inner.owner_hint = me;
            inner.queue_depth = 0;
        }
        self.policy_cell.store(ctx, target.encode())?;
        self.switch_epoch.fetch_add(ctx, 1)?;
        inner.policy = target;
        guard.unlock()?;
        // cold-path: policy switches are rare control-plane events.
        ctx.stats().registry().add("sync", "policy_switch", 1);
        Ok(true)
    }

    /// Force the backend to `target` (quiesced drain included). Returns
    /// whether a switch happened.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn set_policy(&self, ctx: &NodeCtx, target: SyncPolicy) -> Result<bool, SimError> {
        let mut inner = self.inner.lock();
        self.switch_locked(ctx, &mut inner, target)
    }

    /// Crash recovery: drain the committed tail, re-elect the delegation
    /// owner if `crashed` held it, and — on the node-replicated backend —
    /// take over a dead combiner: its publication slots are drained with
    /// dedup against the committed log so no published op is lost or
    /// applied twice. Safe (and cheap) to call for any policy. Returns
    /// whether a re-election happened.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn on_node_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError> {
        let mut inner = self.inner.lock();
        let tail = self.log.tail(ctx)?;
        self.drain_to(ctx, &mut inner, tail)?;
        let mut reelected = false;
        if inner.policy == SyncPolicy::Delegated && inner.owner_hint == crashed.0 {
            reelected = self.delegated_recover(ctx, &mut inner, crashed)?;
        }
        if inner.policy == SyncPolicy::NodeReplicated {
            reelected = self.nr_recover(ctx, &mut inner, crashed)?;
        }
        Ok(reelected)
    }

    /// Rebuild a state from scratch by replaying every committed log
    /// entry (the recovery/verification path). Returns the rebuilt state
    /// and the number of entries replayed (holes skipped). Only complete
    /// while the log has not been garbage collected.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn replay(&self, ctx: &NodeCtx, mut init: T) -> Result<(T, u64), SimError> {
        let head = self.log.head(ctx)?;
        let tail = self.log.tail(ctx)?;
        let mut replayed = 0;
        for idx in head..tail {
            if let Some(payload) = self.log.read(ctx, idx)? {
                if let Some((_, op)) = unframe(&payload) {
                    init.apply(op);
                    replayed += 1;
                }
            }
        }
        Ok((init, replayed))
    }

    /// Release consumed log slots. Because the cell folds ops at commit
    /// time, everything up to `applied` is reclaimable — but a full
    /// [`SyncCell::replay`] is no longer possible past the new head, so
    /// long-running deployments trade replayability for bounded memory.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn gc(&self, ctx: &NodeCtx) -> Result<(), SimError> {
        let inner = self.inner.lock();
        if inner.applied > self.log.head(ctx)? {
            self.log.advance_head(ctx, inner.applied)?;
        }
        Ok(())
    }
}

/// Object-safe recovery hook: lets `flacos-fault`'s orchestrator route a
/// node crash through every registered cell without knowing its state
/// type.
pub trait SyncRecover: Send + Sync + std::fmt::Debug {
    /// The cell's diagnostic name.
    fn cell_name(&self) -> &'static str;

    /// Handle a node crash (re-election + committed-op drain).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn recover_after_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError>;
}

impl<T: SyncState> SyncRecover for SyncCell<T> {
    fn cell_name(&self) -> &'static str {
        self.name
    }

    fn recover_after_crash(&self, ctx: &NodeCtx, crashed: NodeId) -> Result<bool, SimError> {
        self.on_node_crash(ctx, crashed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    /// Toy state: an ordered map under `insert(k, v)` / `remove(k)` ops.
    #[derive(Debug, Default, Clone, PartialEq)]
    struct Kv {
        map: std::collections::BTreeMap<u64, u64>,
        ops: u64,
    }

    impl SyncState for Kv {
        fn apply(&mut self, op: &[u8]) {
            let mut d = crate::wire::Decoder::new(op);
            let (Ok(tag), Ok(k)) = (d.u8(), d.u64()) else {
                return;
            };
            match tag {
                0 => {
                    let Ok(v) = d.u64() else { return };
                    self.map.insert(k, v);
                }
                1 => {
                    self.map.remove(&k);
                }
                _ => {}
            }
            self.ops += 1;
        }
    }

    fn ins(k: u64, v: u64) -> Vec<u8> {
        let mut e = crate::wire::Encoder::new();
        e.put_u8(0).put_u64(k).put_u64(v);
        e.into_vec()
    }

    fn del(k: u64) -> Vec<u8> {
        let mut e = crate::wire::Encoder::new();
        e.put_u8(1).put_u64(k);
        e.into_vec()
    }

    fn cell(rack: &Rack, policy: SyncPolicy) -> Arc<SyncCell<Kv>> {
        SyncCell::alloc(
            rack.global(),
            "test_kv",
            SyncCellConfig::new(rack.node_count(), policy),
            Kv::default(),
        )
        .unwrap()
    }

    #[test]
    fn every_policy_reads_its_writes_cross_node() {
        for policy in [
            SyncPolicy::Lock,
            SyncPolicy::Replicated,
            SyncPolicy::Delegated,
            SyncPolicy::Rcu,
            SyncPolicy::NodeReplicated,
        ] {
            let rack = Rack::new(RackConfig::small_test());
            let c = cell(&rack, policy);
            c.update(&rack.node(0), &ins(1, 10)).unwrap();
            c.update(&rack.node(1), &ins(2, 20)).unwrap();
            c.update(&rack.node(0), &del(1)).unwrap();
            let snap = c
                .read(&rack.node(1), |kv| (kv.map.get(&2).copied(), kv.map.len()))
                .unwrap();
            assert_eq!(snap, (Some(20), 1), "{policy} lost an update");
            assert_eq!(c.committed(&rack.node(0)).unwrap(), 3);
        }
    }

    #[test]
    fn update_map_sees_post_op_state() {
        for policy in [SyncPolicy::Delegated, SyncPolicy::NodeReplicated] {
            let rack = Rack::new(RackConfig::small_test());
            let c = cell(&rack, policy);
            let (idx, len) = c
                .update_map(&rack.node(0), &ins(7, 70), |kv| kv.map.len())
                .unwrap();
            assert_eq!((idx, len), (0, 1), "{policy}");
        }
    }

    #[test]
    fn switch_preserves_state_and_bumps_epoch() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Replicated);
        let n0 = rack.node(0);
        for i in 0..10 {
            c.update(&n0, &ins(i, i * 2)).unwrap();
        }
        assert!(c.set_policy(&n0, SyncPolicy::Delegated).unwrap());
        assert_eq!(c.policy(), SyncPolicy::Delegated);
        assert_eq!(c.switch_epoch(&n0).unwrap(), 1);
        assert_eq!(c.owner_node(&n0).unwrap(), Some(rack_sim::NodeId(0)));
        // Nothing lost, nothing reordered.
        assert_eq!(c.read(&rack.node(1), |kv| kv.map.len()).unwrap(), 10);
        let (rebuilt, replayed) = c.replay(&n0, Kv::default()).unwrap();
        assert_eq!(replayed, 10);
        assert_eq!(c.peek(|kv| kv.map.clone()), rebuilt.map);
        // No-op switch does nothing.
        assert!(!c.set_policy(&n0, SyncPolicy::Delegated).unwrap());
        assert_eq!(c.switch_epoch(&n0).unwrap(), 1);
    }

    #[test]
    fn switch_through_node_replicated_preserves_state() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Delegated);
        let n0 = rack.node(0);
        for i in 0..8 {
            c.update(&n0, &ins(i, i)).unwrap();
        }
        assert!(c.set_policy(&n0, SyncPolicy::NodeReplicated).unwrap());
        for i in 8..16 {
            c.update(&rack.node((i % 2) as usize), &ins(i, i)).unwrap();
        }
        assert!(c.set_policy(&n0, SyncPolicy::Replicated).unwrap());
        assert_eq!(c.read(&n0, |kv| kv.map.len()).unwrap(), 16);
        let (rebuilt, replayed) = c.replay(&n0, Kv::default()).unwrap();
        assert_eq!(replayed, 16);
        assert_eq!(c.peek(|kv| kv.clone()), rebuilt);
    }

    #[test]
    fn owner_crash_reelects_and_keeps_committed_ops() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Delegated);
        let (n0, n1) = (rack.node(0), rack.node(1));
        c.update(&n1, &ins(1, 1)).unwrap();
        c.update(&n0, &ins(2, 2)).unwrap();
        rack.faults().crash_node(rack_sim::NodeId(0), 0);
        assert!(c.on_node_crash(&n1, rack_sim::NodeId(0)).unwrap());
        assert_eq!(c.owner_node(&n1).unwrap(), Some(rack_sim::NodeId(1)));
        // The new owner serves reads locally with all commits present.
        assert_eq!(c.read(&n1, |kv| kv.map.len()).unwrap(), 2);
        let (rebuilt, _) = c.replay(&n1, Kv::default()).unwrap();
        assert_eq!(rebuilt.map.len(), 2);
        // A crash of a non-owner is a no-op.
        assert!(!c.on_node_crash(&n1, rack_sim::NodeId(3)).unwrap());
    }

    #[test]
    fn adaptive_targets_write_tier_by_writer_spread() {
        // Multi-writer write-heavy → node replication (batched appends);
        // read-mostly → replication.
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_adaptive",
            SyncCellConfig::new(2, SyncPolicy::Replicated).with_adaptive(AdaptiveConfig {
                window_ops: 16,
                confirm_windows: 2,
                ..AdaptiveConfig::default()
            }),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        for i in 0..64 {
            c.update(&rack.node((i % 2) as usize), &ins(i, i)).unwrap();
        }
        assert_eq!(
            c.policy(),
            SyncPolicy::NodeReplicated,
            "write-heavy from two nodes → flat-combined node replication"
        );
        assert!(c.switch_epoch(&n0).unwrap() >= 1);
        // Now read-mostly: the driver promotes back to replication.
        for i in 0..96 {
            if i % 10 == 0 {
                c.update(&n0, &ins(i, i)).unwrap();
            } else {
                c.read(&n0, |kv| kv.map.len()).unwrap();
            }
        }
        assert_eq!(
            c.policy(),
            SyncPolicy::Replicated,
            "read-mostly → replicate"
        );
        // State stayed intact across both switches.
        let (rebuilt, _) = c.replay(&n0, Kv::default()).unwrap();
        assert_eq!(c.peek(|kv| kv.map.clone()), rebuilt.map);
    }

    #[test]
    fn adaptive_single_writer_still_delegates() {
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_adaptive_single",
            SyncCellConfig::new(2, SyncPolicy::Replicated).with_adaptive(AdaptiveConfig {
                window_ops: 16,
                confirm_windows: 2,
                ..AdaptiveConfig::default()
            }),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        for i in 0..64 {
            c.update(&n0, &ins(i, i)).unwrap();
        }
        assert_eq!(
            c.policy(),
            SyncPolicy::Delegated,
            "one hot writer → delegation, not batching"
        );
    }

    #[test]
    fn borderline_mix_does_not_thrash() {
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_hysteresis",
            SyncCellConfig::new(2, SyncPolicy::Replicated).with_adaptive(AdaptiveConfig {
                window_ops: 16,
                ..AdaptiveConfig::default()
            }),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        // 70% reads sits inside the hysteresis band: no switch, ever.
        for i in 0..200u64 {
            if i % 10 < 3 {
                c.update(&n0, &ins(i, i)).unwrap();
            } else {
                c.read(&n0, |kv| kv.map.len()).unwrap();
            }
        }
        assert_eq!(c.switch_epoch(&n0).unwrap(), 0);
        assert_eq!(c.policy(), SyncPolicy::Replicated);
    }

    #[test]
    fn per_policy_costs_rank_as_designed() {
        // Reads: replication/RCU local-ish, delegation pays the fabric
        // round trip from a non-owner, locking pays atomics + flushes.
        let cost_of = |policy: SyncPolicy, read: bool| {
            let rack = Rack::new(RackConfig::small_test());
            let c = cell(&rack, policy);
            c.update(&rack.node(0), &ins(1, 1)).unwrap();
            let n1 = rack.node(1);
            c.read(&n1, |_| ()).unwrap(); // settle watermarks
            let t0 = n1.clock().now();
            if read {
                c.read(&n1, |_| ()).unwrap();
            } else {
                c.update(&n1, &ins(2, 2)).unwrap();
            }
            n1.clock().now() - t0
        };
        let (r_repl, r_del, r_lock) = (
            cost_of(SyncPolicy::Replicated, true),
            cost_of(SyncPolicy::Delegated, true),
            cost_of(SyncPolicy::Lock, true),
        );
        assert!(r_repl < r_del, "synced replicated read beats a round trip");
        assert!(r_repl < r_lock, "replicated read beats lock + flushes");
    }

    #[test]
    fn queue_depth_tracks_remote_delegation() {
        let rack = Rack::new(RackConfig::small_test());
        let c = cell(&rack, SyncPolicy::Delegated);
        let (n0, n1) = (rack.node(0), rack.node(1));
        c.update(&n1, &ins(1, 1)).unwrap();
        c.update(&n1, &ins(2, 2)).unwrap();
        assert_eq!(c.queue_peak(), 2, "two remote requests queued");
        c.update(&n0, &ins(3, 3)).unwrap(); // owner op drains the queue
        c.update(&n1, &ins(4, 4)).unwrap();
        assert_eq!(c.queue_peak(), 2, "drained before the next request");
    }

    #[test]
    fn log_full_surfaces_not_corrupts() {
        let rack = Rack::new(RackConfig::small_test());
        let c: Arc<SyncCell<Kv>> = SyncCell::alloc(
            rack.global(),
            "test_full",
            SyncCellConfig::new(2, SyncPolicy::Delegated).with_log(4, 64),
            Kv::default(),
        )
        .unwrap();
        let n0 = rack.node(0);
        for i in 0..4 {
            c.update(&n0, &ins(i, i)).unwrap();
        }
        assert!(c.update(&n0, &ins(9, 9)).is_err(), "ring full");
        assert_eq!(c.peek(|kv| kv.map.len()), 4, "state untouched by the error");
        c.gc(&n0).unwrap();
        c.update(&n0, &ins(9, 9)).unwrap();
        assert_eq!(c.peek(|kv| kv.map.len()), 5);
    }
}
